"""The CoreDNS analog: a DNS server assembled from chain plugins.

Mirrors the configuration the paper's prototype uses (§4):

* the **kubernetes** plugin resolves ``<svc>.<ns>.svc.cluster.local``
  to cluster IPs from the orchestrator's service registry;
* a **stub-domain** entry ("Configuration of Stub-domain and upstream
  nameserver using CoreDNS") sends the CDN delivery domain to the ATC
  Traffic Router (C-DNS);
* a default **forward** plugin sends everything else upstream — the
  provider's L-DNS — so non-MEC names keep resolving;
* a **cache** plugin serves repeat queries locally.

A :class:`repro.mec.namespaces.SplitNamespacePlugin` can be placed at the
front of the chain to implement the public/internal split.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Generator, List, Optional

from repro.dnswire.message import (Message, ResourceRecord, make_query,
                                   make_response, mark_stale)
from repro.dnswire.name import Name
from repro.dnswire.rdata import A
from repro.dnswire.types import Rcode, RecordType
from repro.errors import QueryTimeout, WireFormatError
from repro.mec.cluster import Orchestrator
from repro.netsim.packet import Endpoint
from repro.resolver.cache import CacheOutcome, DnsCache
from repro.resolver.chain import Plugin, PluginChain, QueryContext
from repro.resolver.retry import RetryPolicy
from repro.resolver.server import DnsServer

#: TTL for service-discovery answers (kubernetes plugin default is 5s).
SERVICE_TTL = 5


class CachePlugin(Plugin):
    """Serves repeat queries from a local cache; fills it on the way out.

    With ``serve_stale`` (RFC 8767), a downstream SERVFAIL — the rest of
    the chain could not reach an upstream — is answered from an expired
    entry instead, marked with the stale-answer EDNS option.
    """

    name = "cache"

    def __init__(self, cache: Optional[DnsCache] = None,
                 serve_stale: bool = False) -> None:
        self.cache = (cache if cache is not None
                      else DnsCache(serve_stale=serve_stale))
        self._owner: Optional[DnsServer] = None
        self.stale_served = 0
        #: Control-plane hook: returns True while a zone/endpoint update
        #: is still propagating (see ``repro.control``).  Stale answers
        #: handed out inside that window are the dangerous ones — they
        #: may point at endpoints the orchestrator already removed — so
        #: they are counted separately.
        self.churn_window: Optional[Callable[[], bool]] = None
        self.stale_served_during_churn = 0

    def bind(self, owner: DnsServer) -> None:
        """Attach the plugin to its owning server (for clock access)."""
        self._owner = owner

    def handle(self, ctx: QueryContext, next_plugin) -> Generator:
        """Chain hook: answer, annotate, or delegate to ``next_plugin``."""
        assert self._owner is not None, "plugin not bound to a server"
        now = self._owner.network.sim.now
        cached = self.cache.get(ctx.qname, ctx.rtype, now)
        tel = ctx.telemetry
        if tel is not None:
            tel.tracer.event("coredns.cache-lookup", "mec", ctx.track,
                             parent=ctx.trace, outcome=cached.outcome.name,
                             qname=str(ctx.qname))
            tel.metrics.counter("repro_coredns_cache_lookups_total",
                                "CoreDNS cache plugin probes by "
                                "outcome").inc(server=self._owner.name,
                                               outcome=cached.outcome.name)
        if cached.outcome == CacheOutcome.HIT:
            return make_response(ctx.query, recursion_available=True,
                                 answers=cached.records)
        if cached.outcome == CacheOutcome.NEGATIVE_NXDOMAIN:
            return make_response(ctx.query, rcode=Rcode.NXDOMAIN,
                                 recursion_available=True)
        response = yield from next_plugin(ctx)
        if self.cache.serve_stale and (
                response is None or response.rcode == Rcode.SERVFAIL):
            stale = self.cache.get_stale(ctx.qname, ctx.rtype,
                                         self._owner.network.sim.now)
            if stale.outcome == CacheOutcome.HIT:
                self.stale_served += 1
                if tel is not None:
                    tel.tracer.event("coredns.serve-stale", "mec", ctx.track,
                                     parent=ctx.trace, qname=str(ctx.qname))
                    tel.metrics.counter(
                        "repro_coredns_stale_served_total",
                        "RFC 8767 stale answers served by the cache "
                        "plugin").inc(server=self._owner.name)
                reply = make_response(ctx.query, recursion_available=True,
                                      answers=stale.records)
                if stale.stale:
                    mark_stale(reply)
                    if self.churn_window is not None and self.churn_window():
                        self.stale_served_during_churn += 1
                        if tel is not None:
                            tel.metrics.counter(
                                "repro_coredns_serve_stale_during_churn_total",
                                "RFC 8767 stale answers served while a "
                                "control-plane update was still "
                                "propagating").inc(server=self._owner.name)
                return reply
        if response is not None and response.rcode == Rcode.NOERROR \
                and response.answers:
            positive = [record for record in response.answers if record.ttl > 0]
            if positive:
                self.cache.put_records(positive, self._owner.network.sim.now)
        elif response is not None and response.rcode == Rcode.NXDOMAIN:
            self.cache.put_negative(ctx.qname, ctx.rtype,
                                    CacheOutcome.NEGATIVE_NXDOMAIN, 30,
                                    self._owner.network.sim.now)
        return response


class KubernetesPlugin(Plugin):
    """Service discovery over the orchestrator's registry."""

    name = "kubernetes"

    def __init__(self, orchestrator: Orchestrator,
                 cluster_domain: Name = Name("cluster.local")) -> None:
        self.orchestrator = orchestrator
        self.cluster_domain = cluster_domain

    def handle(self, ctx: QueryContext, next_plugin) -> Generator:
        """Chain hook: answer, annotate, or delegate to ``next_plugin``."""
        if not ctx.qname.is_subdomain_of(self.cluster_domain):
            response = yield from next_plugin(ctx)
            return response
        service = self.orchestrator.resolve_service_name(ctx.qname.to_text())
        if service is None or not service.ready_pods():
            return make_response(ctx.query, rcode=Rcode.NXDOMAIN,
                                 authoritative=True)
        if ctx.rtype not in (RecordType.A, RecordType.ANY):
            return make_response(ctx.query, authoritative=True)
        answer = ResourceRecord(ctx.qname, RecordType.A, SERVICE_TTL,
                                A(service.cluster_ip))
        return make_response(ctx.query, authoritative=True, answers=[answer])


class _ForwardingPluginBase(Plugin):
    """Shared upstream-forwarding machinery.

    ``retry_policy`` turns the single upstream exchange into a retry
    loop with backed-off per-attempt timeouts.
    """

    def __init__(self, timeout: float = 2000.0,
                 forward_ecs: bool = True,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        self.timeout = timeout
        self.forward_ecs = forward_ecs
        self.retry_policy = retry_policy
        self._owner: Optional[DnsServer] = None
        self._retry_rng: Optional[random.Random] = None
        self.forwarded = 0
        self.upstream_retries = 0

    def bind(self, owner: DnsServer) -> None:
        self._owner = owner
        # Backoff jitter draws from a named stream, like every other
        # stochastic element; without this the jitter was silently
        # skipped (timeout_for ignored jitter_frac when rng is None).
        self._retry_rng = owner.network.streams.stream(
            f"coredns-retry:{owner.name}:{self.name}")

    def _forward(self, ctx: QueryContext, upstream: Endpoint) -> Generator:
        assert self._owner is not None, "plugin not bound to a server"
        policy = self.retry_policy
        attempts = 1 + (policy.retries if policy is not None else 0)
        for attempt in range(1, attempts + 1):
            per_try_timeout = (policy.timeout_for(attempt, self._retry_rng)
                               if policy is not None else self.timeout)
            query = make_query(ctx.qname, ctx.rtype,
                               msg_id=self._owner.allocate_query_id(),
                               recursion_desired=True)
            if self.forward_ecs and ctx.query.edns is not None:
                query.edns = ctx.query.edns
            try:
                self.forwarded += 1
                if attempt > 1:
                    self.upstream_retries += 1
                    if ctx.telemetry is not None:
                        ctx.telemetry.metrics.counter(
                            "repro_coredns_upstream_retries_total",
                            "plugin re-attempts against an upstream").inc(
                                server=self._owner.name)
                response = yield from self._owner.query_upstream(
                    query, upstream, per_try_timeout, ctx=ctx.trace)
            except (QueryTimeout, WireFormatError):
                continue
            reply = make_response(ctx.query, rcode=response.rcode,
                                  recursion_available=True,
                                  answers=response.answers,
                                  authorities=response.authorities,
                                  additionals=response.additionals)
            if response.edns is not None and reply.edns is not None:
                reply.edns.options = list(response.edns.options)
            return reply
        return make_response(ctx.query, rcode=Rcode.SERVFAIL)


class StubDomainPlugin(_ForwardingPluginBase):
    """Routes configured sub-domains to dedicated upstreams (C-DNS)."""

    name = "stubdomain"

    def __init__(self, domains: Optional[Dict[Name, Endpoint]] = None,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self.domains: Dict[Name, Endpoint] = dict(domains or {})

    def add(self, domain: Name, upstream: Endpoint) -> None:
        """Route queries under ``domain`` to a dedicated upstream."""
        self.domains[domain] = upstream

    def upstream_for(self, qname: Name) -> Optional[Endpoint]:
        """The configured upstream for ``qname`` (longest match), or None."""
        best: Optional[Name] = None
        for domain in self.domains:
            if qname.is_subdomain_of(domain):
                if best is None or len(domain) > len(best):
                    best = domain
        return self.domains[best] if best is not None else None

    def handle(self, ctx: QueryContext, next_plugin) -> Generator:
        """Chain hook: answer, annotate, or delegate to ``next_plugin``."""
        upstream = self.upstream_for(ctx.qname)
        if upstream is None:
            response = yield from next_plugin(ctx)
            return response
        response = yield from self._forward(ctx, upstream)
        return response


class ForwardPlugin(_ForwardingPluginBase):
    """Default upstream for everything the earlier plugins passed on."""

    name = "forward"

    def __init__(self, upstream: Endpoint, **kwargs) -> None:
        super().__init__(**kwargs)
        self.upstream = upstream

    def handle(self, ctx: QueryContext, next_plugin) -> Generator:
        """Chain hook: answer, annotate, or delegate to ``next_plugin``."""
        response = yield from self._forward(ctx, self.upstream)
        return response


class CoreDnsServer(DnsServer):
    """CoreDNS: the plugin chain behind one server socket.

    ``front_plugins`` are placed before everything else (the split-
    namespace policy goes here); ``enable_cache`` controls the cache
    plugin; ``upstream`` adds a default forward plugin when given.
    """

    def __init__(self, network, host, orchestrator: Orchestrator,
                 cluster_domain: Name = Name("cluster.local"),
                 stub_domains: Optional[Dict[Name, Endpoint]] = None,
                 upstream: Optional[Endpoint] = None,
                 enable_cache: bool = True,
                 front_plugins: Optional[List[Plugin]] = None,
                 forward_ecs: bool = True,
                 ecs_inject: bool = False,
                 ecs_prefix: int = 24,
                 serve_stale: bool = False,
                 upstream_retry_policy: Optional[RetryPolicy] = None,
                 **kwargs) -> None:
        super().__init__(network, host, **kwargs)
        #: When set, synthesize an ECS option carrying the client's subnet
        #: on queries that arrive without one (the §4 ECS experiment
        #: "enables ECS support at L-DNS").
        self.ecs_inject = ecs_inject
        self.ecs_prefix = ecs_prefix
        self.kubernetes = KubernetesPlugin(orchestrator, cluster_domain)
        self.stub = StubDomainPlugin(stub_domains, forward_ecs=forward_ecs,
                                     retry_policy=upstream_retry_policy)
        plugins: List[Plugin] = list(front_plugins or [])
        self.cache_plugin: Optional[CachePlugin] = None
        if enable_cache:
            self.cache_plugin = CachePlugin(serve_stale=serve_stale)
            plugins.append(self.cache_plugin)
        plugins.extend([self.kubernetes, self.stub])
        self.forward_plugin: Optional[ForwardPlugin] = None
        if upstream is not None:
            self.forward_plugin = ForwardPlugin(
                upstream, forward_ecs=forward_ecs,
                retry_policy=upstream_retry_policy)
            plugins.append(self.forward_plugin)
        self.chain = PluginChain(plugins)
        for plugin in plugins:
            bind = getattr(plugin, "bind", None)
            if bind is not None:
                bind(self)

    def add_stub_domain(self, domain: Name, upstream: Endpoint) -> None:
        """The §4 configuration step: sub-domain -> C-DNS."""
        self.stub.add(domain, upstream)

    def handle_query(self, query: Message, client: Endpoint) -> Generator:
        if self.ecs_inject and (query.edns is None
                                or query.edns.client_subnet is None):
            from repro.dnswire.edns import ClientSubnet, Edns
            ecs = ClientSubnet(client.ip, self.ecs_prefix)
            if query.edns is None:
                query.edns = Edns(options=[ecs])
            else:
                query.edns.options.append(ecs)
        ctx = QueryContext(query, client)
        tel = self.network.telemetry
        if tel is not None:
            ctx.telemetry = tel
            ctx.trace = getattr(query, "trace_ctx", None)
            ctx.track = self.host.name
        response = yield from self.chain.run(ctx)
        return response
