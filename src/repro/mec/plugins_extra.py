"""Additional CoreDNS-style plugins: rewrite and loadbalance.

Both exist in real CoreDNS and both matter to the MEC-CDN story:

* **rewrite** maps an external delivery domain onto an internal one —
  e.g. a CDN customer's public domain onto the cluster-local service
  tree — before the rest of the chain resolves it.  The answer records
  are mapped back, so clients never see the internal name.
* **loadbalance** rotates the order of A records in answers, spreading
  clients that "take the first address" across replicas.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.dnswire.message import Question, ResourceRecord
from repro.dnswire.name import Name
from repro.dnswire.types import RecordType
from repro.resolver.chain import Plugin, QueryContext


class RewritePlugin(Plugin):
    """Rewrites query names under ``from_suffix`` to ``to_suffix``.

    The downstream chain sees the rewritten name; answer owner names that
    carry the internal suffix are rewritten back before the response
    leaves the server (CoreDNS ``rewrite ... answer auto``).
    """

    name = "rewrite"

    def __init__(self, from_suffix: Name, to_suffix: Name) -> None:
        self.from_suffix = from_suffix
        self.to_suffix = to_suffix
        self.rewritten = 0

    def map_name(self, qname: Name) -> Optional[Name]:
        """``qname`` with the suffix swapped, or None if it not covered."""
        if not qname.is_subdomain_of(self.from_suffix):
            return None
        prefix = qname.relativize(self.from_suffix)
        return Name.from_labels(prefix + self.to_suffix.labels)

    def unmap_name(self, owner: Name) -> Name:
        """The inverse mapping for answer owner names (identity if uncovered)."""
        if not owner.is_subdomain_of(self.to_suffix):
            return owner
        prefix = owner.relativize(self.to_suffix)
        return Name.from_labels(prefix + self.from_suffix.labels)

    def handle(self, ctx: QueryContext, next_plugin) -> Generator:
        mapped = self.map_name(ctx.qname)
        if mapped is None:
            response = yield from next_plugin(ctx)
            return response
        self.rewritten += 1
        original_question = ctx.query.question
        ctx.query.questions = [Question(mapped, original_question.rtype,
                                        original_question.rclass)]
        response = yield from next_plugin(ctx)
        # Restore the client-visible question and map answers back.
        ctx.query.questions = [original_question]
        if response is not None:
            response.questions = [original_question]
            response.answers = [self._unmap_record(record)
                                for record in response.answers]
        return response

    def _unmap_record(self, record: ResourceRecord) -> ResourceRecord:
        mapped_back = self.unmap_name(record.name)
        if mapped_back == record.name:
            return record
        return ResourceRecord(mapped_back, record.rtype, record.ttl,
                              record.rdata, record.rclass)


class LoadBalancePlugin(Plugin):
    """Round-robin rotation of A/AAAA answers (CoreDNS ``loadbalance``)."""

    name = "loadbalance"

    def __init__(self) -> None:
        self._counter = 0

    def handle(self, ctx: QueryContext, next_plugin) -> Generator:
        response = yield from next_plugin(ctx)
        if response is None:
            return None
        rotatable = [record for record in response.answers
                     if record.rtype in (RecordType.A, RecordType.AAAA)]
        if len(rotatable) > 1:
            others = [record for record in response.answers
                      if record not in rotatable]
            self._counter += 1
            pivot = self._counter % len(rotatable)
            response.answers = others + rotatable[pivot:] + rotatable[:pivot]
        return response
