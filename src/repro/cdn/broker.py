"""CDN brokers and the public multi-CDN authority of Figures 2-3.

The paper's Q3 observes that for a single CDN domain, answers spread
across providers and pools with a distribution that depends on the access
network — driven by cascading CNAMEs, brokers, and per-resolver load
balancing that is opaque even to the CDNs.  :class:`CdnBroker` models the
selection; :class:`BrokeredCdnAuthority` is the authoritative server that
applies it, classifying the requesting resolver into a connectivity class
by its source address.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.cdn.providers import CidrPool, DomainDeployment
from repro.dnswire.message import Message, ResourceRecord, make_response
from repro.dnswire.rdata import A
from repro.dnswire.types import Rcode, RecordType
from repro.netsim.packet import Endpoint
from repro.resolver.server import DnsServer

#: TTL for brokered answers: short, so load balancing stays live.
BROKERED_TTL = 30


class CdnBroker:
    """Splits one domain's traffic across provider pools.

    The per-connectivity weights come from the deployment model; each
    selection also hashes the requesting resolver into the pool so one
    resolver sees a stable-ish front end while the population spreads.
    """

    def __init__(self, deployment: DomainDeployment,
                 rng: random.Random) -> None:
        self.deployment = deployment
        self._rng = rng
        self.selections: Dict[str, int] = {}

    def select_pool(self, connectivity: str) -> CidrPool:
        """Pick a pool for one query using the connectivity's weights."""
        weights = self.deployment.weights_for(connectivity)
        pool = self._rng.choices(self.deployment.pools, weights=weights)[0]
        self.selections[pool.label] = self.selections.get(pool.label, 0) + 1
        return pool

    def resolve(self, connectivity: str, resolver_key: str) -> str:
        """An A-record address for one query from ``resolver_key``."""
        pool = self.select_pool(connectivity)
        return pool.address_for(resolver_key)


class BrokeredCdnAuthority(DnsServer):
    """Authoritative for a set of brokered CDN domains.

    ``resolver_classes`` maps source-IP prefixes to connectivity classes —
    standing in for the provider's knowledge of which L-DNS belongs to
    which access network.  Unknown resolvers fall back to
    ``default_class``.
    """

    def __init__(self, network, host,
                 brokers: List[CdnBroker],
                 resolver_classes: Dict[str, str],
                 default_class: str = "wired-campus",
                 per_domain_delay: Optional[Dict] = None, **kwargs) -> None:
        super().__init__(network, host, **kwargs)
        self._brokers = {broker.deployment.domain: broker
                         for broker in brokers}
        self.resolver_classes = dict(resolver_classes)
        self.default_class = default_class
        #: domain -> LatencyModel: extra C-DNS internal time per provider
        #: stack ("server hierarchy, naming, indexing, content placement,
        #: cache miss policy", §2).
        self.per_domain_delay = dict(per_domain_delay or {})
        self._delay_rng = network.streams.stream(f"cdns-delay:{host.name}")
        self.answered = 0

    def classify(self, resolver_ip: str) -> str:
        """The connectivity class of a resolver, by source-IP prefix."""
        best: Optional[str] = None
        best_len = -1
        for prefix, connectivity in self.resolver_classes.items():
            if resolver_ip.startswith(prefix) and len(prefix) > best_len:
                best, best_len = connectivity, len(prefix)
        return best if best is not None else self.default_class

    def handle_query(self, query: Message, client: Endpoint):
        question = query.question
        broker = self._brokers.get(question.name)
        if broker is None:
            return make_response(query, rcode=Rcode.REFUSED)
        if question.rtype != RecordType.A:
            return make_response(query, authoritative=True)
        extra_delay = self.per_domain_delay.get(question.name)
        if extra_delay is not None:
            return self._answer_with_delay(query, broker, client, extra_delay)
        return self._answer(query, broker, client)

    def _answer_with_delay(self, query: Message, broker: CdnBroker,
                           client: Endpoint, delay) -> "Generator":
        yield delay.sample(self._delay_rng)
        return self._answer(query, broker, client)

    def _answer(self, query: Message, broker: CdnBroker,
                client: Endpoint) -> Message:
        question = query.question
        connectivity = self.classify(client.ip)
        address = broker.resolve(connectivity, client.ip)
        self.answered += 1
        answer = ResourceRecord(question.name, RecordType.A, BROKERED_TTL,
                                A(address))
        return make_response(query, authoritative=True, answers=[answer])
