"""Content catalog and request workloads.

Content items are the static objects (``.img``, ``.js``, ``.css``, video
segments) the paper's Table 1 sites serve through CDN domains.  The
catalog indexes them by URL; :class:`ZipfWorkload` generates the
popularity-skewed request streams CDN evaluations conventionally use.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Sequence

from repro.dnswire.name import Name
from repro.errors import ContentNotFound


class ContentItem:
    """One cacheable object, addressed by a URL under a CDN domain."""

    __slots__ = ("url", "domain", "path", "size_bytes", "content_id")

    def __init__(self, domain: Name, path: str, size_bytes: int) -> None:
        if size_bytes <= 0:
            raise ValueError(f"content size must be positive, got {size_bytes}")
        if not path.startswith("/"):
            raise ValueError(f"path must start with '/', got {path!r}")
        self.domain = domain
        self.path = path
        self.size_bytes = size_bytes
        self.url = f"http://{domain.to_text().rstrip('.')}{path}"
        self.content_id = self.url

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ContentItem):
            return NotImplemented
        return self.content_id == other.content_id

    def __hash__(self) -> int:
        return hash(self.content_id)

    def __repr__(self) -> str:
        return f"ContentItem({self.url}, {self.size_bytes}B)"


class ContentCatalog:
    """All content a CDN deployment knows about, indexed by URL and domain."""

    def __init__(self) -> None:
        self._by_url: Dict[str, ContentItem] = {}
        self._by_domain: Dict[Name, List[ContentItem]] = {}

    def add(self, item: ContentItem) -> ContentItem:
        """Register an existing item in the catalog indexes."""
        self._by_url[item.url] = item
        self._by_domain.setdefault(item.domain, []).append(item)
        return item

    def add_object(self, domain: Name, path: str, size_bytes: int) -> ContentItem:
        """Create and register a new item under ``domain``."""
        return self.add(ContentItem(domain, path, size_bytes))

    def by_url(self, url: str) -> ContentItem:
        """The item at ``url``; raises ContentNotFound if absent."""
        try:
            return self._by_url[url]
        except KeyError:
            raise ContentNotFound(f"no content at {url}") from None

    def for_domain(self, domain: Name) -> List[ContentItem]:
        """Items whose domain matches ``domain`` exactly."""
        return list(self._by_domain.get(domain, []))

    def under_domain(self, suffix: Name) -> List[ContentItem]:
        """Items whose domain equals or sits below ``suffix``.

        A CDN delivery service owns a whole sub-tree (e.g. everything
        under ``mycdn.ciab.test``), so placement uses this, not
        :meth:`for_domain`.
        """
        return [item for domain, items in self._by_domain.items()
                if domain.is_subdomain_of(suffix) for item in items]

    def domains(self) -> List[Name]:
        """All domains with at least one item."""
        return list(self._by_domain)

    def __len__(self) -> int:
        return len(self._by_url)

    def __contains__(self, url: str) -> bool:
        return url in self._by_url

    def populate_synthetic(self, domain: Name, count: int,
                           rng: random.Random,
                           min_bytes: int = 2_000,
                           max_bytes: int = 2_000_000) -> List[ContentItem]:
        """Add ``count`` synthetic objects with log-uniform sizes."""
        import math
        items = []
        for index in range(count):
            log_size = rng.uniform(math.log(min_bytes), math.log(max_bytes))
            items.append(self.add_object(
                domain, f"/static/obj{index:05d}", int(math.exp(log_size))))
        return items


class ZipfWorkload:
    """A Zipf(s)-distributed request stream over a fixed item list."""

    def __init__(self, items: Sequence[ContentItem], rng: random.Random,
                 exponent: float = 0.9) -> None:
        if not items:
            raise ValueError("workload needs at least one item")
        if exponent <= 0:
            raise ValueError(f"Zipf exponent must be positive, got {exponent}")
        self.items = list(items)
        self.exponent = exponent
        self._rng = rng
        weights = [1.0 / (rank ** exponent)
                   for rank in range(1, len(self.items) + 1)]
        total = sum(weights)
        self._cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cumulative.append(acc)

    def next_item(self) -> ContentItem:
        """Draw the next requested item from the Zipf distribution."""
        import bisect
        point = self._rng.random()
        index = bisect.bisect_left(self._cumulative, point)
        return self.items[min(index, len(self.items) - 1)]

    def requests(self, count: int) -> Iterator[ContentItem]:
        """Yield ``count`` successive requests."""
        for _ in range(count):
            yield self.next_item()
