"""Content catalog and request workloads.

Content items are the static objects (``.img``, ``.js``, ``.css``, video
segments) the paper's Table 1 sites serve through CDN domains.  The
catalog indexes them by URL; :class:`ZipfWorkload` generates the
popularity-skewed request streams CDN evaluations conventionally use,
and :class:`ZipfRankStream` is its O(1)-memory core: an exact Zipf(s)
rank sampler that never materializes per-item weight tables, so the
population workload engine can draw from 10^7-object synthetic catalogs
without building 10^7-entry lists.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterator, List, Sequence

from repro.dnswire.name import Name
from repro.errors import ContentNotFound


class ContentItem:
    """One cacheable object, addressed by a URL under a CDN domain."""

    __slots__ = ("url", "domain", "path", "size_bytes", "content_id")

    def __init__(self, domain: Name, path: str, size_bytes: int) -> None:
        if size_bytes <= 0:
            raise ValueError(f"content size must be positive, got {size_bytes}")
        if not path.startswith("/"):
            raise ValueError(f"path must start with '/', got {path!r}")
        self.domain = domain
        self.path = path
        self.size_bytes = size_bytes
        self.url = f"http://{domain.to_text().rstrip('.')}{path}"
        self.content_id = self.url

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ContentItem):
            return NotImplemented
        return self.content_id == other.content_id

    def __hash__(self) -> int:
        return hash(self.content_id)

    def __repr__(self) -> str:
        return f"ContentItem({self.url}, {self.size_bytes}B)"


class ContentCatalog:
    """All content a CDN deployment knows about, indexed by URL and domain."""

    def __init__(self) -> None:
        self._by_url: Dict[str, ContentItem] = {}
        self._by_domain: Dict[Name, List[ContentItem]] = {}

    def add(self, item: ContentItem) -> ContentItem:
        """Register an existing item in the catalog indexes."""
        self._by_url[item.url] = item
        self._by_domain.setdefault(item.domain, []).append(item)
        return item

    def add_object(self, domain: Name, path: str, size_bytes: int) -> ContentItem:
        """Create and register a new item under ``domain``."""
        return self.add(ContentItem(domain, path, size_bytes))

    def by_url(self, url: str) -> ContentItem:
        """The item at ``url``; raises ContentNotFound if absent."""
        try:
            return self._by_url[url]
        except KeyError:
            raise ContentNotFound(f"no content at {url}") from None

    def for_domain(self, domain: Name) -> List[ContentItem]:
        """Items whose domain matches ``domain`` exactly."""
        return list(self._by_domain.get(domain, []))

    def under_domain(self, suffix: Name) -> List[ContentItem]:
        """Items whose domain equals or sits below ``suffix``.

        A CDN delivery service owns a whole sub-tree (e.g. everything
        under ``mycdn.ciab.test``), so placement uses this, not
        :meth:`for_domain`.
        """
        return [item for domain, items in self._by_domain.items()
                if domain.is_subdomain_of(suffix) for item in items]

    def domains(self) -> List[Name]:
        """All domains with at least one item."""
        return list(self._by_domain)

    def __len__(self) -> int:
        return len(self._by_url)

    def __contains__(self, url: str) -> bool:
        return url in self._by_url

    def populate_synthetic(self, domain: Name, count: int,
                           rng: random.Random,
                           min_bytes: int = 2_000,
                           max_bytes: int = 2_000_000) -> List[ContentItem]:
        """Add ``count`` synthetic objects with log-uniform sizes."""
        import math
        items = []
        for index in range(count):
            log_size = rng.uniform(math.log(min_bytes), math.log(max_bytes))
            items.append(self.add_object(
                domain, f"/static/obj{index:05d}", int(math.exp(log_size))))
        return items


class ZipfRankStream:
    """An exact Zipf(s) rank sampler in O(1) memory.

    Draws ranks in ``1..n`` with ``P(rank=k) ∝ k^(-s)`` by rejection
    against the continuous envelope ``x^(-s)`` on ``[1, n+1)``: invert
    the envelope's CDF, floor to an integer candidate, and accept with
    the (monotone, ≤1) ratio of the discrete mass to the envelope mass
    over the candidate's unit cell.  Unlike the inverse-CDF table walk,
    nothing here scales with ``n`` — no weight list, no cumulative
    array — so a 10^7-object catalog costs the same as a 10-object one.
    Valid for any exponent ``s > 0`` (both branches of the envelope
    integral are handled, including ``s = 1``).
    """

    __slots__ = ("n", "exponent", "_rng", "_one_minus_s", "_total",
                 "_cell_one")

    def __init__(self, n: int, rng: random.Random,
                 exponent: float = 0.9) -> None:
        if n < 1:
            raise ValueError(f"rank stream needs n >= 1, got {n}")
        if exponent <= 0:
            raise ValueError(f"Zipf exponent must be positive, got {exponent}")
        self.n = n
        self.exponent = exponent
        self._rng = rng
        self._one_minus_s = 1.0 - exponent
        #: Envelope mass over [1, n+1): integral of x^(-s).
        self._total = self._integral(float(n + 1))
        #: Envelope mass over the first unit cell [1, 2) — the rejection
        #: ratio's normalizer (the ratio is maximal at rank 1).
        self._cell_one = self._integral(2.0)

    def _integral(self, x: float) -> float:
        """∫_1^x t^(-s) dt, with the s = 1 logarithmic branch."""
        if abs(self._one_minus_s) < 1e-12:
            return math.log(x)
        return (x ** self._one_minus_s - 1.0) / self._one_minus_s

    def _inverse(self, area: float) -> float:
        """The x with ∫_1^x t^(-s) dt = ``area`` (envelope CDF inverse)."""
        if abs(self._one_minus_s) < 1e-12:
            return math.exp(area)
        return (1.0 + area * self._one_minus_s) ** (1.0 / self._one_minus_s)

    def next_rank(self) -> int:
        """Draw one rank in ``1..n`` (1 = most popular)."""
        if self.n == 1:
            return 1
        while True:
            x = self._inverse(self._rng.random() * self._total)
            k = int(x)
            if k < 1:
                k = 1
            elif k > self.n:
                k = self.n
            cell = self._integral(float(k + 1)) - self._integral(float(k))
            # target/envelope ratio, normalized by its maximum (rank 1).
            accept = (k ** -self.exponent) * self._cell_one / cell
            if self._rng.random() <= accept:
                return k

    def ranks(self, count: int) -> Iterator[int]:
        """Yield ``count`` successive ranks."""
        for _ in range(count):
            yield self.next_rank()


class ZipfWorkload:
    """A Zipf(s)-distributed request stream over a fixed item list.

    Popularity rank follows item order (``items[0]`` is the most
    popular).  Sampling delegates to :class:`ZipfRankStream`, so the
    per-item weight and cumulative tables the original implementation
    built are gone; only the caller's item list itself is retained.
    """

    def __init__(self, items: Sequence[ContentItem], rng: random.Random,
                 exponent: float = 0.9) -> None:
        if not items:
            raise ValueError("workload needs at least one item")
        self.items = list(items)
        self.exponent = exponent
        self._rng = rng
        self._ranks = ZipfRankStream(len(self.items), rng, exponent=exponent)

    def next_item(self) -> ContentItem:
        """Draw the next requested item from the Zipf distribution."""
        return self.items[self._ranks.next_rank() - 1]

    def requests(self, count: int) -> Iterator[ContentItem]:
        """Yield ``count`` successive requests."""
        for _ in range(count):
            yield self.next_item()
