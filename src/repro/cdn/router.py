"""The CDN traffic router (C-DNS) — the Apache Traffic Control analog.

The traffic router is an authoritative DNS server for the CDN's delivery
domain that answers each query with the address of a cache server chosen
for the requesting client:

* **coverage zones** map client (or ECS) networks to the cache group that
  should serve them — the edge group when the router runs inside the MEC,
  wider groups otherwise;
* within a group, **consistent hashing** on the query name pins content to
  caches, concentrating each object on few servers;
* unhealthy caches are skipped; an empty group (or a content filter miss)
  makes the router answer with the **next tier's router**, exactly the
  paper's "C-DNS simply returns the address of another C-DNS running at a
  different CDN tier".
"""

from __future__ import annotations

import ipaddress
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.cdn.allocation import ConsistentAllocator, HashRing
from repro.cdn.cache_server import CacheServer
from repro.dnswire.edns import ClientSubnet
from repro.dnswire.message import Message, ResourceRecord, make_response
from repro.dnswire.name import Name
from repro.dnswire.rdata import A
from repro.dnswire.types import Rcode, RecordType
from repro.netsim.packet import Endpoint
from repro.resolver.server import DnsServer

#: Short answer TTL, typical for CDN routing answers.
DEFAULT_ANSWER_TTL = 30

#: Owner-name prefix of the TXT marker a router attaches when the
#: answered address is *another C-DNS* rather than a cache (the paper's
#: next-tier referral).  Tier-aware clients re-query the answered address
#: when they see it; plain clients ignore the additional record.
REFERRAL_MARKER_LABEL = "_cdns-referral"


def referral_marker(qname: Name, ttl: int) -> ResourceRecord:
    """The TXT additional that tags an answer as a next-tier referral."""
    from repro.dnswire.rdata import TXT
    return ResourceRecord(qname.prepend(REFERRAL_MARKER_LABEL),
                          RecordType.TXT, ttl,
                          TXT.from_string("next-tier-cdns"))


def is_referral(response) -> bool:
    """Whether a router response carries the next-tier referral marker."""
    return any(record.rtype == RecordType.TXT
               and record.name.labels
               and record.name.labels[0] == REFERRAL_MARKER_LABEL.encode()
               for record in response.additionals)


class CoverageZone(NamedTuple):
    """Client networks mapped to the caches that should serve them."""

    name: str
    networks: List[str]  # CIDR strings
    caches: List[CacheServer]

    def covers(self, ip: str) -> Tuple[bool, int]:
        """(matched, matched-prefix-length) for ``ip``."""
        address = ipaddress.IPv4Address(ip)
        best = -1
        for cidr in self.networks:
            network = ipaddress.IPv4Network(cidr)
            if address in network:
                best = max(best, network.prefixlen)
        return best >= 0, max(best, 0)


#: Backwards-compatible alias: the ring now lives in
#: :mod:`repro.cdn.allocation` so the workload layer can share the exact
#: hash geometry, but router-local users (and tests) keep this name.
_HashRing = HashRing

#: Recognized traffic-allocation policies (see :class:`TrafficRouter`).
ALLOCATION_POLICIES = ("content", "client", "client-bounded")


class TrafficRouter(DnsServer):
    """Authoritative C-DNS for ``cdn_domain``."""

    def __init__(self, network, host, cdn_domain: Name,
                 zones: List[CoverageZone],
                 default_zone: Optional[CoverageZone] = None,
                 answer_ttl: int = DEFAULT_ANSWER_TTL,
                 next_tier: Optional[str] = None,
                 content_available: Optional[Callable[[Name], bool]] = None,
                 ecs_enabled: bool = False,
                 health_check: Optional[Callable[[CacheServer], bool]] = None,
                 allocation: str = "content",
                 allocation_epsilon: float = 0.25,
                 **kwargs) -> None:
        super().__init__(network, host, **kwargs)
        if allocation not in ALLOCATION_POLICIES:
            raise ValueError(
                f"allocation must be one of {ALLOCATION_POLICIES}, "
                f"got {allocation!r}")
        #: Traffic-allocation policy.  ``"content"`` (the default, and
        #: the historical behavior) hashes the query name so content
        #: concentrates on few caches.  ``"client"`` hashes the client
        #: address so each user sticks to one cache regardless of
        #: content.  ``"client-bounded"`` is Huang et al.'s consistent
        #: user-traffic allocation: sticky per-client assignment with
        #: bounded loads, so no cache holds more than
        #: ``ceil((1+eps) * clients / caches)`` users.
        self.allocation = allocation
        self.allocation_epsilon = allocation_epsilon
        #: Predicate deciding whether a cache is eligible; defaults to the
        #: ground-truth online flag, or wire in a
        #: :class:`repro.cdn.health.HealthMonitor`'s belief instead.
        self.health_check = health_check or (lambda cache: cache.online)
        self.cdn_domain = cdn_domain
        self.zones = list(zones)
        self.default_zone = default_zone
        self.answer_ttl = answer_ttl
        #: IP of the next-tier C-DNS returned when this tier cannot serve.
        self.next_tier = next_tier
        self.content_available = content_available
        self.ecs_enabled = ecs_enabled
        self._rings = {zone.name: _HashRing(zone.caches) for zone in zones}
        if default_zone is not None and default_zone.name not in self._rings:
            self._rings[default_zone.name] = _HashRing(default_zone.caches)
        self._allocators: Dict[str, ConsistentAllocator] = {}
        self._caches_by_name: Dict[str, Dict[str, CacheServer]] = {}
        if allocation == "client-bounded":
            for zone in self._all_zones():
                self._install_allocator(zone)
        self.routed = 0
        self.referred_to_next_tier = 0
        self.zone_updates = 0

    def _all_zones(self) -> List[CoverageZone]:
        zones = list(self.zones)
        if (self.default_zone is not None
                and all(zone.name != self.default_zone.name
                        for zone in zones)):
            zones.append(self.default_zone)
        return zones

    def _install_allocator(self, zone: CoverageZone) -> None:
        names = [cache.name for cache in zone.caches]
        existing = self._allocators.get(zone.name)
        if existing is None:
            self._allocators[zone.name] = ConsistentAllocator(
                names, epsilon=self.allocation_epsilon)
        else:
            existing.set_members(names)
        self._caches_by_name[zone.name] = {
            cache.name: cache for cache in zone.caches}

    # -- live reconfiguration ---------------------------------------------------

    def set_zone_caches(self, zone_name: str,
                        caches: List[CacheServer]) -> None:
        """Install a new cache set for a coverage zone, live.

        The dynamic control plane (``repro.control``) calls this when a
        *propagated* zone version changes the endpoint set — the router
        routes on its propagated view, not on orchestrator ground truth,
        which is exactly what makes staleness windows measurable.  The
        consistent-hash ring for the zone is rebuilt in place.
        """
        for index, zone in enumerate(self.zones):
            if zone.name == zone_name:
                updated = zone._replace(caches=list(caches))
                self.zones[index] = updated
                self._rings[zone_name] = _HashRing(updated.caches)
                if self.allocation == "client-bounded":
                    self._install_allocator(updated)
                self.zone_updates += 1
                return
        if self.default_zone is not None and self.default_zone.name == zone_name:
            self.default_zone = self.default_zone._replace(caches=list(caches))
            self._rings[zone_name] = _HashRing(self.default_zone.caches)
            if self.allocation == "client-bounded":
                self._install_allocator(self.default_zone)
            self.zone_updates += 1
            return
        raise ValueError(f"no coverage zone named {zone_name!r}")

    # -- selection --------------------------------------------------------------

    def zone_for(self, client_ip: str) -> Tuple[Optional[CoverageZone], int]:
        """Longest-prefix coverage-zone match for ``client_ip``."""
        best: Optional[CoverageZone] = None
        best_prefix = 0
        for zone in self.zones:
            matched, prefix = zone.covers(client_ip)
            if matched and (best is None or prefix > best_prefix):
                best, best_prefix = zone, prefix
        if best is not None:
            return best, best_prefix
        return self.default_zone, 0

    def select_cache(self, qname: Name,
                     client_ip: str) -> Tuple[Optional[CacheServer], int]:
        """The cache for (content, client), plus the ECS scope to stamp."""
        zone, matched_prefix = self.zone_for(client_ip)
        if zone is None:
            return None, 0
        if self.allocation == "client-bounded":
            return self._select_bounded(zone, client_ip), matched_prefix
        ring = self._rings[zone.name]
        key = (str(qname).lower() if self.allocation == "content"
               else client_ip)
        cache = ring.pick(key, predicate=self.health_check)
        return cache, matched_prefix

    def _select_bounded(self, zone: CoverageZone,
                        client_ip: str) -> Optional[CacheServer]:
        allocator = self._allocators[zone.name]
        by_name = self._caches_by_name[zone.name]

        def eligible(name: str) -> bool:
            cache = by_name.get(name)
            return cache is not None and self.health_check(cache)

        chosen = allocator.assign(client_ip, eligible=eligible)
        return by_name.get(chosen) if chosen is not None else None

    # -- query handling ---------------------------------------------------------------

    def handle_query(self, query: Message, client: Endpoint) -> Message:
        question = query.question
        if not question.name.is_subdomain_of(self.cdn_domain):
            return make_response(query, rcode=Rcode.REFUSED)
        if question.rtype not in (RecordType.A, RecordType.ANY):
            # The routing domain only publishes A records here.
            return make_response(query, authoritative=True)

        ecs = query.edns.client_subnet if (self.ecs_enabled and query.edns) \
            else None
        effective_ip = ecs.address if ecs is not None else client.ip

        served_here = (self.content_available is None
                       or self.content_available(question.name))
        cache: Optional[CacheServer] = None
        scope = 0
        if served_here:
            cache, scope = self.select_cache(question.name, effective_ip)

        additionals = []
        if cache is None:
            outcome = ("servfail" if self.next_tier is None
                       else "next-tier-referral")
        else:
            outcome = "routed"
        tel = self.network.telemetry
        if tel is not None:
            # Re-derive the zone for its name only: zone_for is a pure
            # function of static config, so the extra call cannot
            # perturb the simulation.
            zone, _ = self.zone_for(effective_ip)
            tel.tracer.event(
                "cdns.route", "cdn", self.host.name,
                parent=getattr(query, "trace_ctx", None),
                qname=str(question.name), client_ip=effective_ip,
                zone=zone.name if zone is not None else "none",
                cache=cache.name if cache is not None else "none",
                outcome=outcome, ecs=ecs is not None)
            tel.metrics.counter(
                "repro_cdns_decisions_total",
                "traffic-router routing decisions by outcome").inc(
                    router=self.name, outcome=outcome)
        if cache is None:
            if self.next_tier is None:
                return make_response(query, rcode=Rcode.SERVFAIL,
                                     authoritative=True)
            self.referred_to_next_tier += 1
            answer = ResourceRecord(question.name, RecordType.A,
                                    self.answer_ttl, A(self.next_tier))
            additionals.append(referral_marker(question.name,
                                               self.answer_ttl))
        else:
            self.routed += 1
            answer = ResourceRecord(question.name, RecordType.A,
                                    self.answer_ttl, A(cache.endpoint.ip))

        response = make_response(query, authoritative=True, answers=[answer],
                                 additionals=additionals)
        if response.edns is not None and ecs is not None:
            response.edns.options = [
                opt if not isinstance(opt, ClientSubnet)
                else ecs.with_scope(scope)
                for opt in response.edns.options]
        return response
