"""Consistent-hash traffic allocation: rings and bounded-load assignment.

Two allocators used by the traffic router and the population workload
engine:

* :class:`HashRing` — plain consistent hashing of request keys onto
  named members (the ring the C-DNS has always used for pinning content
  to caches; extracted here so other layers share the *same* hash
  geometry, which is what makes mesoscale routing decisions agree with
  the packet-level router by construction);
* :class:`ConsistentAllocator` — consistent hashing **with bounded
  loads**, after Huang et al., "Consistent User-Traffic Allocation and
  Load Balancing in Mobile Edge Caching": sticky user→cache assignment
  where no member ever exceeds ``ceil((1 + epsilon) * assigned /
  members)`` keys, and a membership change moves only the users whose
  ring walk actually changed.

Everything here is pure data structure — no simulator, no sockets — so
the workload layer can replay routing decisions at millions-of-queries
scale without paying for packet events.
"""

from __future__ import annotations

import bisect
import hashlib
import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Virtual nodes per member; matches the traffic router's historical
#: ring so extracted and in-router selections stay identical.
DEFAULT_VNODES = 64


def hash_point(material: str) -> int:
    """The ring coordinate of ``material`` (sha256, first 8 bytes)."""
    digest = hashlib.sha256(material.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent hashing of string keys onto named members.

    Members are arbitrary objects named by ``name_of`` (default: their
    ``name`` attribute); the ring hashes ``"{name}#{vnode}"`` exactly
    as the traffic router always has, so a ring built over the same
    members picks the same targets.
    """

    def __init__(self, members: Sequence[object],
                 vnodes: int = DEFAULT_VNODES,
                 name_of: Optional[Callable[[object], str]] = None) -> None:
        if name_of is None:
            name_of = _default_name
        self._entries: List[Tuple[int, int, object]] = []
        for seq, member in enumerate(members):
            name = name_of(member)
            for vnode in range(vnodes):
                self._entries.append(
                    (hash_point(f"{name}#{vnode}"), seq, member))
        self._entries.sort(key=lambda entry: entry[0])

    def __len__(self) -> int:
        return len(self._entries)

    def members(self) -> List[object]:
        """The distinct members on the ring, in insertion order."""
        ordered: Dict[int, object] = {}
        for _, seq, member in self._entries:
            if seq not in ordered:
                ordered[seq] = member
        return [ordered[seq] for seq in sorted(ordered)]

    def pick(self, key: str,
             predicate: Optional[Callable[[object], bool]] = None) -> Optional[object]:
        """The first eligible member clockwise of ``key``'s hash point."""
        if not self._entries:
            return None
        index = bisect.bisect_left(self._entries, (hash_point(key), -1))
        for step in range(len(self._entries)):
            _, _, member = self._entries[(index + step) % len(self._entries)]
            if predicate is None or predicate(member):
                return member
        return None

    def walk(self, key: str) -> "_RingWalk":
        """An iterator over members clockwise of ``key`` (dedup'd)."""
        return _RingWalk(self._entries, key)


class _RingWalk:
    """Clockwise member iteration with duplicate-vnode suppression."""

    def __init__(self, entries: List[Tuple[int, int, object]],
                 key: str) -> None:
        self._entries = entries
        self._start = (bisect.bisect_left(entries, (hash_point(key), -1))
                       if entries else 0)

    def __iter__(self) -> "_RingWalkIter":
        return _RingWalkIter(self._entries, self._start)


class _RingWalkIter:
    def __init__(self, entries: List[Tuple[int, int, object]],
                 start: int) -> None:
        self._entries = entries
        self._start = start
        self._step = 0
        self._seen: set = set()

    def __next__(self) -> object:
        while self._step < len(self._entries):
            _, seq, member = self._entries[
                (self._start + self._step) % len(self._entries)]
            self._step += 1
            if seq not in self._seen:
                self._seen.add(seq)
                return member
        raise StopIteration


def _default_name(member: object) -> str:
    name = getattr(member, "name", None)
    if name is None:
        return str(member)
    return str(name)


class ConsistentAllocator:
    """Sticky key→member assignment with bounded loads (Huang et al.).

    ``assign`` walks the ring clockwise from the key's hash point and
    takes the first member whose current load stays under the bound
    ``ceil((1 + epsilon) * (assigned + 1) / member_count)``.  Keys stay
    where they are until :meth:`set_members` changes the population or
    :meth:`release` retires them; a membership change replays the walk
    for every key in assignment order, so only keys whose walk actually
    changed move — the consistency property the paper's hit-rate
    argument depends on.
    """

    def __init__(self, members: Sequence[str],
                 epsilon: float = 0.25,
                 vnodes: int = DEFAULT_VNODES) -> None:
        if epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {epsilon}")
        self.epsilon = epsilon
        self._vnodes = vnodes
        self._members: List[str] = list(members)
        self._ring = HashRing(self._members, vnodes=vnodes,
                              name_of=lambda member: str(member))
        self._assigned: Dict[str, str] = {}
        self._loads: Dict[str, int] = {name: 0 for name in self._members}
        self.moves = 0

    @property
    def members(self) -> List[str]:
        return list(self._members)

    @property
    def assigned_count(self) -> int:
        return len(self._assigned)

    def load(self, member: str) -> int:
        """Current number of keys assigned to ``member``."""
        return self._loads.get(member, 0)

    def capacity(self, total: Optional[int] = None) -> int:
        """The bounded-load ceiling for ``total`` assigned keys."""
        if not self._members:
            return 0
        count = len(self._assigned) if total is None else total
        return int(math.ceil((1 + self.epsilon) * count
                             / len(self._members)))

    def assign(self, key: str,
               eligible: Optional[Callable[[str], bool]] = None) -> Optional[str]:
        """The member serving ``key``; assigns on first touch.

        A sticky assignment is honoured while its member remains
        eligible; otherwise the key is re-walked (and the old load
        released).  Returns ``None`` only when no member is eligible.
        """
        current = self._assigned.get(key)
        if current is not None:
            if current in self._loads and (eligible is None
                                           or eligible(current)):
                return current
            self._release_assignment(key, current)
        bound = self.capacity(len(self._assigned) + 1)
        chosen = self._walk(key, bound, eligible)
        if chosen is None and eligible is not None:
            # Every eligible member is at the bound; relax it rather
            # than fail the key (the paper's overflow-to-next rule).
            chosen = self._walk(key, None, eligible)
        if chosen is None:
            return None
        self._assigned[key] = chosen
        self._loads[chosen] = self._loads.get(chosen, 0) + 1
        return chosen

    def release(self, key: str) -> None:
        """Retire ``key``'s assignment (user left the system)."""
        current = self._assigned.get(key)
        if current is not None:
            self._release_assignment(key, current)

    def set_members(self, members: Sequence[str]) -> int:
        """Install a new member set; returns how many keys moved.

        Every key's walk is replayed in assignment order against the
        new ring, preserving stickiness where the walk still lands on
        the same member under the bound.
        """
        self._members = list(members)
        self._ring = HashRing(self._members, vnodes=self._vnodes,
                              name_of=lambda member: str(member))
        old = self._assigned
        self._assigned = {}
        self._loads = {name: 0 for name in self._members}
        moved = 0
        for key, previous in old.items():
            target = self.assign(key)
            if target != previous:
                moved += 1
        self.moves += moved
        return moved

    # -- internals -----------------------------------------------------------

    def _walk(self, key: str, bound: Optional[int],
              eligible: Optional[Callable[[str], bool]]) -> Optional[str]:
        for member in self._ring.walk(key):
            name = str(member)
            if eligible is not None and not eligible(name):
                continue
            if bound is None or self._loads.get(name, 0) < bound:
                return name
        return None

    def _release_assignment(self, key: str, member: str) -> None:
        del self._assigned[key]
        if member in self._loads and self._loads[member] > 0:
            self._loads[member] -= 1

    def __repr__(self) -> str:
        return (f"ConsistentAllocator({len(self._members)} members, "
                f"{len(self._assigned)} keys, eps={self.epsilon})")
