"""Client side of the minimal GET protocol.

:class:`HttpClient` fetches a URL from a resolved cache address and
reports :class:`FetchResult` with the latency split the end-to-end
experiments need (DNS time is measured separately by the stub resolver;
this measures the content hop the paper's "access latency" includes).
"""

from __future__ import annotations

from typing import Generator, NamedTuple

from repro.errors import CdnError
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.packet import Endpoint
from repro.netsim.socket import UdpSocket

DEFAULT_FETCH_TIMEOUT_MS = 30_000.0


class FetchResult(NamedTuple):
    """One completed content fetch."""

    url: str
    server_ip: str
    status: int
    size_bytes: int
    cache_hit: bool
    served_by: str
    latency_ms: float


class HttpClient:
    """Issues GETs from a client host."""

    def __init__(self, network: Network, host: Host,
                 timeout: float = DEFAULT_FETCH_TIMEOUT_MS) -> None:
        self.network = network
        self.host = host
        self.timeout = timeout
        self.fetches = 0

    def fetch(self, url: str, server_ip: str,
              port: int = 80) -> Generator:
        """Process returning a :class:`FetchResult`.

        Raises :class:`QueryTimeout` if the server never answers and
        :class:`CdnError` on a malformed response.
        """
        sock = UdpSocket(self.host)
        started = self.network.sim.now
        self.fetches += 1
        try:
            reply = yield sock.request(f"GET {url}".encode(),
                                       Endpoint(server_ip, port), self.timeout)
        finally:
            sock.close()
        latency = self.network.sim.now - started
        return _parse_response(reply.payload, url, server_ip, latency)


def _parse_response(payload: bytes, url: str, server_ip: str,
                    latency: float) -> FetchResult:
    text = payload.decode("utf-8", "replace")
    fields = text.split()
    if not fields or not fields[0].isdigit():
        raise CdnError(f"malformed response {text!r}")
    status = int(fields[0])
    if status != 200:
        return FetchResult(url=url, server_ip=server_ip, status=status,
                           size_bytes=0, cache_hit=False, served_by="",
                           latency_ms=latency)
    if len(fields) < 4:
        raise CdnError(f"malformed 200 response {text!r}")
    return FetchResult(
        url=url, server_ip=server_ip, status=200,
        size_bytes=int(fields[1]), cache_hit=fields[2] == "HIT",
        served_by=fields[3], latency_ms=latency)
