"""CDN substrate: content, caches, the traffic router, and provider models.

Stands in for Apache Traffic Control and the commercial CDNs the paper
measures:

* :mod:`repro.cdn.content` — content catalog and Zipf request workloads.
* :mod:`repro.cdn.policy` — LRU/LFU/FIFO eviction.
* :mod:`repro.cdn.cache_server` — cache servers with hit/miss accounting,
  origin fill, and a minimal GET protocol for end-to-end fetch latency.
* :mod:`repro.cdn.geo` — coordinates, haversine distance, and a GeoIP
  database with the limited accuracy the paper calls out.
* :mod:`repro.cdn.providers` — the provider CIDR pools from Figure 3
  (Akamai, Fastly, Amazon CloudFront, Edgecast/Verizon) and the Table 1
  site catalog.
* :mod:`repro.cdn.allocation` — consistent-hash rings and bounded-load
  user-traffic allocation (Huang et al.), shared by the router and the
  population workload engine.
* :mod:`repro.cdn.router` — the C-DNS traffic router: coverage zones,
  consistent hashing, ECS scoping, next-tier referral, and pluggable
  content/client/client-bounded allocation policies.
* :mod:`repro.cdn.hierarchy` — edge/mid/far cache tiers with miss
  referral.
* :mod:`repro.cdn.broker` — CDN broker that splits a domain's traffic
  across providers (the §2/Q3 opaqueness source).
* :mod:`repro.cdn.httpsim` — the client side of the GET protocol.
"""

from repro.cdn.allocation import ConsistentAllocator, HashRing
from repro.cdn.content import (ContentCatalog, ContentItem, ZipfRankStream,
                               ZipfWorkload)
from repro.cdn.policy import EvictionPolicy, LruPolicy, LfuPolicy, FifoPolicy
from repro.cdn.cache_server import CacheServer, CacheStats
from repro.cdn.geo import GeoPoint, GeoIpDatabase, haversine_km
from repro.cdn.providers import (
    CidrPool,
    Provider,
    DomainDeployment,
    PROVIDERS,
    TABLE1_SITES,
)
from repro.cdn.router import TrafficRouter, CoverageZone
from repro.cdn.health import HealthMonitor
from repro.cdn.hierarchy import CdnTier, TieredCdn
from repro.cdn.broker import CdnBroker
from repro.cdn.httpsim import HttpClient, FetchResult

__all__ = [
    "ConsistentAllocator",
    "HashRing",
    "ContentCatalog",
    "ContentItem",
    "ZipfRankStream",
    "ZipfWorkload",
    "EvictionPolicy",
    "LruPolicy",
    "LfuPolicy",
    "FifoPolicy",
    "CacheServer",
    "CacheStats",
    "GeoPoint",
    "GeoIpDatabase",
    "haversine_km",
    "CidrPool",
    "Provider",
    "DomainDeployment",
    "PROVIDERS",
    "TABLE1_SITES",
    "TrafficRouter",
    "CoverageZone",
    "HealthMonitor",
    "CdnTier",
    "TieredCdn",
    "CdnBroker",
    "HttpClient",
    "FetchResult",
]
