"""Geography: coordinates, distance, and an error-prone GeoIP database.

The paper (§2): "CDN servers infer the location of the public gateways
using GeoIP lookup and that too with limited accuracy [MaxMind]".
:class:`GeoIpDatabase` models this: each registered prefix carries the
location the database *believes* plus an error radius; lookups return a
point displaced by up to that radius, so CDN routing decisions built on
GeoIP inherit realistic inaccuracy.
"""

from __future__ import annotations

import ipaddress
import math
import random
from typing import List, NamedTuple, Optional, Tuple

EARTH_RADIUS_KM = 6371.0


class GeoPoint(NamedTuple):
    """A latitude/longitude pair in degrees."""

    lat: float
    lon: float

    def __str__(self) -> str:
        return f"({self.lat:.3f}, {self.lon:.3f})"


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points in kilometres."""
    lat1, lon1, lat2, lon2 = map(math.radians, (a.lat, a.lon, b.lat, b.lon))
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = (math.sin(dlat / 2) ** 2
         + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2)
    return 2 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def displace(point: GeoPoint, distance_km: float, bearing_rad: float) -> GeoPoint:
    """The point ``distance_km`` away from ``point`` along ``bearing_rad``."""
    angular = distance_km / EARTH_RADIUS_KM
    lat1 = math.radians(point.lat)
    lon1 = math.radians(point.lon)
    lat2 = math.asin(math.sin(lat1) * math.cos(angular)
                     + math.cos(lat1) * math.sin(angular) * math.cos(bearing_rad))
    lon2 = lon1 + math.atan2(
        math.sin(bearing_rad) * math.sin(angular) * math.cos(lat1),
        math.cos(angular) - math.sin(lat1) * math.sin(lat2))
    return GeoPoint(math.degrees(lat2), (math.degrees(lon2) + 540) % 360 - 180)


class _GeoEntry(NamedTuple):
    network: ipaddress.IPv4Network
    location: GeoPoint
    error_km: float


class GeoIpDatabase:
    """Longest-prefix GeoIP with a per-entry error radius.

    ``rng`` is required: lookup perturbation must draw from an explicit
    named stream (``network.streams.stream("geoip")``), never a hidden
    shared default — instances that silently share one RNG break replay
    determinism (rule DET005 in ``repro check``).
    """

    def __init__(self, rng: random.Random) -> None:
        self._entries: List[_GeoEntry] = []
        self._rng = rng
        self.lookups = 0
        self.unknown = 0

    def register(self, cidr: str, location: GeoPoint,
                 error_km: float = 0.0) -> None:
        """Map ``cidr`` to ``location`` with the given uncertainty radius."""
        if error_km < 0:
            raise ValueError(f"negative error radius {error_km}")
        self._entries.append(_GeoEntry(
            ipaddress.IPv4Network(cidr), location, error_km))
        self._entries.sort(key=lambda entry: entry.network.prefixlen,
                           reverse=True)

    def lookup(self, ip: str) -> Optional[GeoPoint]:
        """The believed location of ``ip``, perturbed by the error radius."""
        self.lookups += 1
        address = ipaddress.IPv4Address(ip)
        for entry in self._entries:
            if address in entry.network:
                if entry.error_km == 0:
                    return entry.location
                distance = self._rng.uniform(0, entry.error_km)
                bearing = self._rng.uniform(0, 2 * math.pi)
                return displace(entry.location, distance, bearing)
        self.unknown += 1
        return None

    def exact_entry(self, ip: str) -> Optional[Tuple[GeoPoint, float]]:
        """The raw (location, error_km) entry covering ``ip``, if any."""
        address = ipaddress.IPv4Address(ip)
        for entry in self._entries:
            if address in entry.network:
                return entry.location, entry.error_km
        return None

    def __len__(self) -> int:
        return len(self._entries)
