"""Tiered CDN: edge, mid, and far tiers with miss referral.

The paper's §3: "In cases where the content is not available at MEC-CDN,
C-DNS simply returns the address of another C-DNS running at a different
CDN tier, e.g., a mid-tier running alongside the mobile network core, or a
far-tier running in the cloud."  :class:`TieredCdn` wires routers and
caches into that shape: each tier's caches fill from the tier above, and
each tier's router refers to the next tier's router when it cannot serve.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cdn.cache_server import CacheServer
from repro.cdn.router import TrafficRouter


class CdnTier:
    """One tier: a router plus its cache group."""

    def __init__(self, name: str, router: TrafficRouter,
                 caches: List[CacheServer]) -> None:
        self.name = name
        self.router = router
        self.caches = list(caches)
        self.parent: Optional["CdnTier"] = None

    def link_parent(self, parent: "CdnTier") -> None:
        """Fill this tier's caches from the parent tier and refer misses."""
        self.parent = parent
        fill_target = parent.caches[0].endpoint if parent.caches else None
        for cache in self.caches:
            if fill_target is not None:
                cache.parent = fill_target
        self.router.next_tier = parent.router.endpoint.ip

    def hit_ratio(self) -> float:
        """Aggregate hit ratio across this tier's caches."""
        hits = sum(cache.stats.hits for cache in self.caches)
        total = hits + sum(cache.stats.misses for cache in self.caches)
        return hits / total if total else 0.0

    def __repr__(self) -> str:
        return f"CdnTier({self.name}, {len(self.caches)} caches)"


class TieredCdn:
    """An ordered list of tiers, closest to the client first."""

    def __init__(self, tiers: List[CdnTier]) -> None:
        if not tiers:
            raise ValueError("a tiered CDN needs at least one tier")
        self.tiers = list(tiers)
        for child, parent in zip(self.tiers, self.tiers[1:]):
            child.link_parent(parent)

    @property
    def edge(self) -> CdnTier:
        return self.tiers[0]

    @property
    def origin_tier(self) -> CdnTier:
        return self.tiers[-1]

    def tier(self, name: str) -> CdnTier:
        """The tier named ``name``; raises KeyError if absent."""
        for tier in self.tiers:
            if tier.name == name:
                return tier
        raise KeyError(f"no tier called {name!r}")

    def __repr__(self) -> str:
        return f"TieredCdn({[tier.name for tier in self.tiers]})"
