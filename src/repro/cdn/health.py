"""Active health checking of cache servers (the ATC health protocol analog).

The traffic router must only answer with caches that are actually up
("depending on the requested content, the cache servers' configurations
and their availability at the edge", §4).  Flipping a boolean is how the
tests inject failures; this module is the *detection* side: a monitor
that probes each cache over the data path, declares it unhealthy after
consecutive failures, and recovers it on the first successful probe.

Wire the monitor into a router with::

    monitor = HealthMonitor(network, router_host, caches)
    router = TrafficRouter(..., health_check=monitor.is_healthy)
    monitor.start()
"""

from __future__ import annotations

from typing import Dict, Generator, List

from repro.cdn.cache_server import CacheServer
from repro.errors import QueryTimeout
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.socket import UdpSocket


class HealthMonitor:
    """Periodic prober with consecutive-failure hysteresis."""

    def __init__(self, network: Network, host: Host,
                 caches: List[CacheServer],
                 interval_ms: float = 500.0,
                 probe_timeout_ms: float = 200.0,
                 failure_threshold: int = 2) -> None:
        if failure_threshold < 1:
            raise ValueError("failure threshold must be >= 1")
        self.network = network
        self.host = host
        self.caches = list(caches)
        self.interval_ms = interval_ms
        self.probe_timeout_ms = probe_timeout_ms
        self.failure_threshold = failure_threshold
        self._healthy: Dict[str, bool] = {cache.name: True
                                          for cache in caches}
        self._failures: Dict[str, int] = {cache.name: 0 for cache in caches}
        self.probes_sent = 0
        self.transitions = 0
        self._running = False

    def is_healthy(self, cache: CacheServer) -> bool:
        """The monitor's current belief (the router's predicate)."""
        return self._healthy.get(cache.name, False)

    @property
    def healthy_count(self) -> int:
        return sum(1 for status in self._healthy.values() if status)

    # -- probing -----------------------------------------------------------------

    def probe_once(self, cache: CacheServer) -> Generator:
        """Process: one probe; returns True if the cache answered.

        Any response (even a 404) proves liveness — the probe URL does
        not need to exist; a crashed cache answers nothing at all.
        """
        sock = UdpSocket(self.host)
        self.probes_sent += 1
        try:
            yield sock.request(b"GET health://probe", cache.endpoint,
                               self.probe_timeout_ms)
        except QueryTimeout:
            return False
        finally:
            sock.close()
        return True

    def probe_all_once(self) -> Generator:
        """Process: probe every cache and update health beliefs."""
        for cache in self.caches:
            alive = yield from self.probe_once(cache)
            self._account(cache, alive)

    def _account(self, cache: CacheServer, alive: bool) -> None:
        if alive:
            self._failures[cache.name] = 0
            if not self._healthy[cache.name]:
                self._healthy[cache.name] = True
                self.transitions += 1
        else:
            self._failures[cache.name] += 1
            if (self._failures[cache.name] >= self.failure_threshold
                    and self._healthy[cache.name]):
                self._healthy[cache.name] = False
                self.transitions += 1

    # -- continuous operation ----------------------------------------------------------

    def start(self) -> None:
        """Start the background control loop (a simulator process)."""
        if self._running:
            return
        self._running = True

        def loop() -> Generator:
            while self._running:
                yield from self.probe_all_once()
                yield self.interval_ms

        self.network.sim.spawn(loop())

    def stop(self) -> None:
        """Stop the background control loop after its current cycle."""
        self._running = False

    def __repr__(self) -> str:
        return (f"HealthMonitor({self.healthy_count}/{len(self.caches)} "
                f"healthy, probes={self.probes_sent})")
