"""Cache servers and origin servers with a minimal GET protocol.

The transfer protocol is deliberately tiny (documented substitution for
HTTP over TCP): a request datagram ``GET <url>`` is answered with
``200 <size> <HIT|MISS> <server>`` or ``404 <url>``.  Service time models
a lookup cost plus size/bandwidth transfer; on a miss the cache fills from
its parent (another cache tier or the origin) before answering, so
end-to-end fetch latency reflects the hierarchy — which is what the
paper's access-latency argument is about.
"""

from __future__ import annotations

from typing import Generator, Optional, Set

from repro.cdn.content import ContentCatalog, ContentItem
from repro.cdn.policy import EvictionPolicy, LruPolicy
from repro.errors import ContentNotFound, QueryTimeout
from repro.netsim.latency import Constant, LatencyModel
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.packet import Endpoint
from repro.netsim.socket import UdpSocket

HTTP_PORT = 80
#: Upstream fill timeout.
FILL_TIMEOUT_MS = 10_000.0


class CacheStats:
    """Hit/miss/fill accounting for one server."""

    __slots__ = ("hits", "misses", "evictions", "fills", "bytes_served",
                 "not_found")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.fills = 0
        self.bytes_served = 0
        self.not_found = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses + self.not_found

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (f"CacheStats(hits={self.hits}, misses={self.misses}, "
                f"ratio={self.hit_ratio:.2f}, fills={self.fills}, "
                f"not_found={self.not_found}, evictions={self.evictions}, "
                f"bytes_served={self.bytes_served})")


class CacheServer:
    """One CDN cache: bounded store + eviction policy + parent fill path.

    ``is_origin=True`` makes the server authoritative for the whole
    catalog: every request is served without storing (infinite store), the
    role the paper's origin plays behind the far tier.
    """

    def __init__(self, network: Network, host: Host, catalog: ContentCatalog,
                 capacity_bytes: int = 10 ** 9,
                 policy: Optional[EvictionPolicy] = None,
                 parent: Optional[Endpoint] = None,
                 port: int = HTTP_PORT,
                 lookup_delay: Optional[LatencyModel] = None,
                 bandwidth_mbps: float = 1000.0,
                 is_origin: bool = False) -> None:
        if capacity_bytes <= 0:
            raise ValueError("cache capacity must be positive")
        self.network = network
        self.host = host
        self.catalog = catalog
        self.capacity_bytes = capacity_bytes
        self.policy = policy if policy is not None else LruPolicy()
        self.parent = parent
        self.lookup_delay = lookup_delay or Constant(0.1)
        self.bytes_per_ms = bandwidth_mbps * 125.0  # 1 Mbps = 125 B/ms
        self.is_origin = is_origin
        self.online = True
        self.stats = CacheStats()
        self._stored: Set[str] = set()
        self._used_bytes = 0
        self._rng = network.streams.stream(f"cache:{host.name}")
        self.sock = UdpSocket(host, port=port)
        self.sock.on_datagram = self._on_request

    @property
    def name(self) -> str:
        return self.host.name

    @property
    def endpoint(self) -> Endpoint:
        return self.sock.endpoint

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    # -- store management ------------------------------------------------------

    def contains(self, url: str) -> bool:
        """Whether ``url`` is currently served from this store."""
        return self.is_origin or url in self._stored

    def admit(self, item: ContentItem) -> None:
        """Insert ``item``, evicting per policy until it fits."""
        if item.content_id in self._stored or self.is_origin:
            return
        if item.size_bytes > self.capacity_bytes:
            return  # object larger than the cache; never admitted
        while self._used_bytes + item.size_bytes > self.capacity_bytes:
            victim = self.policy.choose_victim()
            if victim is None:
                return
            self._evict(victim)
        self._stored.add(item.content_id)
        self._used_bytes += item.size_bytes
        self.policy.on_admit(item.content_id)

    def _evict(self, content_id: str) -> None:
        if content_id in self._stored:
            self._stored.remove(content_id)
            self._used_bytes -= self.catalog.by_url(content_id).size_bytes
            self.stats.evictions += 1
            tel = self.network.telemetry
            if tel is not None:
                tel.metrics.counter("repro_cache_evictions_total",
                                    "objects evicted from cache stores").inc(
                                        cache=self.name)
        self.policy.on_evict(content_id)

    def warm(self, items) -> None:
        """Preload items (deployment-time content placement)."""
        for item in items:
            self.admit(item)

    # -- request handling ------------------------------------------------------------

    def _on_request(self, payload: bytes, client: Endpoint,
                    sock: UdpSocket) -> None:
        if not self.online:
            return  # an offline cache is silent; clients time out
        self.network.sim.spawn(
            self._serve(payload, client, ctx=sock.last_delivery_ctx))

    def _serve(self, payload: bytes, client: Endpoint,
               ctx=None) -> Generator:
        tel = self.network.telemetry
        span = None
        if tel is not None:
            span = tel.tracer.begin("cache.serve", "cdn", self.host.name,
                                    parent=ctx, cache=self.name)
            if span is not None:
                ctx = span.context
        yield self.lookup_delay.sample(self._rng)
        try:
            url = _parse_get(payload)
            item = self.catalog.by_url(url)
        except (ValueError, ContentNotFound):
            self.stats.not_found += 1
            self._count_request(tel, "not-found")
            self.sock.send_to(b"404 " + payload[:64], client, ctx=ctx)
            if tel is not None:
                tel.tracer.end(span, result="not-found")
            return
        if self.contains(item.content_id):
            self.stats.hits += 1
            self._count_request(tel, "hit")
            self.policy.on_hit(item.content_id)
            yield from self._transmit(item, client, hit=True, ctx=ctx)
            if tel is not None:
                tel.tracer.end(span, result="hit", url=item.url)
            return
        self.stats.misses += 1
        self._count_request(tel, "miss")
        if self.parent is None:
            self.stats.not_found += 1
            self.sock.send_to(f"404 {url}".encode(), client, ctx=ctx)
            if tel is not None:
                tel.tracer.end(span, result="miss-no-parent", url=item.url)
            return
        filled = yield from self._fill_from_parent(item, ctx=ctx)
        if not filled:
            self.sock.send_to(f"504 {url}".encode(), client, ctx=ctx)
            if tel is not None:
                tel.tracer.end(span, result="fill-failed", url=item.url)
            return
        self.admit(item)
        yield from self._transmit(item, client, hit=False, ctx=ctx)
        if tel is not None:
            tel.tracer.end(span, result="miss-filled", url=item.url)

    def _fill_from_parent(self, item: ContentItem, ctx=None) -> Generator:
        assert self.parent is not None
        tel = self.network.telemetry
        span = None
        if tel is not None:
            span = tel.tracer.begin("cache.fill", "cdn", self.host.name,
                                    parent=ctx, cache=self.name,
                                    parent_server=str(self.parent),
                                    url=item.url)
        sock = UdpSocket(self.host)
        try:
            reply = yield sock.request(
                f"GET {item.url}".encode(), self.parent, FILL_TIMEOUT_MS,
                ctx=span.context if span is not None else ctx)
        except QueryTimeout:
            if tel is not None:
                tel.tracer.end(span, outcome="timeout")
            return False
        finally:
            sock.close()
        self.stats.fills += 1
        ok = reply.payload.startswith(b"200 ")
        if tel is not None:
            tel.metrics.counter("repro_cache_fills_total",
                                "parent-fill exchanges completed").inc(
                                    cache=self.name)
            tel.tracer.end(span, outcome="filled" if ok else "parent-error")
        return ok

    def _transmit(self, item: ContentItem, client: Endpoint,
                  hit: bool, ctx=None) -> Generator:
        yield item.size_bytes / self.bytes_per_ms
        self.stats.bytes_served += item.size_bytes
        tel = self.network.telemetry
        if tel is not None:
            tel.metrics.counter("repro_cache_bytes_served_total",
                                "content bytes transmitted to clients").inc(
                                    item.size_bytes, cache=self.name)
        marker = "HIT" if hit else "MISS"
        self.sock.send_to(
            f"200 {item.size_bytes} {marker} {self.name}".encode(), client,
            ctx=ctx)

    def _count_request(self, tel, result: str) -> None:
        if tel is not None:
            tel.metrics.counter("repro_cache_requests_total",
                                "content requests by first-touch "
                                "result").inc(cache=self.name, result=result)

    def __repr__(self) -> str:
        kind = "origin" if self.is_origin else "cache"
        return (f"CacheServer({self.name}, {kind}, "
                f"{self._used_bytes}/{self.capacity_bytes}B, {self.stats!r})")


def _parse_get(payload: bytes) -> str:
    text = payload.decode("utf-8", "strict")
    verb, _, url = text.partition(" ")
    if verb != "GET" or not url:
        raise ValueError(f"malformed request {text!r}")
    return url
