"""Commercial CDN provider models: the CIDR pools of Figures 2-3.

Table 1 of the paper names five travel sites and the CDN domain each uses;
Figure 3 shows how responses for the same domain spread across provider
CIDR pools, with a different spread per access network.  This module
encodes those deployments:

* :data:`PROVIDERS` — the providers seen in Figure 3 with their pools.
* :data:`TABLE1_SITES` — each Table 1 site, its CDN domain, and the
  per-connectivity pool weights.

The weights are calibrated to the *qualitative* shape of Figure 3 (which
pools appear per connectivity and their rough ordering); the paper's bars
are read off a plot, so exact percentages are not meaningful to copy.
"""

from __future__ import annotations

import hashlib
import ipaddress
from typing import Dict, List, NamedTuple, Optional

from repro.cdn.geo import GeoPoint
from repro.dnswire.name import Name


class CidrPool(NamedTuple):
    """One provider address pool (a Figure 3 legend entry)."""

    provider: str
    cidr: str
    site: GeoPoint

    @property
    def label(self) -> str:
        return f"{self.provider} ({self.cidr})"

    def contains(self, ip: str) -> bool:
        """Whether ``ip`` falls inside this pool's CIDR block."""
        return ipaddress.IPv4Address(ip) in ipaddress.IPv4Network(self.cidr)

    def address_for(self, key: str) -> str:
        """A stable host address in this pool derived from ``key``.

        Hashing the key into the pool models the provider's internal load
        balancing: the same client context maps to the same front end,
        different contexts spread across the pool.
        """
        network = ipaddress.IPv4Network(self.cidr)
        digest = hashlib.sha256(f"{self.cidr}:{key}".encode()).digest()
        span = network.num_addresses - 2 if network.num_addresses > 2 else 1
        offset = 1 + int.from_bytes(digest[:4], "big") % span
        return str(network.network_address + offset)


class Provider(NamedTuple):
    """A CDN provider with one or more address pools."""

    name: str
    pools: List[CidrPool]


# Approximate metro locations for pool sites (used by GeoIP modelling).
_ATLANTA = GeoPoint(33.749, -84.388)
_ASHBURN = GeoPoint(39.044, -77.488)
_DALLAS = GeoPoint(32.777, -96.797)
_CHICAGO = GeoPoint(41.878, -87.630)
_LOS_ANGELES = GeoPoint(34.052, -118.244)

# The exact CIDR labels from Figure 3.
AKAMAI_24 = CidrPool("Akamai", "23.55.124.0/24", _ATLANTA)
AKAMAI_8 = CidrPool("Akamai", "23.0.0.0/8", _CHICAGO)
AKAMAI_104 = CidrPool("Akamai", "104.127.91.0/24", _DALLAS)
FASTLY_151 = CidrPool("Fastly", "151.101.0.0/16", _ASHBURN)
FASTLY_199 = CidrPool("Fastly", "199.232.0.0/16", _LOS_ANGELES)
CLOUDFRONT_13 = CidrPool("Amazon CloudFront", "13.249.0.0/16", _ASHBURN)
CLOUDFRONT_54 = CidrPool("Amazon CloudFront", "54.230.0.0/16", _DALLAS)
EDGECAST = CidrPool("Edgecast-Verizon", "152.195.0.0/16", _LOS_ANGELES)

PROVIDERS: Dict[str, Provider] = {
    "Akamai": Provider("Akamai", [AKAMAI_24, AKAMAI_8, AKAMAI_104]),
    "Fastly": Provider("Fastly", [FASTLY_151, FASTLY_199]),
    "Amazon CloudFront": Provider("Amazon CloudFront",
                                  [CLOUDFRONT_13, CLOUDFRONT_54]),
    "Edgecast-Verizon": Provider("Edgecast-Verizon", [EDGECAST]),
}

#: The connectivity classes of Figure 2/3.
CONNECTIVITIES = ("wired-campus", "wifi-home", "cellular-mobile")


class DomainDeployment(NamedTuple):
    """One Table 1 site: its CDN domain and per-connectivity pool mix."""

    site: str
    domain: Name
    pools: List[CidrPool]
    #: connectivity -> weight per pool (same order as ``pools``).
    weights: Dict[str, List[float]]

    def weights_for(self, connectivity: str) -> List[float]:
        """The pool weights for one connectivity class."""
        try:
            return self.weights[connectivity]
        except KeyError:
            raise ValueError(f"unknown connectivity {connectivity!r}; "
                             f"expected one of {CONNECTIVITIES}") from None

    def pool_for_ip(self, ip: str) -> Optional[CidrPool]:
        """The pool an answer address belongs to, or None."""
        for pool in self.pools:
            if pool.contains(ip):
                return pool
        return None


TABLE1_SITES: List[DomainDeployment] = [
    DomainDeployment(
        site="Airbnb",
        domain=Name("a0.muscache.com"),
        pools=[AKAMAI_24, FASTLY_151, FASTLY_199],
        weights={
            "wired-campus": [0.55, 0.30, 0.15],
            "wifi-home": [0.25, 0.50, 0.25],
            "cellular-mobile": [0.10, 0.30, 0.60],
        }),
    DomainDeployment(
        site="Booking.com",
        domain=Name("q-cf.bstatic.com"),
        pools=[CLOUDFRONT_13, CLOUDFRONT_54],
        weights={
            "wired-campus": [0.70, 0.30],
            "wifi-home": [0.40, 0.60],
            "cellular-mobile": [0.15, 0.85],
        }),
    DomainDeployment(
        site="TripAdvisor",
        domain=Name("static.tacdn.com"),
        pools=[AKAMAI_8, AKAMAI_104, FASTLY_151, FASTLY_199, EDGECAST],
        weights={
            "wired-campus": [0.30, 0.20, 0.25, 0.15, 0.10],
            "wifi-home": [0.20, 0.15, 0.30, 0.20, 0.15],
            "cellular-mobile": [0.10, 0.10, 0.25, 0.30, 0.25],
        }),
    DomainDeployment(
        site="Agoda",
        domain=Name("cdn0.agoda.net"),
        pools=[AKAMAI_24, AKAMAI_8],
        weights={
            "wired-campus": [0.80, 0.20],
            "wifi-home": [0.50, 0.50],
            "cellular-mobile": [0.20, 0.80],
        }),
    DomainDeployment(
        site="Expedia",
        domain=Name("a.cdn.intentmedia.net"),
        pools=[CLOUDFRONT_13, CLOUDFRONT_54, FASTLY_151, FASTLY_199],
        weights={
            "wired-campus": [0.40, 0.20, 0.25, 0.15],
            "wifi-home": [0.25, 0.25, 0.30, 0.20],
            "cellular-mobile": [0.10, 0.15, 0.35, 0.40],
        }),
]


def deployment_for(site_or_domain: str) -> DomainDeployment:
    """Look up a Table 1 deployment by site name or CDN domain."""
    wanted = site_or_domain.lower().rstrip(".")
    for deployment in TABLE1_SITES:
        if deployment.site.lower() == wanted:
            return deployment
        if deployment.domain.to_text().rstrip(".").lower() == wanted:
            return deployment
    raise KeyError(f"no Table 1 site or domain called {site_or_domain!r}")
