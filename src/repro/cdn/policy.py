"""Cache eviction policies.

The cache server asks its policy which resident object to evict when
admission would exceed capacity.  Implementations keep their own metadata
and are notified on hit/admit/evict, so they compose with any store.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class EvictionPolicy:
    """Interface: tracks residency metadata, chooses victims."""

    def on_admit(self, content_id: str) -> None:
        """Track a newly admitted object."""
        raise NotImplementedError

    def on_hit(self, content_id: str) -> None:
        """Track a hit on a resident object."""
        raise NotImplementedError

    def on_evict(self, content_id: str) -> None:
        """Forget an evicted object."""
        raise NotImplementedError

    def choose_victim(self) -> Optional[str]:
        """The next content id to evict, or None if nothing is tracked."""
        raise NotImplementedError


class LruPolicy(EvictionPolicy):
    """Evict the least-recently used object (ATC's default behaviour)."""

    def __init__(self) -> None:
        self._order: "OrderedDict[str, None]" = OrderedDict()

    def on_admit(self, content_id: str) -> None:
        """Track a newly admitted object."""
        self._order[content_id] = None
        self._order.move_to_end(content_id)

    def on_hit(self, content_id: str) -> None:
        """Track a hit on a resident object."""
        if content_id in self._order:
            self._order.move_to_end(content_id)

    def on_evict(self, content_id: str) -> None:
        """Forget an evicted object."""
        self._order.pop(content_id, None)

    def choose_victim(self) -> Optional[str]:
        return next(iter(self._order), None)


class LfuPolicy(EvictionPolicy):
    """Evict the least-frequently used object; ties broken by age."""

    def __init__(self) -> None:
        self._counts: "OrderedDict[str, int]" = OrderedDict()

    def on_admit(self, content_id: str) -> None:
        """Track a newly admitted object."""
        self._counts[content_id] = 1

    def on_hit(self, content_id: str) -> None:
        """Track a hit on a resident object."""
        if content_id in self._counts:
            self._counts[content_id] += 1

    def on_evict(self, content_id: str) -> None:
        """Forget an evicted object."""
        self._counts.pop(content_id, None)

    def choose_victim(self) -> Optional[str]:
        if not self._counts:
            return None
        return min(self._counts, key=lambda cid: self._counts[cid])


class FifoPolicy(EvictionPolicy):
    """Evict in admission order, ignoring hits."""

    def __init__(self) -> None:
        self._order: "OrderedDict[str, None]" = OrderedDict()

    def on_admit(self, content_id: str) -> None:
        """Track a newly admitted object."""
        if content_id not in self._order:
            self._order[content_id] = None

    def on_hit(self, content_id: str) -> None:
        """Track a hit on a resident object."""
        pass  # FIFO ignores recency

    def on_evict(self, content_id: str) -> None:
        """Forget an evicted object."""
        self._order.pop(content_id, None)

    def choose_victim(self) -> Optional[str]:
        return next(iter(self._order), None)
