"""Figure 3: distribution of DNS answers across provider CIDR pools.

For each Table 1 domain and connectivity, tally which provider pool each
answer falls into (the paper maps answer IPs to the CIDR blocks in the
legend).  The reproduced claims:

1. for a fixed domain queried from one location, the answer distribution
   over pools *differs by access network*;
2. only the pools of that domain's deployment ever appear;
3. multi-provider domains (Airbnb, Expedia, TripAdvisor) really do spread
   across providers.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, NamedTuple

from repro.cdn.providers import CONNECTIVITIES, TABLE1_SITES
from repro.experiments.public_internet import PublicInternetScenario
from repro.experiments.report import format_bar, format_table
from repro.runtime import Experiment, Param, derive_seed

DEFAULT_TRIALS = 40


class Figure3Row(NamedTuple):
    site: str
    connectivity: str
    #: pool label -> fraction of answers (sums to 1 when none unmatched).
    distribution: Dict[str, float]
    unmatched: int


class Figure3Result(NamedTuple):
    rows: List[Figure3Row]
    trials: int

    def distribution_for(self, site: str,
                         connectivity: str) -> Dict[str, float]:
        """The pool-share distribution for one (site, connectivity)."""
        for row in self.rows:
            if row.site == site and row.connectivity == connectivity:
                return row.distribution
        raise KeyError((site, connectivity))

    def render(self) -> str:
        """Render the paper-comparable text output."""
        blocks: List[str] = [
            f"Figure 3: DNS answer distribution over provider pools "
            f"({self.trials} queries/bar)", ""]
        for site in sorted({row.site for row in self.rows}):
            blocks.append(f"--- {site} ---")
            table_rows = []
            for row in self.rows:
                if row.site != site:
                    continue
                for label, fraction in sorted(row.distribution.items()):
                    table_rows.append((
                        row.connectivity, label,
                        f"{100 * fraction:5.1f}%", format_bar(fraction)))
            blocks.append(format_table(
                ["Connectivity", "Pool", "Share", ""], table_rows))
            blocks.append("")
        return "\n".join(blocks)


def _deployment(site: str):
    for deployment in TABLE1_SITES:
        if deployment.site == site:
            return deployment
    raise KeyError(site)


class Figure3Experiment(Experiment):
    """One trial per (site, connectivity) bar, independently seeded."""

    name = "figure3"
    title = "Figure 3: DNS answer distribution over provider pools"
    params = (Param("trials", int, 25, "queries per bar"),
              Param("seed", int, 42, "base RNG seed"))

    def trials(self, params):
        trials = int(params["trials"])
        base = int(params["seed"])
        specs = []
        for deployment in TABLE1_SITES:
            for connectivity in CONNECTIVITIES:
                specs.append(self.spec(
                    len(specs),
                    seed=derive_seed(base, "figure3", deployment.site,
                                     connectivity),
                    site=deployment.site, connectivity=connectivity,
                    trials=trials))
        return specs

    def run_trial(self, spec):
        site = str(spec.value("site"))
        connectivity = str(spec.value("connectivity"))
        deployment = _deployment(site)
        scenario = PublicInternetScenario(seed=spec.seed)
        results = scenario.run_series(connectivity, deployment,
                                      int(spec.value("trials")))
        counts: Counter = Counter()
        unmatched = 0
        for result in results:
            for address in result.addresses:
                pool = deployment.pool_for_ip(address)
                if pool is None:
                    unmatched += 1
                else:
                    counts[pool.label] += 1
        total = sum(counts.values())
        distribution = {label: count / total
                        for label, count in counts.items()} if total else {}
        return Figure3Row(site, connectivity, distribution, unmatched)

    def merge(self, params, payloads):
        return Figure3Result(rows=list(payloads),
                             trials=int(params["trials"]))

    def check_shape(self, result):
        return check_shape(result)


EXPERIMENT = Figure3Experiment()


def run(trials: int = DEFAULT_TRIALS, seed: int = 0) -> Figure3Result:
    """Run the experiment and return its structured result."""
    return EXPERIMENT.run_serial(trials=trials, seed=seed)


def check_shape(result: Figure3Result) -> List[str]:
    """Violated Figure 3 claims (empty list = all hold)."""
    violations: List[str] = []
    for deployment in TABLE1_SITES:
        site = deployment.site
        legal_labels = {pool.label for pool in deployment.pools}
        distributions = {}
        for connectivity in CONNECTIVITIES:
            distribution = result.distribution_for(site, connectivity)
            distributions[connectivity] = distribution
            illegal = set(distribution) - legal_labels
            if illegal:
                violations.append(f"{site}/{connectivity}: answers outside "
                                  f"the deployment pools: {illegal}")
        # Distributions must differ across connectivities: compare the
        # dominant pool share, which the weights separate by >= 15 points.
        wired = distributions["wired-campus"]
        cellular = distributions["cellular-mobile"]
        if wired and cellular:
            top_wired = max(wired, key=wired.get)
            share_wired = wired[top_wired]
            share_cell = cellular.get(top_wired, 0.0)
            if abs(share_wired - share_cell) < 0.10:
                violations.append(
                    f"{site}: wired and cellular distributions look the "
                    f"same (top pool {top_wired}: {share_wired:.2f} vs "
                    f"{share_cell:.2f})")
    for row in result.rows:
        if row.unmatched:
            violations.append(f"{row.site}/{row.connectivity}: "
                              f"{row.unmatched} unmatched answers")
    return violations
