"""Chaos experiment: the six deployments under injected faults (extension).

Figure 5 measures the deployments on a healthy network.  §3 of the paper
argues the MEC-integrated design must also *survive* — "have DNS
requests ... be forwarded to L-DNS on timeout from MEC DNS" — but never
quantifies what failure costs.  This experiment does, replaying three
fault scenarios from :mod:`repro.faults` against the testbeds:

* ``cdns-crash`` — the CDN's authoritative C-DNS crashes for 20 s.  The
  MEC deployments route every query through it (TTL-0 answers), so the
  baseline loses availability; the warmed-L-DNS deployments never leave
  their cache and are immune — which is precisely the paper's point
  about established CDN domains.  The resilient variant (short upstream
  timeout, TTL-2 answers, RFC 8767 serve-stale) keeps answering from
  stale state.
* ``mec-partition`` — the whole MEC cluster is cut off.  Serve-stale
  cannot help (the resolver itself is unreachable); the §3 mitigation —
  a client that falls back to the provider L-DNS on timeout — can.
* ``lte-burst-loss`` — Gilbert–Elliott burst loss on the radio link.
  The resilient client's backoff retries and hedged queries trade a few
  duplicate packets for a collapsed tail.

Availability is deadline-based: a lookup counts only if it returned
usable addresses within :data:`DEADLINE_MS` (a streaming player that
waits longer than that rebuffers anyway).  Fault timelines are recorded
per cell, and one cell is replayed with the same seed to prove the whole
run — fault firing and measurements — is byte-for-byte deterministic.
"""

from __future__ import annotations

from typing import Dict, Generator, List, NamedTuple, Tuple

from repro.core.deployments import (DEPLOYMENT_KEYS, ResilienceConfig,
                                    Testbed, add_provider_ldns, build_testbed)
from repro.core.fallback import FallbackClient
from repro.experiments.report import format_table
from repro.faults import FaultPlan, inject
from repro.measure.runner import MeasurementRun, measure_deployment_run
from repro.measure.stats import percentile
from repro.resolver.retry import RetryPolicy
from repro.runtime import Experiment, Param

#: Measured lookups per cell (after warmup).
DEFAULT_QUERIES = 40

#: A lookup is "available" only if it returned addresses within this
#: deadline: past it, a streaming client has already rebuffered.
DEADLINE_MS = 800.0

#: Fault window shared by the crash and partition scenarios.
FAULT_AT_MS = 2000.0
FAULT_DURATION_MS = 20000.0

#: Inter-query spacing for the sequential measurement driver.
SPACING_MS = 200.0
WARMUP_QUERIES = 2

#: The baseline client: the Figure 5 stub with an impatient but plain
#: timeout/retry pair, no backoff, no hedging, no stale tolerance.
BASELINE_TIMEOUT_MS = 1000.0
BASELINE_RETRIES = 1

#: Gilbert–Elliott radio parameters for ``lte-burst-loss`` (~19% packet
#: loss in bursts averaging four back-to-back traversals).
BURST_P_ENTER = 0.06
BURST_P_EXIT = 0.25
BURST_BAD_LOSS = 0.95
BURST_GOOD_LOSS = 0.02

#: Which host dies in the ``cdns-crash`` scenario.  The warmed-resolver
#: deployments have no C-DNS in the measured path (the A record "never
#: expires at L-DNS"), so there is nothing to crash: their immunity is
#: the experiment's control group, not an omission.
_CRASH_HOSTS = {
    "mec-ldns-lan-cdns": "lan-cdns",
    "mec-ldns-wan-cdns": "wan-cdns",
}

MODES = ("baseline", "resilient")
SCENARIOS = ("cdns-crash", "mec-partition", "lte-burst-loss")


class ScenarioRow(NamedTuple):
    """One (scenario, deployment, mode) cell of the chaos grid."""

    scenario: str
    deployment: str
    mode: str
    queries: int
    answered: int          # lookups that returned usable addresses at all
    availability: float    # answered within DEADLINE_MS / queries
    p50_ms: float          # over every lookup, failures at their full cost
    p95_ms: float
    stale_answers: int     # RFC 8767 answers served past their TTL
    fallback_answers: int  # lookups answered by the provider L-DNS
    timeouts: int          # per-attempt timeouts burned by the client
    mean_attempts: float   # transmissions per lookup (1.0 = no retries)


class ResilienceResult(NamedTuple):
    """The chaos grid plus the determinism evidence behind it."""

    rows: List[ScenarioRow]
    #: "scenario/deployment/mode" -> the injector's fault timeline.
    timelines: Dict[str, List[str]]
    #: Replayed cells: check name -> (first run digest, second run digest).
    replays: Dict[str, Tuple[str, str]]
    queries: int

    def row(self, scenario: str, deployment: str, mode: str) -> ScenarioRow:
        """The unique cell for (scenario, deployment, mode)."""
        for row in self.rows:
            if (row.scenario, row.deployment, row.mode) == (
                    scenario, deployment, mode):
                return row
        raise KeyError(f"no cell {scenario}/{deployment}/{mode}")

    def render(self) -> str:
        """The chaos grid as a fixed-width table."""
        body = [[row.scenario, row.deployment, row.mode,
                 f"{row.availability:.2f}",
                 f"{row.p50_ms:.1f}", f"{row.p95_ms:.1f}",
                 str(row.stale_answers), str(row.fallback_answers),
                 str(row.timeouts), f"{row.mean_attempts:.2f}"]
                for row in self.rows]
        table = format_table(
            ["scenario", "deployment", "mode", "avail",
             "p50 ms", "p95 ms", "stale", "fallback", "t/o", "att"],
            body,
            title=f"Resilience under injected faults "
                  f"({self.queries} queries/cell, "
                  f"deadline {DEADLINE_MS:.0f} ms)")
        lines = [table, "", "fault timelines:"]
        for key, timeline in sorted(self.timelines.items()):
            events = "; ".join(timeline) if timeline else "(no faults)"
            lines.append(f"  {key}: {events}")
        return "\n".join(lines)


def _resilient_policy() -> RetryPolicy:
    """The hardened client: short timeouts, backoff, jitter, hedging."""
    return RetryPolicy(retries=3, timeout_ms=250.0, backoff=2.0,
                       max_timeout_ms=1000.0, jitter_frac=0.1,
                       hedge_after_ms=120.0)


def _client_stub(testbed: Testbed, mode: str):
    """The per-mode client against ``testbed``'s configured resolver."""
    if mode == "resilient":
        return testbed.ue.stub(policy=_resilient_policy())
    return testbed.ue.stub(timeout=BASELINE_TIMEOUT_MS,
                           retries=BASELINE_RETRIES)


def _row_from_run(scenario: str, deployment: str, mode: str,
                  run: MeasurementRun) -> ScenarioRow:
    """Collapse a measurement run into one grid cell."""
    measurements = run.measurements
    usable = [m for m in measurements
              if m.status == "NOERROR" and m.addresses]
    within = [m for m in usable if m.latency_ms <= DEADLINE_MS]
    latencies = [m.latency_ms for m in measurements]
    return ScenarioRow(
        scenario=scenario, deployment=deployment, mode=mode,
        queries=len(measurements), answered=len(usable),
        availability=(len(within) / len(measurements)
                      if measurements else 0.0),
        p50_ms=percentile(latencies, 50), p95_ms=percentile(latencies, 95),
        stale_answers=sum(1 for m in measurements if m.stale),
        fallback_answers=0,
        timeouts=run.retries.timeouts_seen,
        mean_attempts=run.retries.mean_attempts)


def _digest(timeline: List[str], run: MeasurementRun) -> str:
    """A byte-for-byte fingerprint of faults fired and lookups measured."""
    lines = list(timeline)
    for m in run.measurements:
        lines.append(f"t={m.started_at:.6f} lat={m.latency_ms:.6f} "
                     f"{m.status} [{','.join(m.addresses)}] "
                     f"att={m.attempts} stale={m.stale}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Scenario cells
# ---------------------------------------------------------------------------

def _crash_cell(deployment: str, mode: str, queries: int,
                seed: int) -> Tuple[ScenarioRow, List[str], str]:
    """C-DNS crash: build, injure, measure one deployment."""
    resilience = ResilienceConfig() if mode == "resilient" else None
    testbed = build_testbed(deployment, seed=seed, resilience=resilience)
    plan = FaultPlan()
    target = _crash_target(testbed)
    if target is not None:
        plan.crash_host(target, FAULT_AT_MS, FAULT_DURATION_MS)
    injector = inject(testbed.network, plan)
    run = measure_deployment_run(testbed, queries, spacing_ms=SPACING_MS,
                                 warmup=WARMUP_QUERIES,
                                 stub=_client_stub(testbed, mode))
    row = _row_from_run("cdns-crash", deployment, mode, run)
    return row, injector.timeline, _digest(injector.timeline, run)


def _crash_target(testbed: Testbed) -> str:
    """The C-DNS host in this deployment's resolution path, if any."""
    if testbed.key == "mec-ldns-mec-cdns":
        return testbed.mec_site.cdns_pod.host.name
    return _CRASH_HOSTS.get(testbed.key)


def _cluster_host_names(testbed: Testbed) -> List[str]:
    """Every host inside the MEC cluster: k8s nodes plus their pods."""
    names = []
    for node in testbed.mec_site.orchestrator.nodes:
        names.append(node.host.name)
        names.extend(pod.host.name for pod in node.pods)
    return sorted(names)


def _partition_cell(mode: str, queries: int,
                    seed: int) -> Tuple[ScenarioRow, List[str]]:
    """MEC cluster partition against the all-MEC deployment."""
    testbed = build_testbed("mec-ldns-mec-cdns", seed=seed)
    plan = FaultPlan().partition(_cluster_host_names(testbed),
                                 FAULT_AT_MS, FAULT_DURATION_MS)
    injector = inject(testbed.network, plan)
    if mode == "baseline":
        run = measure_deployment_run(testbed, queries, spacing_ms=SPACING_MS,
                                     warmup=WARMUP_QUERIES,
                                     stub=_client_stub(testbed, mode))
        return (_row_from_run("mec-partition", "mec-ldns-mec-cdns",
                              mode, run),
                injector.timeline)
    row = _measure_with_fallback(testbed, queries)
    return row, injector.timeline


def _measure_with_fallback(testbed: Testbed, queries: int) -> ScenarioRow:
    """Drive §3's timeout-fallback client through the partition window."""
    provider = add_provider_ldns(testbed)
    client = FallbackClient(testbed.network, testbed.ue.host,
                            mec_dns=testbed.ue.dns,
                            provider_ldns=provider.endpoint,
                            mec_timeout=300.0, total_timeout=2000.0)
    sim = testbed.sim
    records: List[Tuple[float, str, List[str], bool]] = []

    def driver() -> Generator:
        """Sequential lookups, recording fallback use per lookup."""
        for index in range(WARMUP_QUERIES + queries):
            started = sim.now
            try:
                result = yield from client.timeout_fallback(
                    testbed.query_name)
            except Exception:  # noqa: BLE001 - failures are data here
                if index >= WARMUP_QUERIES:
                    records.append((sim.now - started, "TIMEOUT", [], False))
            else:
                if index >= WARMUP_QUERIES:
                    records.append((result.latency_ms, result.status,
                                    result.addresses, result.used_fallback))
            yield SPACING_MS

    sim.run_until_resolved(sim.spawn(driver()))
    latencies = [latency for latency, _, _, _ in records]
    usable = [(latency, status, addresses)
              for latency, status, addresses, _ in records
              if status == "NOERROR" and addresses]
    fallbacks = sum(1 for _, _, _, used in records if used)
    return ScenarioRow(
        scenario="mec-partition", deployment="mec-ldns-mec-cdns",
        mode="resilient", queries=len(records), answered=len(usable),
        availability=(sum(1 for latency, _, _ in usable
                          if latency <= DEADLINE_MS) / len(records)
                      if records else 0.0),
        p50_ms=percentile(latencies, 50), p95_ms=percentile(latencies, 95),
        stale_answers=0, fallback_answers=fallbacks,
        timeouts=fallbacks,  # each fallback burned exactly one MEC timeout
        mean_attempts=((len(records) + fallbacks) / len(records)
                       if records else 0.0))


def _burst_cell(mode: str, queries: int,
                seed: int) -> Tuple[ScenarioRow, List[str]]:
    """Gilbert–Elliott burst loss on the UE's radio link."""
    testbed = build_testbed("mec-ldns-mec-cdns", seed=seed)
    plan = FaultPlan().burst_loss(
        testbed.ue.host.name, "enb-1", at_ms=0.0,
        p_enter=BURST_P_ENTER, p_exit=BURST_P_EXIT,
        bad_loss=BURST_BAD_LOSS, good_loss=BURST_GOOD_LOSS)
    injector = inject(testbed.network, plan)
    run = measure_deployment_run(testbed, queries, spacing_ms=SPACING_MS,
                                 warmup=WARMUP_QUERIES,
                                 stub=_client_stub(testbed, mode))
    return (_row_from_run("lte-burst-loss", "mec-ldns-mec-cdns", mode, run),
            injector.timeline)


# ---------------------------------------------------------------------------
# Experiment entry points
# ---------------------------------------------------------------------------

class ResilienceExperiment(Experiment):
    """The chaos grid, one trial per (scenario, deployment, mode) cell.

    Every cell builds its own faulted testbed from the base seed — the
    historical loop did exactly that — so sharding cannot change any
    measured value.  The two determinism-replay runs are cells too
    (``kind="replay"``), each contributing one digest; ``merge`` pairs
    them back into the published ``replays`` evidence.
    """

    name = "resilience"
    title = "§3 chaos grid: the deployments under injected faults"
    params = (Param("queries", int, 40, "measured lookups per cell"),
              Param("seed", int, 42, "base RNG seed"))

    def trials(self, params):
        queries = int(params["queries"])
        base = int(params["seed"])
        specs = []
        for deployment in DEPLOYMENT_KEYS:
            for mode in MODES:
                specs.append(self.spec(
                    len(specs), seed=base, kind="crash",
                    deployment=deployment, mode=mode, queries=queries))
        for mode in MODES:
            specs.append(self.spec(len(specs), seed=base, kind="partition",
                                   mode=mode, queries=queries))
        for mode in MODES:
            specs.append(self.spec(len(specs), seed=base, kind="burst",
                                   mode=mode, queries=queries))
        for which in (1, 2):
            specs.append(self.spec(len(specs), seed=base, kind="replay",
                                   which=which, queries=queries))
        return specs

    def run_trial(self, spec):
        kind = str(spec.value("kind"))
        queries = int(spec.value("queries"))
        if kind == "crash":
            deployment = str(spec.value("deployment"))
            mode = str(spec.value("mode"))
            row, timeline, _ = _crash_cell(deployment, mode, queries,
                                           spec.seed)
            return ("crash", deployment, mode, row, timeline)
        if kind == "partition":
            mode = str(spec.value("mode"))
            row, timeline = _partition_cell(mode, queries, spec.seed)
            return ("partition", mode, row, timeline)
        if kind == "burst":
            mode = str(spec.value("mode"))
            row, timeline = _burst_cell(mode, queries, spec.seed)
            return ("burst", mode, row, timeline)
        _, _, digest = _crash_cell("mec-ldns-mec-cdns", "resilient",
                                   queries, spec.seed)
        return ("replay", int(spec.value("which")), digest)

    def merge(self, params, payloads):
        rows: List[ScenarioRow] = []
        timelines: Dict[str, List[str]] = {}
        digests: Dict[int, str] = {}
        for payload in payloads:
            kind = payload[0]
            if kind == "crash":
                _, deployment, mode, row, timeline = payload
                rows.append(row)
                timelines[f"cdns-crash/{deployment}/{mode}"] = timeline
            elif kind == "partition":
                _, mode, row, timeline = payload
                rows.append(row)
                timelines[f"mec-partition/mec-ldns-mec-cdns/{mode}"] = \
                    timeline
            elif kind == "burst":
                _, mode, row, timeline = payload
                rows.append(row)
                timelines[f"lte-burst-loss/mec-ldns-mec-cdns/{mode}"] = \
                    timeline
            else:
                _, which, digest = payload
                digests[which] = digest
        replays = {"cdns-crash/mec-ldns-mec-cdns/resilient":
                   (digests[1], digests[2])}
        return ResilienceResult(rows=rows, timelines=timelines,
                                replays=replays,
                                queries=int(params["queries"]))

    def check_shape(self, result):
        return check_shape(result)


EXPERIMENT = ResilienceExperiment()


def run(queries: int = DEFAULT_QUERIES, seed: int = 42) -> ResilienceResult:
    """Replay the three fault scenarios over baseline/resilient cells."""
    return EXPERIMENT.run_serial(queries=queries, seed=seed)


def check_shape(result: ResilienceResult) -> List[str]:
    """Shape claims the chaos grid must satisfy; violations returned."""
    claims: List[str] = []

    def fail(text: str) -> None:
        claims.append(text)

    # -- cdns-crash ---------------------------------------------------------
    mec_keys = ("mec-ldns-mec-cdns", "mec-ldns-lan-cdns", "mec-ldns-wan-cdns")
    for key in mec_keys:
        base = result.row("cdns-crash", key, "baseline")
        hard = result.row("cdns-crash", key, "resilient")
        if base.availability >= 0.85:
            fail(f"cdns-crash should dent baseline {key} availability "
                 f"(got {base.availability:.2f} >= 0.85)")
        if hard.availability < 0.95:
            fail(f"serve-stale should keep resilient {key} answering "
                 f"(availability {hard.availability:.2f} < 0.95)")
        if hard.stale_answers == 0:
            fail(f"resilient {key} should have served stale answers")
        if hard.p95_ms > DEADLINE_MS:
            fail(f"resilient {key} p95 {hard.p95_ms:.1f} ms should stay "
                 f"inside the {DEADLINE_MS:.0f} ms deadline")
    for key in ("lan-ldns", "google-dns", "cloudflare-dns"):
        base = result.row("cdns-crash", key, "baseline")
        if base.availability < 0.99:
            fail(f"warmed-resolver {key} should be immune to a C-DNS "
                 f"crash (availability {base.availability:.2f} < 0.99)")

    # -- mec-partition ------------------------------------------------------
    base = result.row("mec-partition", "mec-ldns-mec-cdns", "baseline")
    hard = result.row("mec-partition", "mec-ldns-mec-cdns", "resilient")
    if base.availability >= 0.85:
        fail(f"partition should dent baseline availability "
             f"(got {base.availability:.2f} >= 0.85)")
    if hard.availability < 0.95:
        fail(f"provider fallback should restore availability "
             f"(got {hard.availability:.2f} < 0.95)")
    if hard.fallback_answers == 0:
        fail("resilient partition cell should have used the provider L-DNS")
    if hard.p95_ms > DEADLINE_MS:
        fail(f"fallback p95 {hard.p95_ms:.1f} ms should stay inside the "
             f"{DEADLINE_MS:.0f} ms deadline")

    # -- lte-burst-loss -----------------------------------------------------
    base = result.row("lte-burst-loss", "mec-ldns-mec-cdns", "baseline")
    hard = result.row("lte-burst-loss", "mec-ldns-mec-cdns", "resilient")
    if hard.availability < base.availability + 0.10:
        fail(f"hedging+backoff should lift burst-loss availability by "
             f">= 0.10 (baseline {base.availability:.2f}, resilient "
             f"{hard.availability:.2f})")
    if hard.p95_ms >= base.p95_ms:
        fail(f"resilient burst-loss p95 {hard.p95_ms:.1f} ms should beat "
             f"baseline {base.p95_ms:.1f} ms")

    # -- determinism --------------------------------------------------------
    for key, (first, second) in result.replays.items():
        if first != second:
            fail(f"replay of {key} with the same seed diverged")
    for key in ("cdns-crash/mec-ldns-mec-cdns/baseline",
                "mec-partition/mec-ldns-mec-cdns/baseline"):
        if not result.timelines.get(key):
            fail(f"fault timeline for {key} should not be empty")
    return claims
