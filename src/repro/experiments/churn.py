"""Churn experiment: resolution quality while the control plane moves.

Figure 5's testbeds are frozen; this extension measures them while the
cache fleet churns underneath (scale-up, a full rolling restart, a
scale-down — :func:`repro.control.churn.default_schedule`) and the zone
data chases the cluster through the NOTIFY/IXFR control plane of
:mod:`repro.control`.  A UE handover between cells happens mid-session
in every cell, so the handover-vs-staleness attribution is always live.

Three quantities per cell:

* **staleness window** — update to the last answer still carrying a
  removed endpoint;
* **mislocalization rate** — answers pointing at endpoints no longer
  live (overall, and inside propagation windows);
* the **serve-stale overlap** — RFC 8767 stale answers served while a
  zone version was still propagating (the CoreDNS cache plugin's
  ``stale_served_during_churn`` counter).

Scenarios compose churn with the PR-1 fault kinds:

* ``churn-only`` — every Figure 5 deployment, no faults.  The paper's
  integrated design propagates in ~0.1 s; warmed public resolvers (the
  "A record never expires" deployments) never learn and mislocalize
  for the rest of the run;
* ``cdns-crash`` — the C-DNS **and** the CDN origin crash through the
  rollout.  The resilient stack answers from RFC 8767 stale cache
  entries while the new zone version cannot propagate — the measured
  serve-stale × propagation-delay interaction;
* ``mec-partition`` — the cluster (including the zone secondary) is
  cut off across two updates.  With the journal bounded at depth 1 the
  secondary's serial ages out and recovery is a full AXFR, not a diff;
* ``origin-brownout`` — the origin is up but pathologically slow, so
  propagation (and only propagation) degrades: availability holds
  while mislocalization soars.

One fault cell is replayed twice with the same seed; its digests must
match byte-for-byte, and serial and sharded runs of the whole grid
produce identical results.
"""

from __future__ import annotations

from typing import Dict, Generator, List, NamedTuple, Tuple

from repro.control import ControlPlane, default_schedule
from repro.control.plane import PRIMARY_HOST
from repro.core.deployments import (DEPLOYMENT_KEYS, ResilienceConfig,
                                    Testbed, build_testbed)
from repro.experiments.report import format_table
from repro.faults import FaultPlan, inject
from repro.measure.stats import percentile
from repro.mobile.handoff import HandoffController
from repro.resolver.retry import RetryPolicy
from repro.runtime import Experiment, Param

#: Measured lookups per cell (after warmup).
DEFAULT_QUERIES = 40
WARMUP_QUERIES = 2
SPACING_MS = 200.0

#: Deadline-based availability, as in the resilience experiment.
DEADLINE_MS = 800.0

#: Journal depth for the churn control plane: deliberately 1, so any
#: fault window spanning two updates forces the AXFR fallback path.
CONTROL_JOURNAL_DEPTH = 1

#: Mid-session handover (between the rollout and the scale-down).
HANDOFF_AT_MS = 3000.0

#: Fault windows, composed with the churn schedule.
FAULT_AT_MS = 2000.0
CRASH_DURATION_MS = 2500.0
PARTITION_DURATION_MS = 5000.0
BROWNOUT_AT_MS = 1000.0
BROWNOUT_SLOW_MS = 1500.0
BROWNOUT_DURATION_MS = 6000.0

#: Baseline client, as in the resilience experiment.
BASELINE_TIMEOUT_MS = 1000.0
BASELINE_RETRIES = 1

MODES = ("baseline", "resilient")
FAULT_SCENARIOS = ("cdns-crash", "mec-partition", "origin-brownout")
FAULT_DEPLOYMENT = "mec-ldns-mec-cdns"
WARMED_DEPLOYMENTS = ("lan-ldns", "google-dns", "cloudflare-dns")


class ChurnRow(NamedTuple):
    """One (scenario, deployment, mode) cell of the churn grid."""

    scenario: str
    deployment: str
    mode: str
    queries: int
    answered: int
    availability: float          # answered within DEADLINE_MS / queries
    p50_ms: float
    p95_ms: float
    updates: int                 # registry versions published
    applied: int                 # versions that reached the router view
    prop_delay_max_ms: float     # slowest update-to-applied propagation
    max_staleness_ms: float      # widest update staleness window
    mean_staleness_ms: float
    misloc_rate: float           # mislocalized / answered, whole run
    lookups_in_window: int       # lookups inside propagation windows
    mislocalized_in_window: int
    stale_during_churn: int      # RFC 8767 stale served inside windows
    axfr_fallbacks: int          # IXFRs answered as full AXFR (aged out)
    handoffs: int
    post_handoff_lookups: int
    mislocalized_after_handoff: int


class ChurnResult(NamedTuple):
    """The churn grid plus its determinism evidence."""

    rows: List[ChurnRow]
    #: "scenario/deployment/mode" -> fault + churn + propagation lines.
    timelines: Dict[str, List[str]]
    #: Replayed cell: check name -> (first digest, second digest).
    replays: Dict[str, Tuple[str, str]]
    queries: int

    def row(self, scenario: str, deployment: str, mode: str) -> ChurnRow:
        """The unique cell for (scenario, deployment, mode)."""
        for row in self.rows:
            if (row.scenario, row.deployment, row.mode) == (
                    scenario, deployment, mode):
                return row
        raise KeyError(f"no cell {scenario}/{deployment}/{mode}")

    def render(self) -> str:
        """The churn grid as an aligned text table."""
        body = [[row.scenario, row.deployment, row.mode,
                 f"{row.availability:.2f}",
                 f"{row.p50_ms:.1f}", f"{row.p95_ms:.1f}",
                 f"{row.misloc_rate:.2f}",
                 f"{row.max_staleness_ms:.0f}",
                 f"{row.prop_delay_max_ms:.0f}",
                 str(row.stale_during_churn), str(row.axfr_fallbacks),
                 f"{row.mislocalized_after_handoff}"
                 f"/{row.post_handoff_lookups}"]
                for row in self.rows]
        table = format_table(
            ["scenario", "deployment", "mode", "avail", "p50 ms",
             "p95 ms", "misloc", "stale ms", "prop ms", "rfc8767",
             "axfr-fb", "ho-mis"],
            body,
            title=f"Resolution under control-plane churn "
                  f"({self.queries} queries/cell, deadline "
                  f"{DEADLINE_MS:.0f} ms)")
        lines = [table, "", "event timelines:"]
        for key, timeline in sorted(self.timelines.items()):
            lines.append(f"  {key}:")
            lines.extend(f"    {event}" for event in timeline)
        return "\n".join(lines)


def _resilient_policy() -> RetryPolicy:
    """The hardened client, as in the resilience experiment."""
    return RetryPolicy(retries=3, timeout_ms=250.0, backoff=2.0,
                       max_timeout_ms=1000.0, jitter_frac=0.1,
                       hedge_after_ms=120.0)


def _client_stub(testbed: Testbed, mode: str):
    if mode == "resilient":
        return testbed.ue.stub(policy=_resilient_policy())
    return testbed.ue.stub(timeout=BASELINE_TIMEOUT_MS,
                           retries=BASELINE_RETRIES)


def _cluster_host_names(testbed: Testbed,
                        plane: ControlPlane) -> List[str]:
    """MEC cluster hosts plus the zone secondary (the partition group)."""
    names = []
    assert testbed.mec_site is not None
    for node in testbed.mec_site.orchestrator.nodes:
        names.append(node.host.name)
        names.extend(pod.host.name for pod in node.pods)
    names.append(plane.secondary_host_name)
    return sorted(names)


def _fault_plan(scenario: str, testbed: Testbed,
                plane: ControlPlane) -> FaultPlan:
    plan = FaultPlan()
    if scenario == "churn-only":
        return plan
    if scenario == "cdns-crash":
        assert testbed.mec_site is not None
        plan.crash_host(testbed.mec_site.cdns_pod.host.name,
                        FAULT_AT_MS, CRASH_DURATION_MS)
        plan.crash_host(PRIMARY_HOST, FAULT_AT_MS, CRASH_DURATION_MS)
        return plan
    if scenario == "mec-partition":
        plan.partition(_cluster_host_names(testbed, plane),
                       FAULT_AT_MS, PARTITION_DURATION_MS)
        return plan
    if scenario == "origin-brownout":
        plan.brownout_host(PRIMARY_HOST, BROWNOUT_AT_MS,
                           BROWNOUT_SLOW_MS, BROWNOUT_DURATION_MS)
        return plan
    raise ValueError(f"unknown scenario {scenario!r}")


def _churn_cell(scenario: str, deployment: str, mode: str, queries: int,
                seed: int) -> Tuple[ChurnRow, List[str], str]:
    """Build, churn, injure, hand over, and measure one deployment."""
    resilience = ResilienceConfig() if mode == "resilient" else None
    testbed = build_testbed(deployment, seed=seed, resilience=resilience)
    plane = ControlPlane(testbed, journal_depth=CONTROL_JOURNAL_DEPTH)
    plane.add_churn(default_schedule())
    injector = inject(testbed.network, _fault_plan(scenario, testbed,
                                                   plane))
    target_enb = testbed.epc.add_base_station("enb-2", "10.40.1.2")
    controller = HandoffController(testbed.network)
    sim = testbed.sim
    sim.call_at(HANDOFF_AT_MS,
                lambda: controller.handoff(testbed.ue, target_enb))

    stub = _client_stub(testbed, mode)
    lookups: List[Tuple[float, float, str, Tuple[str, ...], bool, bool]] \
        = []

    def driver() -> Generator:
        for index in range(WARMUP_QUERIES + queries):
            started = sim.now
            try:
                result = yield from stub.query(testbed.query_name)
            except Exception:  # noqa: BLE001 - failures are data here
                latency, status = sim.now - started, "TIMEOUT"
                addresses: Tuple[str, ...] = ()
                stale = False
            else:
                latency, status = result.query_time_ms, result.status
                addresses = tuple(result.addresses)
                stale = result.stale
            if index >= WARMUP_QUERIES:
                mislocalized = plane.monitor.note_answer(
                    sim.now, addresses, stale)
                if controller.handoffs:
                    controller.note_post_handoff_lookup(testbed.ue,
                                                        mislocalized)
                lookups.append((started, latency, status, addresses,
                                stale, mislocalized))
            yield SPACING_MS

    sim.run_until_resolved(sim.spawn(driver()))

    monitor = plane.monitor
    usable = [entry for entry in lookups
              if entry[2] == "NOERROR" and entry[3]]
    within = [entry for entry in usable if entry[1] <= DEADLINE_MS]
    latencies = [entry[1] for entry in lookups]
    assert testbed.mec_site is not None
    cache_plugin = testbed.mec_site.ldns.cache_plugin
    delays = [record.delay_ms
              for record in plane.coordinator.records.values()
              if record.delay_ms is not None]
    row = ChurnRow(
        scenario=scenario, deployment=deployment, mode=mode,
        queries=len(lookups), answered=len(usable),
        availability=(len(within) / len(lookups) if lookups else 0.0),
        p50_ms=percentile(latencies, 50),
        p95_ms=percentile(latencies, 95),
        updates=len(plane.registry.updates),
        applied=len(delays),
        prop_delay_max_ms=max(delays) if delays else 0.0,
        max_staleness_ms=monitor.max_staleness_ms,
        mean_staleness_ms=monitor.mean_staleness_ms,
        misloc_rate=monitor.mislocalization_rate,
        lookups_in_window=monitor.lookups_in_window,
        mislocalized_in_window=monitor.mislocalized_in_window,
        stale_during_churn=(cache_plugin.stale_served_during_churn
                            if cache_plugin is not None else 0),
        axfr_fallbacks=plane.primary.ixfr_axfr_fallbacks,
        handoffs=controller.handoffs,
        post_handoff_lookups=controller.post_handoff_lookups,
        mislocalized_after_handoff=controller.mislocalized_after_handoff)
    timeline = list(injector.timeline) + plane.log()
    digest_lines = list(timeline)
    for started, latency, status, addresses, stale, mislocalized \
            in lookups:
        digest_lines.append(
            f"t={started:.6f} lat={latency:.6f} {status} "
            f"[{','.join(addresses)}] stale={stale} mis={mislocalized}")
    return row, timeline, "\n".join(digest_lines)


# ---------------------------------------------------------------------------
# Experiment entry points
# ---------------------------------------------------------------------------

class ChurnExperiment(Experiment):
    """The churn grid, one trial per (scenario, deployment, mode) cell.

    Every cell builds its own churned, faulted testbed from the base
    seed, so sharding cannot change any measured value; the replay
    cells rerun one fault cell twice and ``merge`` pairs their digests
    into the published determinism evidence.
    """

    name = "churn"
    title = "dynamic control plane: churn, handover, and faults"
    params = (Param("queries", int, DEFAULT_QUERIES,
                    "measured lookups per cell"),
              Param("seed", int, 42, "base RNG seed"))

    def trials(self, params):
        queries = int(params["queries"])
        base = int(params["seed"])
        specs = []
        for deployment in DEPLOYMENT_KEYS:
            specs.append(self.spec(
                len(specs), seed=base, kind="deploy",
                deployment=deployment, queries=queries))
        for scenario in FAULT_SCENARIOS:
            for mode in MODES:
                specs.append(self.spec(
                    len(specs), seed=base, kind="fault",
                    scenario=scenario, mode=mode, queries=queries))
        for which in (1, 2):
            specs.append(self.spec(len(specs), seed=base, kind="replay",
                                   which=which, queries=queries))
        return specs

    def run_trial(self, spec):
        kind = str(spec.value("kind"))
        queries = int(spec.value("queries"))
        if kind == "deploy":
            deployment = str(spec.value("deployment"))
            row, timeline, _ = _churn_cell("churn-only", deployment,
                                           "resilient", queries,
                                           spec.seed)
            return ("deploy", deployment, row, timeline)
        if kind == "fault":
            scenario = str(spec.value("scenario"))
            mode = str(spec.value("mode"))
            row, timeline, _ = _churn_cell(scenario, FAULT_DEPLOYMENT,
                                           mode, queries, spec.seed)
            return ("fault", scenario, mode, row, timeline)
        _, _, digest = _churn_cell("cdns-crash", FAULT_DEPLOYMENT,
                                   "resilient", queries, spec.seed)
        return ("replay", int(spec.value("which")), digest)

    def merge(self, params, payloads):
        rows: List[ChurnRow] = []
        timelines: Dict[str, List[str]] = {}
        digests: Dict[int, str] = {}
        for payload in payloads:
            kind = payload[0]
            if kind == "deploy":
                _, deployment, row, timeline = payload
                rows.append(row)
                timelines[f"churn-only/{deployment}/resilient"] = timeline
            elif kind == "fault":
                _, scenario, mode, row, timeline = payload
                rows.append(row)
                timelines[f"{scenario}/{FAULT_DEPLOYMENT}/{mode}"] = \
                    timeline
            else:
                _, which, digest = payload
                digests[which] = digest
        replays = {f"cdns-crash/{FAULT_DEPLOYMENT}/resilient":
                   (digests[1], digests[2])}
        return ChurnResult(rows=rows, timelines=timelines,
                           replays=replays,
                           queries=int(params["queries"]))

    def check_shape(self, result):
        return check_shape(result)


EXPERIMENT = ChurnExperiment()


def run(queries: int = DEFAULT_QUERIES, seed: int = 42) -> ChurnResult:
    """Run the full churn grid serially."""
    return EXPERIMENT.run_serial(queries=queries, seed=seed)


def check_shape(result: ChurnResult) -> List[str]:
    """Shape claims the churn grid must satisfy; violations returned."""
    claims: List[str] = []

    def fail(text: str) -> None:
        claims.append(text)

    # -- churn-only: the deployment gradient --------------------------------
    integrated = result.row("churn-only", "mec-ldns-mec-cdns", "resilient")
    for deployment in DEPLOYMENT_KEYS:
        try:
            row = result.row("churn-only", deployment, "resilient")
        except KeyError:
            fail(f"missing churn-only cell for {deployment}")
            continue
        if row.updates < 3:
            fail(f"churn-only {deployment} should see 3 registry "
                 f"updates (got {row.updates})")
        if row.handoffs != 1 or row.post_handoff_lookups == 0:
            fail(f"churn-only {deployment} should hand over once "
                 f"mid-session and attribute post-handoff lookups")
    if integrated.applied < integrated.updates:
        fail(f"integrated deployment should apply every update "
             f"({integrated.applied}/{integrated.updates})")
    if integrated.prop_delay_max_ms > 1000.0:
        fail(f"clean NOTIFY/IXFR propagation should finish within 1 s "
             f"(got {integrated.prop_delay_max_ms:.0f} ms)")
    for deployment in WARMED_DEPLOYMENTS:
        warmed = result.row("churn-only", deployment, "resilient")
        if warmed.misloc_rate < integrated.misloc_rate + 0.3:
            fail(f"warmed {deployment} should mislocalize far more than "
                 f"the integrated design under a rollout "
                 f"({warmed.misloc_rate:.2f} vs "
                 f"{integrated.misloc_rate:.2f})")
        if warmed.max_staleness_ms < 2000.0:
            fail(f"warmed {deployment} staleness window should exceed "
                 f"2 s (got {warmed.max_staleness_ms:.0f} ms)")

    # -- cdns-crash: serve-stale x propagation interaction ------------------
    crash_base = result.row("cdns-crash", FAULT_DEPLOYMENT, "baseline")
    crash_hard = result.row("cdns-crash", FAULT_DEPLOYMENT, "resilient")
    if crash_hard.stale_during_churn < 1:
        fail("resilient cdns-crash should serve RFC 8767 stale answers "
             "inside the propagation window")
    if crash_base.stale_during_churn != 0:
        fail("baseline (no serve-stale) cannot serve stale answers "
             f"(got {crash_base.stale_during_churn})")

    # -- mec-partition: bounded journal forces AXFR -------------------------
    for mode in MODES:
        part = result.row("mec-partition", FAULT_DEPLOYMENT, mode)
        if part.axfr_fallbacks < 1:
            fail(f"partition/{mode}: the depth-1 journal should force "
                 f"an AXFR fallback on recovery")
        if part.prop_delay_max_ms < 1000.0:
            fail(f"partition/{mode}: propagation through the partition "
                 f"should take > 1 s "
                 f"(got {part.prop_delay_max_ms:.0f} ms)")
    part_base = result.row("mec-partition", FAULT_DEPLOYMENT, "baseline")
    if part_base.availability >= 0.95:
        fail(f"partition should dent baseline availability "
             f"(got {part_base.availability:.2f})")

    # -- origin-brownout: propagation-only degradation ----------------------
    for mode in MODES:
        brown = result.row("origin-brownout", FAULT_DEPLOYMENT, mode)
        if brown.availability < 0.9:
            fail(f"brownout/{mode}: a slow origin must not dent lookup "
                 f"availability (got {brown.availability:.2f})")
    brown_hard = result.row("origin-brownout", FAULT_DEPLOYMENT,
                            "resilient")
    if brown_hard.max_staleness_ms < 1000.0:
        fail(f"brownout should stretch the staleness window past 1 s "
             f"(got {brown_hard.max_staleness_ms:.0f} ms)")
    if brown_hard.max_staleness_ms <= integrated.max_staleness_ms:
        fail("brownout staleness should exceed the clean-churn window")

    # -- determinism --------------------------------------------------------
    for key, (first, second) in result.replays.items():
        if first != second:
            fail(f"replay of {key} with the same seed diverged")
    for key in (f"cdns-crash/{FAULT_DEPLOYMENT}/resilient",
                f"mec-partition/{FAULT_DEPLOYMENT}/baseline"):
        if not result.timelines.get(key):
            fail(f"timeline for {key} should not be empty")
    return claims
