"""P2 quantified: client mislocalization and cache distance per network.

§2 of the paper: "The request's origin is often obfuscated in current
mobile networks including the client's IP address (CDN servers see the
public gateway's IP, not the end client's) and the geographic location of
the incoming request (CDN servers infer the location of the public
gateways using GeoIP lookup and that too with limited accuracy)".

This experiment puts numbers on that chain for the Figure 2/3 scenario:

1. **localization error** — the distance between the client's true
   location and where a GeoIP lookup of the address the CDN actually sees
   (campus resolver / ISP resolver / carrier NAT pool) places it; and
2. **cache distance** — the distance from the client to the site of the
   CIDR pool each DNS answer selects.

Both grow sharply from wired to cellular, which is exactly why the paper
argues P2 cannot be met from outside the mobile network.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple

from repro.cdn.geo import GeoIpDatabase, GeoPoint, haversine_km
from repro.cdn.providers import CONNECTIVITIES, TABLE1_SITES
from repro.experiments.public_internet import PublicInternetScenario
from repro.experiments.report import format_table
from repro.netsim.rand import RandomStreams
from repro.runtime import Experiment, Param, derive_seed

#: The device's true location (the paper measured from one spot; we use
#: the Georgia Tech campus).
CLIENT_LOCATION = GeoPoint(33.776, -84.399)

#: What a GeoIP database believes about each visible address block, with
#: its error radius.  The campus block is well known; the residential ISP
#: block is region-accurate; the carrier NAT pool is registered where the
#: operator aggregates it (hundreds of km away) with a wide error radius.
GEOIP_ENTRIES = (
    ("192.0.10.0/24", GeoPoint(33.78, -84.40), 15.0),     # campus resolver
    ("198.51.77.0/24", GeoPoint(33.95, -84.55), 80.0),    # metro ISP
    ("198.51.100.0/24", GeoPoint(32.78, -96.80), 450.0),  # carrier pool (Dallas)
)

#: The address the CDN plane sees per access network (resolver or NAT ip).
VISIBLE_ADDRESS = {
    "wired-campus": "192.0.10.53",
    "wifi-home": "198.51.77.53",
    "cellular-mobile": "198.51.100.9",
}

DEFAULT_TRIALS = 30
#: GeoIP samples per connectivity for the localization-error estimate.
GEOIP_SAMPLES = 200


class MislocalizationRow(NamedTuple):
    connectivity: str
    geoip_error_km: float         # mean believed-vs-true distance
    mean_cache_distance_km: float  # mean client-to-selected-pool-site


class MislocalizationResult(NamedTuple):
    rows: List[MislocalizationRow]
    per_site_distance: Dict[str, Dict[str, float]]
    trials: int

    def row(self, connectivity: str) -> MislocalizationRow:
        """The row with the given key; raises KeyError if absent."""
        for row in self.rows:
            if row.connectivity == connectivity:
                return row
        raise KeyError(connectivity)

    def render(self) -> str:
        """Render the paper-comparable text output."""
        table_rows = [(row.connectivity,
                       f"{row.geoip_error_km:.0f}",
                       f"{row.mean_cache_distance_km:.0f}")
                      for row in self.rows]
        summary = format_table(
            ["Connectivity", "GeoIP error km", "mean cache distance km"],
            table_rows,
            title="P2 mislocalization: what the CDN believes vs. reality")
        per_site_rows = []
        for site, by_conn in sorted(self.per_site_distance.items()):
            per_site_rows.append((site,) + tuple(
                f"{by_conn[connectivity]:.0f}"
                for connectivity in CONNECTIVITIES))
        detail = format_table(
            ["Site"] + list(CONNECTIVITIES), per_site_rows,
            title="Mean selected-cache distance (km) per site")
        return summary + "\n\n" + detail


def _deployment(site: str):
    for deployment in TABLE1_SITES:
        if deployment.site == site:
            return deployment
    raise KeyError(site)


class MislocalizationExperiment(Experiment):
    """Two kinds of independently-seeded cells.

    ``geoip`` cells sample the GeoIP error for one visible address;
    ``series`` cells run one (site, connectivity) DNS series and record
    the client-to-selected-pool distances.  ``merge`` reassembles the
    per-connectivity rows and the per-site table from the tagged
    payloads, in :data:`CONNECTIVITIES`/:data:`TABLE1_SITES` order.
    """

    name = "mislocalization"
    title = "P2 mislocalization: GeoIP error and cache distance"
    params = (Param("trials", int, 25, "DNS tests per cell"),
              Param("seed", int, 42, "base RNG seed"))

    def trials(self, params):
        trials = int(params["trials"])
        base = int(params["seed"])
        specs = []
        for connectivity in CONNECTIVITIES:
            specs.append(self.spec(
                len(specs),
                seed=derive_seed(base, "mislocalization", "geoip",
                                 connectivity),
                kind="geoip", connectivity=connectivity))
        for deployment in TABLE1_SITES:
            for connectivity in CONNECTIVITIES:
                specs.append(self.spec(
                    len(specs),
                    seed=derive_seed(base, "mislocalization",
                                     deployment.site, connectivity),
                    kind="series", site=deployment.site,
                    connectivity=connectivity, trials=trials))
        return specs

    def run_trial(self, spec):
        if spec.value("kind") == "geoip":
            return self._geoip_cell(spec)
        return self._series_cell(spec)

    def _geoip_cell(self, spec):
        connectivity = str(spec.value("connectivity"))
        geoip = GeoIpDatabase(RandomStreams(spec.seed).stream("geoip"))
        for cidr, location, error_km in GEOIP_ENTRIES:
            geoip.register(cidr, location, error_km)
        visible = VISIBLE_ADDRESS[connectivity]
        errors = []
        for _ in range(GEOIP_SAMPLES):
            believed = geoip.lookup(visible)
            assert believed is not None
            errors.append(haversine_km(CLIENT_LOCATION, believed))
        return ("geoip", connectivity, sum(errors) / len(errors))

    def _series_cell(self, spec):
        site = str(spec.value("site"))
        connectivity = str(spec.value("connectivity"))
        deployment = _deployment(site)
        scenario = PublicInternetScenario(seed=spec.seed)
        results = scenario.run_series(connectivity, deployment,
                                      int(spec.value("trials")))
        distances = []
        for result in results:
            for address in result.addresses:
                pool = deployment.pool_for_ip(address)
                if pool is not None:
                    distances.append(
                        haversine_km(CLIENT_LOCATION, pool.site))
        return ("series", site, connectivity, distances)

    def merge(self, params, payloads):
        geoip_error: Dict[str, float] = {}
        per_site: Dict[str, Dict[str, float]] = {}
        mean_distance: Dict[str, List[float]] = {
            connectivity: [] for connectivity in CONNECTIVITIES}
        for payload in payloads:
            if payload[0] == "geoip":
                _, connectivity, error = payload
                geoip_error[connectivity] = error
            else:
                _, site, connectivity, distances = payload
                site_mean = (sum(distances) / len(distances)
                             if distances else 0.0)
                per_site.setdefault(site, {})[connectivity] = site_mean
                mean_distance[connectivity].extend(distances)
        rows = [MislocalizationRow(
                    connectivity=connectivity,
                    geoip_error_km=geoip_error[connectivity],
                    mean_cache_distance_km=(
                        sum(mean_distance[connectivity])
                        / len(mean_distance[connectivity])))
                for connectivity in CONNECTIVITIES]
        return MislocalizationResult(rows=rows, per_site_distance=per_site,
                                     trials=int(params["trials"]))

    def check_shape(self, result):
        return check_shape(result)


EXPERIMENT = MislocalizationExperiment()


def run(trials: int = DEFAULT_TRIALS, seed: int = 0) -> MislocalizationResult:
    """Run the experiment and return its structured result."""
    return EXPERIMENT.run_serial(trials=trials, seed=seed)


def check_shape(result: MislocalizationResult) -> List[str]:
    """Violated claims (empty = all hold)."""
    violations: List[str] = []
    wired = result.row("wired-campus")
    wifi = result.row("wifi-home")
    cellular = result.row("cellular-mobile")
    if not cellular.geoip_error_km > 5 * wired.geoip_error_km:
        violations.append(
            f"cellular GeoIP error ({cellular.geoip_error_km:.0f} km) not "
            f"well above wired ({wired.geoip_error_km:.0f} km)")
    if not wired.geoip_error_km < wifi.geoip_error_km:
        violations.append("wired GeoIP error not below wifi")
    if not cellular.mean_cache_distance_km > wired.mean_cache_distance_km:
        violations.append(
            f"cellular cache distance "
            f"({cellular.mean_cache_distance_km:.0f} km) not above wired "
            f"({wired.mean_cache_distance_km:.0f} km)")
    return violations
