"""§4 ECS experiment: EDNS Client Subnet on the first three deployments.

The paper: "We also evaluated the use of the EDNS Client Subnet feature
(ECS), implemented by enabling ECS support at L-DNS and C-DNS for the
first three deployment scenarios above.  ECS changed the measurements by
1.01x, 1.08x and 0.95x, respectively ... In these experiments the DNS
query was always correctly resolved to the appropriate CDN cache server
at the MEC."

``run`` measures each deployment with and without ECS (same seed and
query count) and reports the ratio plus the correctness check.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple

from repro.core.deployments import DEPLOYMENT_LABELS, build_testbed
from repro.experiments.report import format_table
from repro.measure.runner import measure_deployment_queries
from repro.measure.stats import summarize
from repro.runtime import Experiment, Param

#: The three deployments the paper evaluates ECS on.
ECS_DEPLOYMENTS = (
    "mec-ldns-mec-cdns",
    "mec-ldns-lan-cdns",
    "mec-ldns-wan-cdns",
)

#: The published ratios, same order.
PAPER_RATIOS: Dict[str, float] = {
    "mec-ldns-mec-cdns": 1.01,
    "mec-ldns-lan-cdns": 1.08,
    "mec-ldns-wan-cdns": 0.95,
}


class EcsRow(NamedTuple):
    key: str
    label: str
    baseline_mean: float
    ecs_mean: float
    ratio: float
    paper_ratio: float
    always_correct_cache: bool


class EcsResult(NamedTuple):
    rows: List[EcsRow]
    queries: int

    def ratios(self) -> Dict[str, float]:
        """Deployment key -> measured ECS/no-ECS latency ratio."""
        return {row.key: row.ratio for row in self.rows}

    def render(self) -> str:
        """Render the paper-comparable text output."""
        table_rows = [(row.label,
                       f"{row.baseline_mean:.1f}",
                       f"{row.ecs_mean:.1f}",
                       f"{row.ratio:.2f}x",
                       f"{row.paper_ratio:.2f}x",
                       "yes" if row.always_correct_cache else "NO")
                      for row in self.rows]
        return format_table(
            ["Deployment", "no-ECS ms", "ECS ms", "ratio", "paper",
             "correct cache"],
            table_rows,
            title=f"ECS sensitivity ({self.queries} queries/config)")


class EcsExperiment(Experiment):
    """One trial per deployment; each measures with and without ECS.

    The pair shares one cell (same seed, same query count) because the
    ratio is only meaningful between testbeds built identically — the
    paper's "ECS changed the measurements by ..." comparison.
    """

    name = "ecs"
    title = "§4 ECS sensitivity on the first three deployments"
    params = (Param("queries", int, 40, "queries per configuration"),
              Param("seed", int, 42, "base RNG seed"))

    def trials(self, params):
        return [self.spec(index, seed=int(params["seed"]), key=key,
                          queries=int(params["queries"]))
                for index, key in enumerate(ECS_DEPLOYMENTS)]

    def run_trial(self, spec):
        key = str(spec.value("key"))
        queries = int(spec.value("queries"))
        baseline_tb = build_testbed(key, seed=spec.seed, ecs=False)
        baseline = measure_deployment_queries(baseline_tb, queries)
        ecs_tb = build_testbed(key, seed=spec.seed, ecs=True)
        with_ecs = measure_deployment_queries(ecs_tb, queries)
        baseline_mean = summarize([m.latency_ms for m in baseline]).mean
        ecs_mean = summarize([m.latency_ms for m in with_ecs]).mean
        correct = all(
            m.status == "NOERROR" and m.addresses
            and m.addresses[0] in ecs_tb.expected_cache_ips
            for m in with_ecs)
        return EcsRow(
            key=key,
            label=DEPLOYMENT_LABELS[key],
            baseline_mean=baseline_mean,
            ecs_mean=ecs_mean,
            ratio=ecs_mean / baseline_mean,
            paper_ratio=PAPER_RATIOS[key],
            always_correct_cache=correct)

    def merge(self, params, payloads):
        return EcsResult(rows=list(payloads),
                         queries=int(params["queries"]))

    def check_shape(self, result):
        return check_shape(result)


EXPERIMENT = EcsExperiment()


def run(queries: int = 40, seed: int = 42) -> EcsResult:
    """Run the experiment and return its structured result."""
    return EXPERIMENT.run_serial(queries=queries, seed=seed)


def check_shape(result: EcsResult) -> List[str]:
    """Violated ECS claims (empty = all hold).

    The paper's point is that ECS is *not a win* here: ratios hover
    around 1.0 (it "may even increase DNS resolution time") while
    answers stay correct.  We assert every ratio lands in [0.90, 1.15]
    and correctness holds.
    """
    violations: List[str] = []
    for row in result.rows:
        if not 0.90 <= row.ratio <= 1.15:
            violations.append(f"{row.key}: ECS ratio {row.ratio:.2f} "
                              f"outside [0.90, 1.15]")
        if not row.always_correct_cache:
            violations.append(f"{row.key}: ECS answers not always the MEC "
                              f"cache")
    return violations
