"""Envelope sweep: how far can the C-DNS move before 20 ms breaks?

Figure 5 samples three C-DNS placements (in-cluster, LAN, WAN).  This
extension sweeps the placement continuously: with the L-DNS fixed at the
MEC, the C-DNS is moved from 0 to tens of milliseconds (one-way) from the
P-GW, and the mean resolution latency is measured at each point.

The output locates the *crossover distance* — the C-DNS distance at
which resolution exceeds the paper's 20 ms MEC latency envelope — which
quantifies the paper's conclusion that "only the ideal scenario of C-DNS
being deployed outside but on the same LAN as MEC makes it possible to
serve a DNS request with sub-20 ms end-to-end latency": the sub-20 ms
region is only a few milliseconds wide.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence

from repro.core.deployments import build_custom_cdns_testbed
from repro.experiments.report import format_table
from repro.measure.runner import measure_deployment_queries
from repro.measure.stats import summarize
from repro.runtime import Experiment, Param

ENVELOPE_MS = 20.0
DEFAULT_DISTANCES = (0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 20.0, 30.0)
DEFAULT_QUERIES = 15


class SweepPoint(NamedTuple):
    cdns_one_way_ms: float
    mean_latency_ms: float
    within_envelope: bool


class EnvelopeSweepResult(NamedTuple):
    points: List[SweepPoint]
    queries: int
    #: Linear-interpolated distance where the mean crosses 20 ms.
    crossover_one_way_ms: Optional[float]

    def render(self) -> str:
        """Render the paper-comparable text output."""
        rows = [(f"{point.cdns_one_way_ms:.1f}",
                 f"{point.mean_latency_ms:.1f}",
                 "yes" if point.within_envelope else "no")
                for point in self.points]
        table = format_table(
            ["C-DNS one-way ms", "mean lookup ms", f"< {ENVELOPE_MS:.0f}ms"],
            rows,
            title=f"Envelope sweep ({self.queries} queries/point)")
        crossover = ("beyond the sweep" if self.crossover_one_way_ms is None
                     else f"{self.crossover_one_way_ms:.1f} ms one-way")
        return table + f"\n20 ms envelope crossover: {crossover}"


class EnvelopeSweepExperiment(Experiment):
    """One trial per C-DNS distance; crossover is computed in merge."""

    name = "envelope-sweep"
    title = "Envelope sweep: C-DNS distance vs. the 20 ms envelope"
    params = (Param("queries", int, 40, "queries per sweep point"),
              Param("seed", int, 42, "base RNG seed"),
              Param("distances", tuple, DEFAULT_DISTANCES,
                    "C-DNS one-way distances (ms)", cli=False))

    def trials(self, params):
        return [self.spec(index, seed=int(params["seed"]),
                          distance=float(distance),
                          queries=int(params["queries"]))
                for index, distance in enumerate(params["distances"])]

    def run_trial(self, spec):
        distance = float(spec.value("distance"))
        testbed = build_custom_cdns_testbed(distance, seed=spec.seed)
        measurements = measure_deployment_queries(
            testbed, int(spec.value("queries")))
        mean = summarize([m.latency_ms for m in measurements]).mean
        return SweepPoint(
            cdns_one_way_ms=distance,
            mean_latency_ms=mean,
            within_envelope=mean < ENVELOPE_MS)

    def merge(self, params, payloads):
        points = list(payloads)
        return EnvelopeSweepResult(
            points=points, queries=int(params["queries"]),
            crossover_one_way_ms=_crossover(points))

    def check_shape(self, result):
        return check_shape(result)


EXPERIMENT = EnvelopeSweepExperiment()


def run(distances: Sequence[float] = DEFAULT_DISTANCES,
        queries: int = DEFAULT_QUERIES,
        seed: int = 42) -> EnvelopeSweepResult:
    """Run the experiment and return its structured result."""
    return EXPERIMENT.run_serial(distances=tuple(distances),
                                 queries=queries, seed=seed)


def _crossover(points: List[SweepPoint]) -> Optional[float]:
    for previous, current in zip(points, points[1:]):
        if previous.mean_latency_ms < ENVELOPE_MS <= current.mean_latency_ms:
            span = current.mean_latency_ms - previous.mean_latency_ms
            if span <= 0:
                return current.cdns_one_way_ms
            fraction = (ENVELOPE_MS - previous.mean_latency_ms) / span
            return (previous.cdns_one_way_ms
                    + fraction * (current.cdns_one_way_ms
                                  - previous.cdns_one_way_ms))
    return None


def check_shape(result: EnvelopeSweepResult) -> List[str]:
    """Violated claims (empty = all hold)."""
    violations: List[str] = []
    means = [point.mean_latency_ms for point in result.points]
    if not all(earlier <= later + 1.0  # allow ~1ms sampling noise
               for earlier, later in zip(means, means[1:])):
        violations.append("latency is not monotone in C-DNS distance")
    if result.crossover_one_way_ms is None:
        violations.append("no 20 ms crossover found in the sweep range")
    elif not 1.0 <= result.crossover_one_way_ms <= 8.0:
        violations.append(
            f"crossover at {result.crossover_one_way_ms:.1f} ms one-way is "
            f"outside the LAN-scale band the paper implies")
    if not result.points[0].within_envelope:
        violations.append("even a collocated C-DNS misses the envelope")
    if result.points[-1].within_envelope:
        violations.append("a WAN-distance C-DNS should miss the envelope")
    return violations
