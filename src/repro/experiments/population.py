"""Population-scale Figure 5: city traffic against the six deployments.

The paper measures each deployment with tens of queries from one UE;
this artifact drives the same deployments with a synthesized city —
10^4–10^6+ UEs, Zipf content popularity, diurnal session arrivals,
inter-site mobility — and reports what only shows up at scale: cache
localization, aggregate hit rate, and tail latency (p50/p99/p99.9).

Structure: each deployment's population splits into ``districts``
independent slices (the sharding unit; see
:mod:`repro.workload.engine`), one trial per (deployment, district).
Every trial first derives the deployment's calibrated latency model
from a full-fidelity testbed run whose seed is shard-independent, so
all districts of a deployment — and the serial and ``--jobs N`` paths —
agree exactly.  Aggregates are streaming histograms plus exact
counters; no per-query records exist anywhere.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, NamedTuple, Optional, Sequence

from repro.core.deployments import DEPLOYMENT_KEYS, DEPLOYMENT_LABELS
from repro.experiments.report import format_table
from repro.measure.histogram import HistogramSummary
from repro.runtime import Experiment, Param
from repro.runtime.spec import TrialSpec
from repro.workload.arrivals import SECONDS_PER_HOUR, DiurnalProfile
from repro.workload.deployment import calibrate, is_localized
from repro.workload.engine import (ALLOCATION_POLICIES, DistrictConfig,
                                   DistrictStats, district_seed, merge_stats,
                                   run_district)

#: Default total queries targeted per deployment (all districts).
DEFAULT_TARGET_QUERIES = 20_000

#: Fixed per-run shape of the simulated city window.
SIMULATED_HOURS = 1.0
SESSIONS_PER_UE_HOUR = 1.0
MEAN_REQUESTS = 8.0
MEAN_THINK_S = 4.0
MOVE_PROBABILITY = 0.15
HANDOVER_PROBABILITY = 0.05
#: The window starts at 18:00 simulated — on the diurnal evening ramp.
START_S = 18 * 3600.0


class PopulationRow(NamedTuple):
    """One deployment's merged city-scale aggregates."""

    key: str
    label: str
    queries: int
    sessions: int
    active_ues: int
    localization: float
    hit_rate: float
    handovers: int
    load_imbalance: float
    dns: HistogramSummary
    total: HistogramSummary


class PopulationResult(NamedTuple):
    rows: List[PopulationRow]
    target_queries: int
    districts: int
    sites: int
    allocation: str
    catalog: int

    def row(self, key: str) -> PopulationRow:
        """The row with the given key; raises KeyError if absent."""
        for row in self.rows:
            if row.key == key:
                return row
        raise KeyError(key)

    def render(self) -> str:
        """The printed population table (one row per deployment)."""
        table_rows = []
        for row in self.rows:
            table_rows.append((
                row.label,
                f"{row.queries}",
                f"{100 * row.localization:.1f}%",
                f"{100 * row.hit_rate:.1f}%",
                f"{row.dns.p50:.1f}",
                f"{row.dns.p99:.1f}",
                f"{row.total.p50:.1f}",
                f"{row.total.p99:.1f}",
                f"{row.total.p999:.1f}",
                f"{row.load_imbalance:.2f}"))
        return format_table(
            ["Deployment", "queries", "local", "hit",
             "dns p50", "dns p99", "p50", "p99", "p99.9", "imbal"],
            table_rows,
            title=(f"Population scale: {self.target_queries} queries/"
                   f"deployment target, {self.sites} sites, "
                   f"{self.districts} districts, "
                   f"allocation={self.allocation}, "
                   f"catalog={self.catalog} (latencies in ms)"))


class _ShardPayload(NamedTuple):
    """One trial's output: which deployment it belongs to, plus stats."""

    key: str
    district: int
    stats: DistrictStats


class PopulationExperiment(Experiment):
    """One trial per (deployment, district)."""

    name = "population"
    title = "Population-scale workload across the Figure 5 deployments"
    params = (
        Param("target_queries", int, DEFAULT_TARGET_QUERIES,
              "approximate queries per deployment (all districts)"),
        Param("districts", int, 2, "independent population shards"),
        Param("sites", int, 4, "MEC sites per district"),
        Param("cache_capacity", int, 2000, "objects per cache"),
        Param("catalog", int, 100_000, "synthetic catalog size"),
        Param("allocation", str, "content",
              "cache allocation: content | client | client-bounded"),
        Param("deployment", str, "all",
              "one deployment key, or 'all' for the Figure 5 six"),
        Param("seed", int, 42, "base RNG seed"),
        Param("zipf", float, 0.9, "content popularity exponent",
              cli=False),
        Param("caches_per_site", int, 2, "caches per MEC site",
              cli=False),
    )

    # -- plan ----------------------------------------------------------------

    @staticmethod
    def _keys(params: Mapping[str, object]) -> List[str]:
        deployment = str(params["deployment"])
        if deployment == "all":
            return list(DEPLOYMENT_KEYS)
        if deployment not in DEPLOYMENT_KEYS:
            raise ValueError(f"unknown deployment {deployment!r}; "
                             f"expected 'all' or one of {DEPLOYMENT_KEYS}")
        return [deployment]

    @staticmethod
    def _window_activity(profile: DiurnalProfile, start_s: float,
                         duration_s: float) -> float:
        """Average diurnal multiplier over the window, relative to the
        day mean — the factor by which the simulated window's arrival
        rate exceeds (or trails) the day-average rate."""
        total = 0.0
        t = start_s
        remaining = duration_s
        while remaining > 1e-9:
            hour_end = (t // SECONDS_PER_HOUR + 1) * SECONDS_PER_HOUR
            step = min(remaining, hour_end - t)
            total += profile.multiplier(t) * step
            t += step
            remaining -= step
        return (total / duration_s) / profile.mean

    @classmethod
    def _config(cls, params: Mapping[str, object]) -> DistrictConfig:
        districts = int(params["districts"])
        if districts < 1:
            raise ValueError(f"need >= 1 district, got {districts}")
        allocation = str(params["allocation"])
        if allocation not in ALLOCATION_POLICIES:
            raise ValueError(
                f"allocation must be one of {ALLOCATION_POLICIES}, "
                f"got {allocation!r}")
        target = int(params["target_queries"])
        # The window sits on the evening ramp, so each UE contributes
        # more sessions than the day-average rate suggests; fold the
        # window's activity factor in so ``target_queries`` stays honest.
        activity = cls._window_activity(
            DiurnalProfile(), START_S, SIMULATED_HOURS * 3600.0)
        expected_per_ue = (SESSIONS_PER_UE_HOUR * SIMULATED_HOURS
                           * activity * MEAN_REQUESTS)
        ues = max(1, round(target / districts / expected_per_ue))
        return DistrictConfig(
            ues=ues,
            sites=int(params["sites"]),
            caches_per_site=int(params["caches_per_site"]),
            cache_capacity=int(params["cache_capacity"]),
            catalog_size=int(params["catalog"]),
            zipf_exponent=float(params["zipf"]),
            duration_s=SIMULATED_HOURS * 3600.0,
            sessions_per_ue_hour=SESSIONS_PER_UE_HOUR,
            mean_requests=MEAN_REQUESTS,
            mean_think_s=MEAN_THINK_S,
            move_probability=MOVE_PROBABILITY,
            handover_probability=HANDOVER_PROBABILITY,
            allocation=allocation,
            start_s=START_S)

    def trials(self, params: Mapping[str, object]) -> List[TrialSpec]:
        self._config(params)  # validate early, in the planner
        districts = int(params["districts"])
        specs: List[TrialSpec] = []
        index = 0
        for key in self._keys(params):
            for district in range(districts):
                specs.append(self.spec(
                    index, seed=int(params["seed"]), key=key,
                    district=district,
                    target_queries=int(params["target_queries"]),
                    districts=districts,
                    sites=int(params["sites"]),
                    cache_capacity=int(params["cache_capacity"]),
                    catalog=int(params["catalog"]),
                    allocation=str(params["allocation"]),
                    zipf=float(params["zipf"]),
                    caches_per_site=int(params["caches_per_site"])))
                index += 1
        return specs

    # -- execution -----------------------------------------------------------

    def run_trial(self, spec: TrialSpec) -> _ShardPayload:
        cell = spec.cell_dict()
        cell_params: Dict[str, object] = {
            name: cell[name]
            for name in ("target_queries", "districts", "sites",
                         "cache_capacity", "catalog", "allocation",
                         "zipf", "caches_per_site")}
        cell_params["deployment"] = cell["key"]
        key = str(cell["key"])
        district = int(str(cell["district"]))
        config = self._config(cell_params)
        model = calibrate(key, spec.seed)
        stats = run_district(config, model,
                             district_seed(spec.seed, key, district),
                             scope=f"{key}/d{district}")
        return _ShardPayload(key=key, district=district, stats=stats)

    def merge(self, params: Mapping[str, object],
              payloads: Sequence[object]) -> PopulationResult:
        grouped: Dict[str, List[DistrictStats]] = {}
        for payload in payloads:
            assert isinstance(payload, _ShardPayload)
            grouped.setdefault(payload.key, []).append(payload.stats)
        rows: List[PopulationRow] = []
        for key in self._keys(params):
            stats = merge_stats(grouped.get(key, []))
            rows.append(PopulationRow(
                key=key,
                label=DEPLOYMENT_LABELS[key],
                queries=stats.queries,
                sessions=stats.sessions,
                active_ues=stats.active_ues,
                localization=stats.localization,
                hit_rate=stats.hit_rate,
                handovers=stats.handovers,
                load_imbalance=stats.load_imbalance(),
                dns=stats.dns.summary(),
                total=stats.total.summary()))
        return PopulationResult(
            rows=rows,
            target_queries=int(params["target_queries"]),
            districts=int(params["districts"]),
            sites=int(params["sites"]),
            allocation=str(params["allocation"]),
            catalog=int(params["catalog"]))

    def check_shape(self, result: object) -> List[str]:
        assert isinstance(result, PopulationResult)
        return check_shape(result)


EXPERIMENT = PopulationExperiment()


def run(**overrides: object) -> PopulationResult:
    """Run the experiment and return its structured result."""
    result = EXPERIMENT.run_serial(**overrides)
    assert isinstance(result, PopulationResult)
    return result


#: Minimum merged queries per row before the statistical claims below
#: are asserted; tiny smoke runs still check the structural ones.
SHAPE_MIN_QUERIES = 2_000


def check_shape(result: PopulationResult) -> List[str]:
    """Violated population-scale claims (empty = all hold)."""
    violations: List[str] = []
    by_key = {row.key: row for row in result.rows}

    for row in result.rows:
        if not row.queries:
            violations.append(f"{row.key} served no queries")
            continue
        summary = row.total
        if not summary.p50 <= summary.p99 <= summary.p999:
            violations.append(f"{row.key} quantiles not monotone")
        if is_localized(row.key):
            if row.localization < 0.99:
                violations.append(
                    f"{row.key} localization {row.localization:.3f} "
                    f"below 0.99 despite MEC collocation")
        elif result.sites > 1 and row.queries >= SHAPE_MIN_QUERIES:
            # A client-blind resolver pins the city to one anchor site:
            # localization collapses toward 1/sites.
            if row.localization > 0.5:
                violations.append(
                    f"{row.key} localization {row.localization:.3f} "
                    f"too high for a client-blind resolver")

    def dns_p50(key: str) -> Optional[float]:
        row = by_key.get(key)
        return row.dns.p50 if row is not None and row.queries else None

    order = ["mec-ldns-mec-cdns", "mec-ldns-lan-cdns", "mec-ldns-wan-cdns"]
    present = [key for key in order if dns_p50(key) is not None]
    for earlier, later in zip(present, present[1:]):
        early_p50, late_p50 = dns_p50(earlier), dns_p50(later)
        assert early_p50 is not None and late_p50 is not None
        if not early_p50 < late_p50:
            violations.append(f"{earlier} dns p50 not below {later}")
    for key in ("mec-ldns-mec-cdns", "mec-ldns-lan-cdns"):
        p50 = dns_p50(key)
        if p50 is not None and p50 >= 20:
            violations.append(
                f"{key} dns p50 {p50:.1f}ms misses the 20ms envelope")
    for key in ("mec-ldns-wan-cdns", "lan-ldns", "google-dns",
                "cloudflare-dns"):
        p50 = dns_p50(key)
        if p50 is not None and p50 <= 20:
            violations.append(f"{key} dns p50 unexpectedly under 20ms")

    # Load balance is where client-blind resolution falls apart at
    # city scale: the anchor cache absorbs everything, so imbalance
    # (max/mean over caches) approaches the cache count, while any
    # consistent-hash policy keeps the localized rows near flat.
    localized_rows = [row for row in result.rows
                      if is_localized(row.key)
                      and row.queries >= SHAPE_MIN_QUERIES]
    blind_rows = [row for row in result.rows
                  if not is_localized(row.key)
                  and row.queries >= SHAPE_MIN_QUERIES]
    for row in localized_rows:
        if row.load_imbalance > 3.0:
            violations.append(
                f"{row.key} cache load imbalance {row.load_imbalance:.2f} "
                f"exceeds 3.0 under consistent hashing")
    if localized_rows and blind_rows:
        worst_localized = max(row.load_imbalance for row in localized_rows)
        best_blind = min(row.load_imbalance for row in blind_rows)
        if best_blind <= 2.0 * worst_localized:
            violations.append(
                f"anchor-pinned imbalance {best_blind:.2f} not clearly "
                f"worse than localized {worst_localized:.2f}")
    for row in localized_rows + blind_rows:
        # Caches must be doing real work: some hits (Zipf head repeats)
        # and some misses (cold starts at minimum).
        if not 0.0 < row.hit_rate < 1.0:
            violations.append(
                f"{row.key} hit rate {row.hit_rate:.3f} degenerate")

    return violations
