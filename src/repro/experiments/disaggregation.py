"""§2 observation 2 quantified: request disaggregation raises miss rates.

The paper, after Figure 3: "although clients send requests from a similar
geo-location, they are not guaranteed to access the content from the same
set of cache servers.  This also leads to disaggregation of requests and
may increase the cache miss rate."

This experiment replays one Zipf request stream under two routings:

* **aggregated** — every request lands on one edge cache group (what a
  MEC-CDN with a pinned edge gives you);
* **disaggregated** — each request is scattered across N independent
  cache groups with Figure 3-style probabilities, so each group sees a
  thinned copy of the popularity curve.

Same content, same demand, same total cache capacity — the only change is
answer stability, and the aggregate hit ratio drops measurably.
"""

from __future__ import annotations

from typing import List, NamedTuple

from repro.cdn.cache_server import CacheServer
from repro.cdn.content import ContentCatalog, ZipfWorkload
from repro.cdn.httpsim import HttpClient
from repro.dnswire.name import Name
from repro.experiments.report import format_table
from repro.netsim.engine import Simulator
from repro.netsim.latency import Constant
from repro.netsim.network import Network
from repro.netsim.rand import RandomStreams
from repro.runtime import Experiment, Param

DEFAULT_REQUESTS = 1500
DEFAULT_OBJECTS = 300
#: Scatter probabilities for the disaggregated case (a Figure 3-ish mix).
SCATTER_WEIGHTS = (0.5, 0.3, 0.2)


class DisaggregationRow(NamedTuple):
    routing: str
    groups: int
    hit_ratio: float
    mean_fetch_ms: float


class DisaggregationResult(NamedTuple):
    rows: List[DisaggregationRow]
    requests: int

    def row(self, routing: str) -> DisaggregationRow:
        """The row with the given key; raises KeyError if absent."""
        for row in self.rows:
            if row.routing == routing:
                return row
        raise KeyError(routing)

    def render(self) -> str:
        """Render the paper-comparable text output."""
        table_rows = [(row.routing, str(row.groups),
                       f"{100 * row.hit_ratio:.1f}%",
                       f"{row.mean_fetch_ms:.1f}")
                      for row in self.rows]
        return format_table(
            ["Routing", "cache groups", "aggregate hit ratio",
             "mean fetch ms"],
            table_rows,
            title=(f"Request disaggregation vs. cache hit ratio "
                   f"({self.requests} requests)"))


class _Scenario:
    """One client, N cache groups, one origin, equal total capacity."""

    def __init__(self, groups: int, per_group_capacity: int,
                 seed: int) -> None:
        self.sim = Simulator()
        self.net = Network(self.sim, RandomStreams(seed))
        self.net.add_host("client", "10.45.0.2")
        self.net.add_host("origin", "203.0.113.80")
        self.net.add_link("client", "origin", Constant(40))
        self.catalog = ContentCatalog()
        rng = self.net.streams.stream("catalog")
        self.items = self.catalog.populate_synthetic(
            Name("video.mycdn.ciab.test"), DEFAULT_OBJECTS, rng,
            min_bytes=50_000, max_bytes=200_000)
        origin = CacheServer(self.net, self.net.host("origin"),
                             self.catalog, is_origin=True)
        self.caches: List[CacheServer] = []
        for index in range(groups):
            host = self.net.add_host(f"edge-{index}", f"10.233.1.{10 + index}")
            self.net.add_link("client", host.name, Constant(2))
            self.net.add_link(host.name, "origin", Constant(38))
            self.caches.append(CacheServer(
                self.net, host, self.catalog,
                capacity_bytes=per_group_capacity,
                parent=origin.endpoint))
        self.client = HttpClient(self.net, self.net.host("client"))

    def replay(self, requests: int, scatter_rng) -> DisaggregationRow:
        workload = ZipfWorkload(self.items,
                                self.net.streams.stream("workload"))
        latencies = []
        for item in workload.requests(requests):
            if len(self.caches) == 1:
                target = self.caches[0]
            else:
                target = scatter_rng.choices(
                    self.caches, weights=SCATTER_WEIGHTS)[0]
            fetch = self.sim.run_until_resolved(self.sim.spawn(
                self.client.fetch(item.url, target.endpoint.ip)))
            latencies.append(fetch.latency_ms)
        hits = sum(cache.stats.hits for cache in self.caches)
        misses = sum(cache.stats.misses for cache in self.caches)
        return DisaggregationRow(
            routing="aggregated" if len(self.caches) == 1 else "disaggregated",
            groups=len(self.caches),
            hit_ratio=hits / (hits + misses),
            mean_fetch_ms=sum(latencies) / len(latencies))


#: Total cache capacity is held constant: 1 x 3C vs 3 x C.
_UNIT_CAPACITY = 4_000_000


class DisaggregationExperiment(Experiment):
    """One trial per routing (aggregated vs disaggregated).

    Each routing already builds its own :class:`_Scenario` from the base
    seed, so the cells keep that seed and sharded output matches the
    historical run byte for byte.
    """

    name = "disaggregation"
    title = "§2 request disaggregation vs. cache hit ratio"
    params = (Param("requests", int, DEFAULT_REQUESTS,
                    "Zipf requests per routing"),
              Param("seed", int, 42, "base RNG seed"))

    def trials(self, params):
        cells = (("aggregated", 1, 3 * _UNIT_CAPACITY),
                 ("disaggregated", 3, _UNIT_CAPACITY))
        return [self.spec(index, seed=int(params["seed"]), routing=routing,
                          groups=groups, per_group_capacity=capacity,
                          requests=int(params["requests"]))
                for index, (routing, groups, capacity) in enumerate(cells)]

    def run_trial(self, spec):
        scenario = _Scenario(groups=int(spec.value("groups")),
                             per_group_capacity=int(
                                 spec.value("per_group_capacity")),
                             seed=spec.seed)
        scatter_rng = scenario.net.streams.stream("scatter")
        return scenario.replay(int(spec.value("requests")), scatter_rng)

    def merge(self, params, payloads):
        return DisaggregationResult(rows=list(payloads),
                                    requests=int(params["requests"]))

    def check_shape(self, result):
        return check_shape(result)


EXPERIMENT = DisaggregationExperiment()


def run(requests: int = DEFAULT_REQUESTS, seed: int = 0) -> DisaggregationResult:
    """Run the experiment and return its structured result."""
    return EXPERIMENT.run_serial(requests=requests, seed=seed)


def check_shape(result: DisaggregationResult) -> List[str]:
    """Violated claims (empty = all hold)."""
    violations: List[str] = []
    aggregated = result.row("aggregated")
    disaggregated = result.row("disaggregated")
    if not aggregated.hit_ratio > disaggregated.hit_ratio + 0.03:
        violations.append(
            f"disaggregation did not reduce the hit ratio "
            f"({aggregated.hit_ratio:.2f} vs {disaggregated.hit_ratio:.2f})")
    if not disaggregated.mean_fetch_ms > aggregated.mean_fetch_ms:
        violations.append("disaggregation did not raise mean fetch latency")
    return violations
