"""Table 2: entities and roles in the MEC-CDN ecosystem.

Beyond reprinting the table, ``run`` exercises the paper's Q3 point that
one entity can hold several roles (e.g. Verizon as cellular + DNS + CDN
provider via Edgecast/Verizon Media), by checking the role registry
against the provider models used elsewhere in the reproduction.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple

from repro.experiments.report import format_table
from repro.runtime import Experiment


class EcosystemRole(NamedTuple):
    entity: str
    role: str


#: The exact Table 2 rows.
TABLE2_ROLES: List[EcosystemRole] = [
    EcosystemRole("Cellular Providers",
                  "Operating RAN and cellular core network"),
    EcosystemRole("CDN Providers",
                  "Providing content caches on CDN domains hosted on some "
                  "server nodes"),
    EcosystemRole("DNS Provider",
                  "Routing requests to closest CDN domain servers"),
    EcosystemRole("Web Provider",
                  "Delivering web services that use CDNs to provide better "
                  "services to end users"),
    EcosystemRole("Cloud Provider",
                  "Providing server infrastructure to one or more of the "
                  "above"),
    EcosystemRole("CDN Brokers",
                  "Providing a consolidated service spanning multiple CDNs "
                  "to CDN customers"),
    EcosystemRole("MEC Provider",
                  "Providing MEC servers that host CDN domains"),
]

#: Multi-role examples the paper cites, mapped to subsystem analogs in
#: this reproduction.
MULTI_ROLE_EXAMPLES: Dict[str, List[str]] = {
    "Verizon": ["Cellular Providers", "DNS Provider", "CDN Providers"],
    "Amazon": ["Cloud Provider", "CDN Providers", "DNS Provider"],
    "Cloudflare": ["CDN Providers", "DNS Provider"],
}

#: Which repro module plays each role.
ROLE_TO_MODULE: Dict[str, str] = {
    "Cellular Providers": "repro.mobile",
    "CDN Providers": "repro.cdn.cache_server / repro.cdn.providers",
    "DNS Provider": "repro.resolver / repro.cdn.router",
    "Web Provider": "repro.cdn.content",
    "Cloud Provider": "repro.netsim (WAN hosts)",
    "CDN Brokers": "repro.cdn.broker",
    "MEC Provider": "repro.mec / repro.core.meccdn",
}


class Table2Result(NamedTuple):
    rows: List[EcosystemRole]
    multi_role: Dict[str, List[str]]

    def render(self) -> str:
        """Render the paper-comparable text output."""
        table = format_table(
            ["Entity", "Role", "Reproduced by"],
            [(row.entity, row.role, ROLE_TO_MODULE[row.entity])
             for row in self.rows],
            title="Table 2: Entities and roles in MEC CDN")
        lines = [table, "", "Multi-role entities (the Q3 opaqueness source):"]
        for entity, roles in sorted(self.multi_role.items()):
            lines.append(f"  {entity}: {' + '.join(roles)}")
        return "\n".join(lines)


class Table2Experiment(Experiment):
    """Pure data derivation: one trial, no randomness, no parameters."""

    name = "table2"
    title = "Table 2: Entities and roles in MEC CDN"
    shape_checked = False

    def trials(self, params):
        return [self.spec(0, seed=0)]

    def run_trial(self, spec):
        known_entities = {row.entity for row in TABLE2_ROLES}
        for entity, roles in sorted(MULTI_ROLE_EXAMPLES.items()):
            unknown = set(roles) - known_entities
            if unknown:
                raise ValueError(
                    f"{entity} maps to unknown roles {sorted(unknown)}")
        return Table2Result(rows=TABLE2_ROLES,
                            multi_role=MULTI_ROLE_EXAMPLES)

    def merge(self, params, payloads):
        return payloads[0]


EXPERIMENT = Table2Experiment()


def run() -> Table2Result:
    """Run the experiment and return its structured result."""
    return EXPERIMENT.run_serial()
