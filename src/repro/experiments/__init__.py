"""Paper artifact regeneration: one module per table/figure.

| Module                          | Paper artifact                       |
|---------------------------------|--------------------------------------|
| :mod:`repro.experiments.table1` | Table 1 (sites and CDN domains)      |
| :mod:`repro.experiments.table2` | Table 2 (entities and roles)         |
| :mod:`repro.experiments.figure2`| Figure 2 (lookup latency by network) |
| :mod:`repro.experiments.figure3`| Figure 3 (answer distribution)       |
| :mod:`repro.experiments.figure5`| Figure 5 (six DNS deployments)       |
| :mod:`repro.experiments.ecs`    | §4 ECS sensitivity experiment        |
| :mod:`repro.experiments.resilience` | §3 fault-injection chaos grid    |

Each module exposes ``run(...)`` returning a structured result with a
``render()`` method that prints the paper-comparable rows/series.
"""

from repro.experiments.table1 import run as run_table1
from repro.experiments.table2 import run as run_table2
from repro.experiments.figure2 import run as run_figure2
from repro.experiments.figure3 import run as run_figure3
from repro.experiments.figure5 import run as run_figure5
from repro.experiments.ecs import run as run_ecs
from repro.experiments.mislocalization import run as run_mislocalization
from repro.experiments.disaggregation import run as run_disaggregation
from repro.experiments.envelope_sweep import run as run_envelope_sweep
from repro.experiments.overload import run as run_overload
from repro.experiments.access_latency import run as run_access_latency
from repro.experiments.capacity import run as run_capacity
from repro.experiments.resilience import run as run_resilience

__all__ = [
    "run_access_latency",
    "run_capacity",
    "run_disaggregation",
    "run_envelope_sweep",
    "run_overload",
    "run_resilience",
    "run_table1",
    "run_table2",
    "run_figure2",
    "run_figure3",
    "run_figure5",
    "run_ecs",
    "run_mislocalization",
]
