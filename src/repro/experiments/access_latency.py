"""End-to-end content access latency: DNS + fetch, per deployment.

The paper's abstract promises "drastic reductions in the access latency
for content cached in MEC-CDNs".  Figure 5 measures only the DNS part;
this experiment completes the claim: for each deployment, a UE resolves
the content name and then fetches the object from the answered cache,
and both components are reported.

Because the cache itself sits at the MEC in every deployment (that is
the premise), the fetch cost is similar everywhere — the access-latency
gap between deployments is almost entirely the DNS gap, which is exactly
the paper's argument for why DNS placement decides MEC-CDN viability.
"""

from __future__ import annotations

from typing import Generator, List, NamedTuple

from repro.cdn.httpsim import HttpClient
from repro.core.deployments import (
    DEPLOYMENT_KEYS,
    DEPLOYMENT_LABELS,
    build_testbed,
)
from repro.experiments.report import format_table
from repro.measure.runner import measure_deployment_queries
from repro.measure.stats import summarize
from repro.runtime import Experiment, Param

DEFAULT_ROUNDS = 12
#: The paper's motivating budget for AR/VR-class applications.
BUDGET_MS = 20.0


class AccessLatencyRow(NamedTuple):
    key: str
    label: str
    dns_ms: float
    fetch_ms: float
    total_ms: float
    cache_hit_rate: float


class AccessLatencyResult(NamedTuple):
    rows: List[AccessLatencyRow]
    rounds: int

    def row(self, key: str) -> AccessLatencyRow:
        """The row with the given key; raises KeyError if absent."""
        for row in self.rows:
            if row.key == key:
                return row
        raise KeyError(key)

    def render(self) -> str:
        """Render the paper-comparable text output."""
        table_rows = [(row.label, f"{row.dns_ms:.1f}", f"{row.fetch_ms:.1f}",
                       f"{row.total_ms:.1f}",
                       f"{100 * row.cache_hit_rate:.0f}%")
                      for row in self.rows]
        return format_table(
            ["Deployment", "DNS ms", "fetch ms", "total ms", "edge hits"],
            table_rows,
            title=(f"End-to-end content access latency "
                   f"({self.rounds} rounds/deployment)"))


def _measure_deployment(key: str, rounds: int, seed: int) -> AccessLatencyRow:
    testbed = build_testbed(key, seed=seed)
    dns = measure_deployment_queries(testbed, rounds)
    dns_mean = summarize([m.latency_ms for m in dns]).mean
    cache_ip = dns[0].addresses[0]
    url = f"http://{testbed.query_name.to_text().rstrip('.')}/seg1.ts"
    client = HttpClient(testbed.network, testbed.ue.host)
    sim = testbed.sim
    fetches = []

    def fetch_rounds() -> Generator:
        for _ in range(rounds):
            result = yield from client.fetch(url, cache_ip)
            fetches.append(result)
            yield 100.0

    sim.run_until_resolved(sim.spawn(fetch_rounds()))
    fetch_mean = summarize([f.latency_ms for f in fetches]).mean
    hits = sum(1 for f in fetches if f.cache_hit)
    return AccessLatencyRow(
        key=key, label=DEPLOYMENT_LABELS[key],
        dns_ms=dns_mean, fetch_ms=fetch_mean,
        total_ms=dns_mean + fetch_mean,
        cache_hit_rate=hits / len(fetches))


class AccessLatencyExperiment(Experiment):
    """One trial per deployment: DNS series plus cached-content fetches."""

    name = "access-latency"
    title = "End-to-end content access latency per deployment"
    params = (Param("rounds", int, DEFAULT_ROUNDS,
                    "measured rounds per deployment"),
              Param("seed", int, 42, "base RNG seed"))

    def trials(self, params):
        return [self.spec(index, seed=int(params["seed"]), key=key,
                          rounds=int(params["rounds"]))
                for index, key in enumerate(DEPLOYMENT_KEYS)]

    def run_trial(self, spec):
        return _measure_deployment(str(spec.value("key")),
                                   int(spec.value("rounds")), spec.seed)

    def merge(self, params, payloads):
        return AccessLatencyResult(rows=list(payloads),
                                   rounds=int(params["rounds"]))

    def check_shape(self, result):
        return check_shape(result)


EXPERIMENT = AccessLatencyExperiment()


def run(rounds: int = DEFAULT_ROUNDS, seed: int = 42) -> AccessLatencyResult:
    """Run the experiment and return its structured result."""
    return EXPERIMENT.run_serial(rounds=rounds, seed=seed)


def check_shape(result: AccessLatencyResult) -> List[str]:
    """Violated claims (empty = all hold)."""
    violations: List[str] = []
    mec = result.row("mec-ldns-mec-cdns")
    worst = max(result.rows, key=lambda row: row.total_ms)
    if not worst.total_ms / mec.total_ms > 4:
        violations.append(
            f"access-latency reduction only "
            f"{worst.total_ms / mec.total_ms:.1f}x — not 'drastic'")
    # The fetch leg is MEC-local everywhere, so it must be roughly flat:
    # the spread between deployments comes from DNS.
    fetches = [row.fetch_ms for row in result.rows]
    if max(fetches) - min(fetches) > 0.3 * max(fetches):
        violations.append("fetch leg varies too much across deployments")
    for row in result.rows:
        if row.cache_hit_rate < 1.0:
            violations.append(f"{row.key}: content not served from the "
                              f"warmed MEC cache")
    dns_gap = worst.dns_ms - mec.dns_ms
    total_gap = worst.total_ms - mec.total_ms
    if not 0.9 <= dns_gap / total_gap <= 1.1:
        violations.append("the access-latency gap is not DNS-dominated")
    return violations
