"""The built-in experiment registry: every paper artifact, in order.

``builtin_registry()`` is what the CLI dispatches through — one
:class:`~repro.runtime.ExperimentRegistry` holding all the artifact
recipes in publication order (the order ``experiment all`` runs them).
Adding an artifact means registering it here; no CLI edit is needed,
the registry generates the flags.
"""

from __future__ import annotations

from repro.experiments import (access_latency, capacity, churn,
                               disaggregation, ecs, envelope_sweep,
                               figure2, figure3, figure5,
                               mislocalization, overload, population,
                               resilience, table1, table2)
from repro.runtime import ExperimentRegistry


def builtin_registry() -> ExperimentRegistry:
    """A fresh registry of every paper artifact, in publication order."""
    registry = ExperimentRegistry()
    for module in (table1, table2, figure2, figure3, figure5, ecs,
                   mislocalization, disaggregation, envelope_sweep,
                   overload, access_latency, capacity, resilience,
                   churn, population):
        registry.register(module.EXPERIMENT)
    return registry
