"""Plain-text rendering helpers shared by the experiment modules."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: str = "") -> str:
    """A fixed-width text table with a rule under the header."""
    columns = len(headers)
    widths = [len(header) for header in headers]
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} does not have {columns} cells")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(widths[index])
                         for index, cell in enumerate(cells)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def format_bar(fraction: float, width: int = 30) -> str:
    """A unicode bar for quick visual comparison, e.g. '#####     42%'."""
    if not 0 <= fraction <= 1:
        fraction = max(0.0, min(1.0, fraction))
    filled = round(fraction * width)
    return "#" * filled + "." * (width - filled)
