"""Figure 2: DNS lookup latency per CDN domain and access network.

For each Table 1 domain and each of the three connectivities, run a
series of dig-style lookups (the paper: "at least 12 tests"), summarise
with the 8th-92nd percentile trim, and report bar height (trimmed mean)
plus the min/max error lines.

Shape claims this reproduces:

1. cellular-mobile ≫ wifi-home ≳ wired-campus for every domain;
2. cellular-mobile has visibly higher variability;
3. per-domain scales differ (Airbnb's C-DNS is slower than Booking's).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple

from repro.cdn.providers import CONNECTIVITIES, TABLE1_SITES
from repro.experiments.public_internet import PublicInternetScenario
from repro.experiments.report import format_table
from repro.measure.stats import SummaryStats, summarize
from repro.runtime import Experiment, Param, derive_seed

#: Matches the paper's "at least 12 tests" with margin.
DEFAULT_TRIALS = 25


class Figure2Row(NamedTuple):
    site: str
    connectivity: str
    stats: SummaryStats


class Figure2Result(NamedTuple):
    rows: List[Figure2Row]
    trials: int

    def bars(self) -> Dict[Tuple[str, str], float]:
        """(site, connectivity) -> bar height in ms."""
        return {(row.site, row.connectivity): row.stats.mean
                for row in self.rows}

    def render_chart(self, width: int = 40) -> str:
        """Grouped horizontal bars, one block per domain (like Figure 2)."""
        scale_max = max(row.stats.maximum for row in self.rows)
        lines = ["Figure 2 (chart): '#' trimmed mean, '|' max"]
        last_site = None
        for row in self.rows:
            if row.site != last_site:
                lines.append(f"--- {row.site} ---")
                last_site = row.site
            filled = round(width * row.stats.mean / scale_max)
            marker = min(round(width * row.stats.maximum / scale_max),
                         width - 1)
            bar = list("#" * filled + " " * (width - filled))
            if bar[marker] == " ":
                bar[marker] = "|"
            lines.append(f"{row.connectivity:16s}{''.join(bar)} "
                         f"{row.stats.mean:6.1f} ms")
        return "\n".join(lines)

    def render(self) -> str:
        """Render the paper-comparable text output."""
        table_rows = []
        for row in self.rows:
            stats = row.stats
            table_rows.append((
                row.site, row.connectivity,
                f"{stats.mean:.1f}", f"{stats.minimum:.1f}",
                f"{stats.maximum:.1f}", f"{stats.stdev:.1f}"))
        return format_table(
            ["Site", "Connectivity", "mean ms (8-92 pct)",
             "min", "max", "stdev"],
            table_rows,
            title=f"Figure 2: DNS lookup latency ({self.trials} tests/bar)")


def _deployment(site: str):
    for deployment in TABLE1_SITES:
        if deployment.site == site:
            return deployment
    raise KeyError(site)


class Figure2Experiment(Experiment):
    """One trial per (site, connectivity) bar, independently seeded."""

    name = "figure2"
    title = "Figure 2: DNS lookup latency per CDN domain and access network"
    params = (Param("trials", int, 25, "tests per bar"),
              Param("seed", int, 42, "base RNG seed"))

    def trials(self, params):
        trials = int(params["trials"])
        base = int(params["seed"])
        specs = []
        for deployment in TABLE1_SITES:
            for connectivity in CONNECTIVITIES:
                specs.append(self.spec(
                    len(specs),
                    seed=derive_seed(base, "figure2", deployment.site,
                                     connectivity),
                    site=deployment.site, connectivity=connectivity,
                    trials=trials))
        return specs

    def run_trial(self, spec):
        site = str(spec.value("site"))
        connectivity = str(spec.value("connectivity"))
        scenario = PublicInternetScenario(seed=spec.seed)
        results = scenario.run_series(connectivity, _deployment(site),
                                      int(spec.value("trials")))
        stats = summarize([result.query_time_ms for result in results])
        return Figure2Row(site, connectivity, stats)

    def merge(self, params, payloads):
        return Figure2Result(rows=list(payloads),
                             trials=int(params["trials"]))

    def check_shape(self, result):
        return check_shape(result)


EXPERIMENT = Figure2Experiment()


def run(trials: int = DEFAULT_TRIALS, seed: int = 0) -> Figure2Result:
    """Run the experiment and return its structured result."""
    return EXPERIMENT.run_serial(trials=trials, seed=seed)


def check_shape(result: Figure2Result) -> List[str]:
    """Return a list of violated shape claims (empty = all hold)."""
    violations: List[str] = []
    bars = result.bars()
    stdevs = {(row.site, row.connectivity): row.stats.stdev
              for row in result.rows}
    for deployment in TABLE1_SITES:
        site = deployment.site
        wired = bars[(site, "wired-campus")]
        wifi = bars[(site, "wifi-home")]
        cellular = bars[(site, "cellular-mobile")]
        if not cellular > wifi:
            violations.append(f"{site}: cellular ({cellular:.1f}) not above "
                              f"wifi ({wifi:.1f})")
        if not cellular > 2 * wired:
            violations.append(f"{site}: cellular ({cellular:.1f}) not well "
                              f"above wired ({wired:.1f})")
        if not wifi > wired:
            violations.append(f"{site}: wifi ({wifi:.1f}) not above wired "
                              f"({wired:.1f})")
        if not stdevs[(site, "cellular-mobile")] > \
                stdevs[(site, "wired-campus")]:
            violations.append(f"{site}: cellular variability not above wired")
    return violations
