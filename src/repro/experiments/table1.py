"""Table 1: the five travel sites and the CDN domain tested for each.

The table itself is data (it names the measurement targets); ``run``
re-derives it from the provider models and verifies the domains are the
ones used by the Figure 2/3 experiments.
"""

from __future__ import annotations

from typing import List, NamedTuple

from repro.cdn.providers import TABLE1_SITES
from repro.experiments.report import format_table
from repro.runtime import Experiment


class Table1Row(NamedTuple):
    site: str
    domain: str
    providers: str


class Table1Result(NamedTuple):
    rows: List[Table1Row]

    def render(self) -> str:
        """Render the paper-comparable text output."""
        return format_table(
            ["Online travel agency", "Tested CDN domain name",
             "Providers observed (Fig. 3)"],
            [(row.site, row.domain, row.providers) for row in self.rows],
            title="Table 1: CDN domains tested for static web content")


class Table1Experiment(Experiment):
    """Pure data derivation: one trial, no randomness, no parameters."""

    name = "table1"
    title = "Table 1: CDN domains tested for static web content"
    shape_checked = False

    def trials(self, params):
        return [self.spec(0, seed=0)]

    def run_trial(self, spec):
        rows = []
        for deployment in TABLE1_SITES:
            providers = sorted({pool.provider for pool in deployment.pools})
            rows.append(Table1Row(
                site=deployment.site,
                domain=deployment.domain.to_text().rstrip("."),
                providers=", ".join(providers)))
        return Table1Result(rows=rows)

    def merge(self, params, payloads):
        return payloads[0]


EXPERIMENT = Table1Experiment()


def run() -> Table1Result:
    """Run the experiment and return its structured result."""
    return EXPERIMENT.run_serial()
