"""Overload experiment: the MEC DNS under a query flood, with and
without the orchestrator's switch-to-provider mitigation.

§3 of the paper: the MEC DNS is best-effort, and the orchestrator "can
simply switch (or only unicast) to the provider's L-DNS during high
ingress (above a threshold)".  With the finite-capacity server model
(one worker, ~1 ms service time) a flood saturates the MEC DNS: its
queue fills, legitimate queries are dropped or massively delayed.  The
mitigation trades latency (the provider is ~90 ms away) for availability.

Measured per policy: baseline latency, latency during the attack, and
the fraction of legitimate queries answered during the attack.
"""

from __future__ import annotations

from typing import Generator, List, NamedTuple

from repro.dnswire import cached_wire, make_query
from repro.dnswire.message import ResourceRecord
from repro.dnswire.name import Name
from repro.dnswire.rdata import A, NS, SOA
from repro.dnswire.types import RecordType
from repro.dnswire.zone import Zone
from repro.errors import QueryTimeout
from repro.experiments.report import format_table
from repro.mec.ingress import DosMitigation, IngressMonitor
from repro.measure.stats import percentile
from repro.mobile.ue import UserEquipment
from repro.netsim.engine import Simulator
from repro.netsim.latency import Constant
from repro.netsim.network import Network
from repro.netsim.packet import Endpoint
from repro.netsim.rand import RandomStreams
from repro.netsim.socket import UdpSocket
from repro.resolver.authoritative import AuthoritativeServer
from repro.runtime import Experiment, Param

CDN_DOMAIN = "mycdn.ciab.test"
CONTENT = Name(f"video.demo1.{CDN_DOMAIN}")

BASELINE_MS = 2_000.0
ATTACK_MS = 4_000.0
COOLDOWN_MS = 1_000.0
LEGIT_INTERVAL_MS = 50.0
LEGIT_TIMEOUT_MS = 600.0


def _zone(address: str) -> Zone:
    zone = Zone(Name(CDN_DOMAIN))
    zone.add(ResourceRecord(Name(CDN_DOMAIN), RecordType.SOA, 300,
                            SOA(Name(f"ns.{CDN_DOMAIN}"),
                                Name(f"admin.{CDN_DOMAIN}"), 1, 2, 3, 4, 60)))
    zone.add(ResourceRecord(Name(CDN_DOMAIN), RecordType.NS, 300,
                            NS(Name(f"ns.{CDN_DOMAIN}"))))
    zone.add(ResourceRecord(CONTENT, RecordType.A, 0, A("10.233.1.10")))
    return zone


class OverloadRow(NamedTuple):
    policy: str
    baseline_p95_ms: float
    attack_p95_ms: float
    attack_success_rate: float
    mitigation_activations: int
    queries_dropped_at_mec: int


class OverloadResult(NamedTuple):
    rows: List[OverloadRow]
    attack_qps: float

    def row(self, policy: str) -> OverloadRow:
        """The row with the given key; raises KeyError if absent."""
        for row in self.rows:
            if row.policy == policy:
                return row
        raise KeyError(policy)

    def render(self) -> str:
        """Render the paper-comparable text output."""
        table_rows = [(row.policy,
                       f"{row.baseline_p95_ms:.1f}",
                       f"{row.attack_p95_ms:.1f}",
                       f"{100 * row.attack_success_rate:.0f}%",
                       str(row.mitigation_activations),
                       str(row.queries_dropped_at_mec))
                      for row in self.rows]
        return format_table(
            ["Policy", "baseline p95 ms", "attack p95 ms",
             "answered during attack", "mitigations", "dropped at MEC"],
            table_rows,
            title=f"MEC DNS under a {self.attack_qps:.0f} qps flood")


def _run_policy(policy: str, attack_qps: float, seed: int) -> OverloadRow:
    sim = Simulator()
    net = Network(sim, RandomStreams(seed))
    from repro.core.deployments import _attach_ambient_telemetry
    _attach_ambient_telemetry(net)
    net.add_host("mec-dns", "10.96.0.10")
    net.add_host("provider", "203.0.113.10")
    net.add_host("attacker", "10.45.0.66")
    net.add_link("attacker", "mec-dns", Constant(3))
    ue = UserEquipment(net, "ue", "10.45.0.2",
                       default_dns=Endpoint("10.96.0.10", 53))
    net.add_link("ue", "mec-dns", Constant(3))
    net.add_link("ue", "provider", Constant(45))

    # Finite capacity: one worker, ~1.2 ms service -> ~830 qps ceiling.
    mec_dns = AuthoritativeServer(net, net.host("mec-dns"),
                                  [_zone("10.233.1.10")],
                                  processing_delay=Constant(1.2),
                                  workers=1, max_queue=64)
    AuthoritativeServer(net, net.host("provider"), [_zone("10.233.1.10")])

    monitor = IngressMonitor(window_ms=500, threshold_qps=400)
    mitigation = DosMitigation(monitor,
                               mec_dns=Endpoint("10.96.0.10", 53),
                               provider_ldns=Endpoint("203.0.113.10", 53))
    if policy == "switch-to-provider":
        mitigation.manage(ue)
    original = mec_dns.sock.on_datagram

    def metered(payload, client, sock):
        monitor.record(sim.now)
        mitigation.evaluate(sim.now)
        original(payload, client, sock)

    mec_dns.sock.on_datagram = metered

    # The flood: fixed-rate datagrams straight at the MEC DNS.
    attacker_sock = UdpSocket(net.host("attacker"))
    gap_ms = 1000.0 / attack_qps

    def flood() -> Generator:
        yield BASELINE_MS
        elapsed = 0.0
        index = 0
        while elapsed < ATTACK_MS:
            index += 1
            query = make_query(CONTENT, msg_id=(index % 0xFFFF) or 1)
            attacker_sock.send_to(cached_wire(query),
                                  Endpoint("10.96.0.10", 53))
            yield gap_ms
            elapsed += gap_ms

    sim.spawn(flood())

    baseline_latencies: List[float] = []
    attack_latencies: List[float] = []
    attack_attempts = 0
    attack_successes = 0

    def legit() -> Generator:
        nonlocal attack_attempts, attack_successes
        end = BASELINE_MS + ATTACK_MS + COOLDOWN_MS
        while sim.now < end:
            in_attack = BASELINE_MS <= sim.now < BASELINE_MS + ATTACK_MS
            stub = ue.stub(timeout=LEGIT_TIMEOUT_MS, retries=0)
            if in_attack:
                attack_attempts += 1
            try:
                result = yield from stub.query(CONTENT)
            except QueryTimeout:
                yield LEGIT_INTERVAL_MS
                continue
            if in_attack:
                attack_successes += 1
                attack_latencies.append(result.query_time_ms)
            elif sim.now < BASELINE_MS:
                baseline_latencies.append(result.query_time_ms)
            yield LEGIT_INTERVAL_MS

    sim.run_until_resolved(sim.spawn(legit()))
    return OverloadRow(
        policy=policy,
        baseline_p95_ms=percentile(baseline_latencies, 95),
        attack_p95_ms=(percentile(attack_latencies, 95)
                       if attack_latencies else float("inf")),
        attack_success_rate=(attack_successes / attack_attempts
                             if attack_attempts else 0.0),
        mitigation_activations=mitigation.activations,
        queries_dropped_at_mec=mec_dns.queries_dropped)


class OverloadExperiment(Experiment):
    """One trial per mitigation policy under the same flood."""

    name = "overload"
    title = "MEC DNS under a query flood, with/without mitigation"
    params = (Param("attack_qps", float, 1500.0, "flood rate"),
              Param("seed", int, 42, "base RNG seed"))

    def trials(self, params):
        return [self.spec(index, seed=int(params["seed"]), policy=policy,
                          attack_qps=float(params["attack_qps"]))
                for index, policy in enumerate(("none",
                                                "switch-to-provider"))]

    def run_trial(self, spec):
        return _run_policy(str(spec.value("policy")),
                           float(spec.value("attack_qps")), spec.seed)

    def merge(self, params, payloads):
        return OverloadResult(rows=list(payloads),
                              attack_qps=float(params["attack_qps"]))

    def check_shape(self, result):
        return check_shape(result)


EXPERIMENT = OverloadExperiment()


def run(attack_qps: float = 1500.0, seed: int = 0) -> OverloadResult:
    """Run the experiment and return its structured result."""
    return EXPERIMENT.run_serial(attack_qps=attack_qps, seed=seed)


def check_shape(result: OverloadResult) -> List[str]:
    """Violated claims (empty = all hold)."""
    violations: List[str] = []
    unmitigated = result.row("none")
    mitigated = result.row("switch-to-provider")
    if not unmitigated.attack_success_rate < 0.8:
        violations.append("the flood did not actually degrade service")
    if not mitigated.attack_success_rate > 0.95:
        violations.append(
            f"mitigation did not preserve availability "
            f"({mitigated.attack_success_rate:.2f})")
    if not mitigated.mitigation_activations >= 1:
        violations.append("mitigation never activated")
    if not mitigated.attack_p95_ms < LEGIT_TIMEOUT_MS:
        violations.append("mitigated latency not bounded")
    if not mitigated.attack_p95_ms > mitigated.baseline_p95_ms:
        violations.append("mitigation should cost latency (provider is far)")
    return violations
