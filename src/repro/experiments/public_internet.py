"""The modelled public-Internet scenario behind Figures 2 and 3.

One device location, three access paths (the paper queried "from the
exact same geographic location" over campus Ethernet, home Wi-Fi, and a
cellular hotspot), each with its own L-DNS:

* wired-campus — the campus resolver, a couple of router hops away;
* wifi-home — the residential ISP resolver;
* cellular-mobile — the carrier resolver behind the EPC, reached through
  the LTE radio and the opaque operator path the paper blames for the
  "substantially higher delay and higher response time variability".

All three resolvers forward CDN-domain queries to one consolidated
authority plane (:class:`~repro.cdn.broker.BrokeredCdnAuthority`) that
applies each Table 1 site's per-connectivity pool mix.  Answer TTLs are
short (30 s) and the experiment spaces queries a minute apart, so every
query exercises the C-DNS step (steps 1, 3, 4 of Figure 1 — step 2 is
skipped exactly as the paper observed).
"""

from __future__ import annotations

from typing import Dict, Generator, List

from repro.cdn.broker import BrokeredCdnAuthority, CdnBroker
from repro.cdn.providers import CONNECTIVITIES, TABLE1_SITES, DomainDeployment
from repro.mobile.core import EvolvedPacketCore
from repro.mobile.profiles import CELLULAR_LTE, WIFI_HOME, WIRED_CAMPUS
from repro.netsim.engine import Simulator
from repro.netsim.latency import lognormal_from_median_p95
from repro.netsim.network import Network
from repro.netsim.packet import Endpoint
from repro.netsim.rand import RandomStreams
from repro.resolver.forwarder import ForwardingResolver
from repro.resolver.stub import DigResult, StubResolver

#: Spacing between repeated tests; longer than the 30 s answer TTL so the
#: L-DNS re-asks the CDN plane each time, as the paper's spread implies.
DEFAULT_SPACING_MS = 60_000.0

#: Per-domain extra C-DNS processing ("CDN internal caching mechanisms
#: around their server hierarchy, naming, indexing, ...", §2) — this is
#: what gives each Figure 2 subplot its own scale.
_PER_DOMAIN_CDNS_DELAY = {
    "Airbnb": lognormal_from_median_p95(9.0, 18.0),
    "Booking.com": lognormal_from_median_p95(2.0, 5.0),
    "TripAdvisor": lognormal_from_median_p95(4.0, 9.0),
    "Agoda": lognormal_from_median_p95(6.0, 12.0),
    "Expedia": lognormal_from_median_p95(3.0, 7.0),
}


class PublicInternetScenario:
    """Three access networks sharing one brokered CDN authority plane."""

    def __init__(self, seed: int = 0) -> None:
        self.sim = Simulator()
        self.network = Network(self.sim, RandomStreams(seed))
        from repro.core.deployments import _attach_ambient_telemetry
        _attach_ambient_telemetry(self.network)
        streams = self.network.streams

        # The consolidated CDN routing plane.
        plane = self.network.add_host("cdn-plane", "203.0.113.53")
        brokers = [CdnBroker(deployment, streams.stream(f"broker:{deployment.site}"))
                   for deployment in TABLE1_SITES]
        per_domain_delay = {
            deployment.domain: _PER_DOMAIN_CDNS_DELAY[deployment.site]
            for deployment in TABLE1_SITES}
        self.authority = BrokeredCdnAuthority(
            self.network, plane, brokers,
            resolver_classes={
                "192.0.10.": "wired-campus",
                "198.51.77.": "wifi-home",
                "198.51.100.": "cellular-mobile",
            },
            per_domain_delay=per_domain_delay)

        self._clients: Dict[str, str] = {}
        self._resolvers: Dict[str, ForwardingResolver] = {}
        self._build_wired()
        self._build_wifi()
        self._build_cellular()

    # -- access paths -----------------------------------------------------------

    def _build_wired(self) -> None:
        net = self.network
        net.add_host("client-wired", "10.10.0.2")
        net.add_host("campus-sw", "10.10.0.1")
        net.add_host("campus-ldns", "192.0.10.53")
        net.add_link("client-wired", "campus-sw", WIRED_CAMPUS.radio)
        net.add_link("campus-sw", "campus-ldns", WIRED_CAMPUS.access_backhaul)
        net.add_link("campus-ldns", "cdn-plane",
                     lognormal_from_median_p95(5.0, 9.0, shift=2.0))
        resolver = ForwardingResolver(
            net, net.host("campus-ldns"),
            upstreams=[self.authority.endpoint])
        self._clients["wired-campus"] = "client-wired"
        self._resolvers["wired-campus"] = resolver

    def _build_wifi(self) -> None:
        net = self.network
        net.add_host("client-wifi", "192.168.1.2")
        net.add_host("home-ap", "192.168.1.1")
        net.add_host("isp-ldns", "198.51.77.53")
        net.add_link("client-wifi", "home-ap", WIFI_HOME.radio)
        net.add_link("home-ap", "isp-ldns", WIFI_HOME.access_backhaul)
        net.add_link("isp-ldns", "cdn-plane",
                     lognormal_from_median_p95(6.0, 11.0, shift=2.5))
        resolver = ForwardingResolver(
            net, net.host("isp-ldns"),
            upstreams=[self.authority.endpoint])
        self._clients["wifi-home"] = "client-wifi"
        self._resolvers["wifi-home"] = resolver

    def _build_cellular(self) -> None:
        net = self.network
        epc = EvolvedPacketCore(
            net, "carrier", CELLULAR_LTE,
            sgw_ip="10.140.0.2", pgw_ip="10.140.0.1",
            public_ips=["198.51.100.9"])
        epc.add_base_station("hotspot-enb", "10.140.1.1")
        # The hotspot phone and the laptop behind it collapse into one UE
        # host; the paper tethered through a phone hotspot.
        net.add_host("client-cell", "10.145.0.2")
        net.add_link("client-cell", "hotspot-enb", CELLULAR_LTE.radio)
        net.add_host("carrier-ldns", "198.51.100.53")
        # The opaque operator path to the cellular L-DNS (§2 observation 1).
        net.add_link(epc.pgw.name, "carrier-ldns",
                     lognormal_from_median_p95(15.0, 36.0, shift=6.0))
        net.add_link("carrier-ldns", "cdn-plane",
                     lognormal_from_median_p95(6.0, 11.0, shift=2.5))
        resolver = ForwardingResolver(
            net, net.host("carrier-ldns"),
            upstreams=[self.authority.endpoint])
        self._clients["cellular-mobile"] = "client-cell"
        self._resolvers["cellular-mobile"] = resolver
        self.epc = epc

    # -- query drivers ----------------------------------------------------------------

    def resolver_endpoint(self, connectivity: str) -> Endpoint:
        """The L-DNS endpoint serving one connectivity class."""
        return self._resolvers[connectivity].endpoint

    def run_series(self, connectivity: str, deployment: DomainDeployment,
                   count: int,
                   spacing_ms: float = DEFAULT_SPACING_MS) -> List[DigResult]:
        """``count`` dig runs for one domain over one access network."""
        if connectivity not in CONNECTIVITIES:
            raise ValueError(f"unknown connectivity {connectivity!r}")
        client = self.network.host(self._clients[connectivity])
        stub = StubResolver(self.network, client,
                            self.resolver_endpoint(connectivity))
        results: List[DigResult] = []

        def driver() -> Generator:
            for _ in range(count):
                result = yield from stub.query(deployment.domain)
                results.append(result)
                yield spacing_ms

        self.sim.run_until_resolved(self.sim.spawn(driver()))
        return results
