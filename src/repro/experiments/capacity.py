"""Capacity curve: the MEC DNS under increasing offered load.

A MEC site's DNS serves every application at that edge from constrained
hardware, so its capacity envelope matters (the paper's DoS discussion is
the adversarial corner of the same curve).  This experiment drives the
finite-capacity MEC DNS with an open-loop load generator at increasing
offered rates and reports the classic hockey-stick: flat latency and
loss-free goodput below the service capacity, then queueing blow-up and
loss beyond it.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence

from repro.dnswire.message import ResourceRecord
from repro.dnswire.name import Name
from repro.dnswire.rdata import A, NS, SOA
from repro.dnswire.types import RecordType
from repro.dnswire.zone import Zone
from repro.experiments.report import format_table
from repro.measure.loadgen import LoadResult, run_load
from repro.netsim.engine import Simulator
from repro.netsim.latency import Constant
from repro.netsim.network import Network
from repro.netsim.packet import Endpoint
from repro.netsim.rand import RandomStreams
from repro.resolver.authoritative import AuthoritativeServer
from repro.runtime import Experiment, Param

CDN_DOMAIN = "mycdn.ciab.test"
CONTENT = Name(f"video.demo1.{CDN_DOMAIN}")

#: Service model of the benchmarked MEC DNS: 2 workers x 1 ms service
#: time -> nominal capacity ~2000 qps.
WORKERS = 2
SERVICE_MS = 1.0
NOMINAL_CAPACITY_QPS = WORKERS * 1000.0 / SERVICE_MS

DEFAULT_RATES = (200.0, 500.0, 1000.0, 1500.0, 1800.0, 2200.0, 3000.0,
                 4000.0)
DEFAULT_DURATION_MS = 2000.0


def _zone() -> Zone:
    zone = Zone(Name(CDN_DOMAIN))
    zone.add(ResourceRecord(Name(CDN_DOMAIN), RecordType.SOA, 300,
                            SOA(Name(f"ns.{CDN_DOMAIN}"),
                                Name(f"admin.{CDN_DOMAIN}"), 1, 2, 3, 4, 60)))
    zone.add(ResourceRecord(Name(CDN_DOMAIN), RecordType.NS, 300,
                            NS(Name(f"ns.{CDN_DOMAIN}"))))
    zone.add(ResourceRecord(CONTENT, RecordType.A, 0, A("10.233.1.10")))
    return zone


class CapacityResult(NamedTuple):
    """The measured curve."""

    points: List[LoadResult]
    nominal_capacity_qps: float
    #: First offered rate where loss exceeded 1%.
    saturation_qps: Optional[float]

    def render(self) -> str:
        """Render the capacity-curve text table."""
        rows = [(f"{point.offered_qps:.0f}",
                 f"{point.goodput_qps:.0f}",
                 f"{100 * point.loss_rate:.1f}%",
                 f"{point.p50_ms:.1f}",
                 f"{point.p95_ms:.1f}")
                for point in self.points]
        table = format_table(
            ["offered qps", "goodput qps", "loss", "p50 ms", "p95 ms"],
            rows,
            title=(f"MEC DNS capacity curve ({WORKERS} workers x "
                   f"{SERVICE_MS:.1f} ms service)"))
        saturation = ("not reached" if self.saturation_qps is None
                      else f"{self.saturation_qps:.0f} qps offered")
        return (table
                + f"\nnominal capacity: {self.nominal_capacity_qps:.0f} qps; "
                  f"saturation onset: {saturation}")


class CapacityExperiment(Experiment):
    """One trial per offered rate; each gets a fresh server."""

    name = "capacity"
    title = "MEC DNS capacity curve under increasing offered load"
    params = (Param("duration_ms", float, DEFAULT_DURATION_MS,
                    "load duration per rate (ms)"),
              Param("seed", int, 42, "base RNG seed"),
              Param("rates", tuple, DEFAULT_RATES,
                    "offered rates (qps)", cli=False))

    def trials(self, params):
        return [self.spec(index, seed=int(params["seed"]),
                          rate=float(rate),
                          duration_ms=float(params["duration_ms"]))
                for index, rate in enumerate(params["rates"])]

    def run_trial(self, spec):
        sim = Simulator()
        net = Network(sim, RandomStreams(spec.seed))
        from repro.core.deployments import _attach_ambient_telemetry
        _attach_ambient_telemetry(net)
        net.add_host("mec-dns", "10.96.0.10")
        net.add_host("clients", "10.45.0.2")
        net.add_link("clients", "mec-dns", Constant(1))
        AuthoritativeServer(net, net.host("mec-dns"), [_zone()],
                            processing_delay=Constant(SERVICE_MS),
                            workers=WORKERS, max_queue=128)
        return run_load(net, net.host("clients"),
                        Endpoint("10.96.0.10", 53), CONTENT,
                        offered_qps=float(spec.value("rate")),
                        duration_ms=float(spec.value("duration_ms")),
                        reply_timeout_ms=1000.0)

    def merge(self, params, payloads):
        points = list(payloads)
        saturation = next((point.offered_qps for point in points
                           if point.loss_rate > 0.01), None)
        return CapacityResult(points=points,
                              nominal_capacity_qps=NOMINAL_CAPACITY_QPS,
                              saturation_qps=saturation)

    def check_shape(self, result):
        return check_shape(result)


EXPERIMENT = CapacityExperiment()


def run(rates: Sequence[float] = DEFAULT_RATES,
        duration_ms: float = DEFAULT_DURATION_MS,
        seed: int = 0) -> CapacityResult:
    """Run the load sweep; each rate gets a fresh server (no carryover)."""
    return EXPERIMENT.run_serial(rates=tuple(rates),
                                 duration_ms=duration_ms, seed=seed)


def check_shape(result: CapacityResult) -> List[str]:
    """Violated claims (empty = all hold)."""
    violations: List[str] = []
    below = [point for point in result.points
             if point.offered_qps <= 0.75 * result.nominal_capacity_qps]
    above = [point for point in result.points
             if point.offered_qps >= 1.5 * result.nominal_capacity_qps]
    if not below or not above:
        violations.append("sweep does not straddle the nominal capacity")
        return violations
    if not all(point.loss_rate < 0.01 for point in below):
        violations.append("loss below 75% of capacity should be ~0")
    if not all(point.loss_rate > 0.05 for point in above):
        violations.append("well beyond capacity, loss should be material")
    if not max(point.p95_ms for point in above) > \
            5 * max(point.p95_ms for point in below):
        violations.append("queueing blow-up not visible in p95")
    for point in above:
        if point.goodput_qps > 1.15 * result.nominal_capacity_qps:
            violations.append(
                f"goodput {point.goodput_qps:.0f} qps exceeds nominal "
                f"capacity — the service model leaked")
    if result.saturation_qps is None:
        violations.append("saturation never observed in the sweep")
    return violations
