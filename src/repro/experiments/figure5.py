"""Figure 5: DNS lookup latency on the LTE testbed for six deployments.

For each deployment, run a series of measured queries with the paper's
dig + tcpdump-at-P-GW methodology and report the mean with min/max error
lines, split into the wireless and resolver components.

Paper values (read off the plot/text) are carried alongside so the
renderer and EXPERIMENTS.md can show paper-vs-measured directly.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple

from repro.core.deployments import (
    DEPLOYMENT_KEYS,
    DEPLOYMENT_LABELS,
    build_testbed,
)
from repro.experiments.report import format_table
from repro.measure.runner import measure_deployment_queries
from repro.measure.stats import SummaryStats, summarize
from repro.runtime import Experiment, Param

DEFAULT_QUERIES = 40

#: Mean lookup latency per bar as published (ms).
PAPER_MEANS: Dict[str, float] = {
    "mec-ldns-mec-cdns": 14.4,
    "mec-ldns-lan-cdns": 19.4,
    "mec-ldns-wan-cdns": 60.9,
    "lan-ldns": 114.6,
    "google-dns": 112.5,
    "cloudflare-dns": 128.4,
}


class Figure5Row(NamedTuple):
    key: str
    label: str
    latency: SummaryStats
    wireless: SummaryStats
    resolver: SummaryStats
    paper_mean: float


class Figure5Result(NamedTuple):
    rows: List[Figure5Row]
    queries: int

    def means(self) -> Dict[str, float]:
        """Deployment key -> mean lookup latency in ms."""
        return {row.key: row.latency.mean for row in self.rows}

    def row(self, key: str) -> Figure5Row:
        """The row with the given key; raises KeyError if absent."""
        for row in self.rows:
            if row.key == key:
                return row
        raise KeyError(key)

    def render_chart(self, width: int = 46) -> str:
        """A horizontal bar chart shaped like the paper's Figure 5.

        Each bar splits into the wireless segment (``=``) and the
        resolver segment (``#``); ``|`` marks min/max whiskers scaled to
        the same axis.
        """
        scale_max = max(row.latency.maximum for row in self.rows)
        label_width = max(len(row.label) for row in self.rows)
        lines = ["Figure 5 (chart): '=' wireless, '#' resolver, "
                 "'|' min/max"]
        for row in self.rows:
            wireless_cells = round(width * row.wireless.mean / scale_max)
            resolver_cells = round(width * row.resolver.mean / scale_max)
            lo = round(width * row.latency.minimum / scale_max)
            hi = min(round(width * row.latency.maximum / scale_max),
                     width - 1)
            bar = list("=" * wireless_cells + "#" * resolver_cells)
            bar.extend(" " * (width - len(bar)))
            for marker in (lo, hi):
                if 0 <= marker < width and bar[marker] == " ":
                    bar[marker] = "|"
            lines.append(f"{row.label.ljust(label_width)} "
                         f"{''.join(bar)} {row.latency.mean:6.1f} ms")
        return "\n".join(lines)

    def render(self) -> str:
        """Render the paper-comparable text output."""
        table_rows = []
        for row in self.rows:
            table_rows.append((
                row.label,
                f"{row.latency.mean:.1f}",
                f"{row.paper_mean:.1f}",
                f"{row.latency.minimum:.1f}",
                f"{row.latency.maximum:.1f}",
                f"{row.wireless.mean:.1f}",
                f"{row.resolver.mean:.1f}"))
        return format_table(
            ["Deployment", "mean ms", "paper ms", "min", "max",
             "wireless", "resolver"],
            table_rows,
            title=(f"Figure 5: DNS lookup latency on the LTE testbed "
                   f"({self.queries} queries/bar)"))


class Figure5Experiment(Experiment):
    """One trial per deployment bar.

    Each bar already builds its own testbed from the base seed, so the
    cells keep that seed unchanged and the sharded output matches the
    historical single-process run byte for byte.
    """

    name = "figure5"
    title = "Figure 5: DNS lookup latency on the LTE testbed"
    params = (Param("queries", int, 40, "queries per bar"),
              Param("seed", int, 42, "base RNG seed"),
              Param("ecs", bool, False, "enable ECS", cli=False))

    def trials(self, params):
        return [self.spec(index, seed=int(params["seed"]), key=key,
                          queries=int(params["queries"]),
                          ecs=bool(params["ecs"]))
                for index, key in enumerate(DEPLOYMENT_KEYS)]

    def run_trial(self, spec):
        key = str(spec.value("key"))
        testbed = build_testbed(key, seed=spec.seed,
                                ecs=bool(spec.value("ecs")))
        measurements = measure_deployment_queries(
            testbed, int(spec.value("queries")))
        return Figure5Row(
            key=key,
            label=DEPLOYMENT_LABELS[key],
            latency=summarize([m.latency_ms for m in measurements]),
            wireless=summarize([m.wireless_ms for m in measurements]),
            resolver=summarize([m.resolver_ms for m in measurements]),
            paper_mean=PAPER_MEANS[key])

    def merge(self, params, payloads):
        return Figure5Result(rows=list(payloads),
                             queries=int(params["queries"]))

    def render_result(self, result):
        return result.render_chart() + "\n\n" + result.render()

    def check_shape(self, result):
        return check_shape(result)


EXPERIMENT = Figure5Experiment()


def run(queries: int = DEFAULT_QUERIES, seed: int = 42,
        ecs: bool = False) -> Figure5Result:
    """Run the experiment and return its structured result."""
    return EXPERIMENT.run_serial(queries=queries, seed=seed, ecs=ecs)


def check_shape(result: Figure5Result) -> List[str]:
    """Violated Figure 5 claims (empty = all hold)."""
    violations: List[str] = []
    means = result.means()
    order = ["mec-ldns-mec-cdns", "mec-ldns-lan-cdns", "mec-ldns-wan-cdns"]
    for earlier, later in zip(order, order[1:]):
        if not means[earlier] < means[later]:
            violations.append(f"{earlier} not faster than {later}")
    for key in ("mec-ldns-mec-cdns", "mec-ldns-lan-cdns"):
        if means[key] >= 20:
            violations.append(f"{key} misses the 20ms envelope "
                              f"({means[key]:.1f}ms)")
    for key in ("mec-ldns-wan-cdns", "lan-ldns", "google-dns",
                "cloudflare-dns"):
        if means[key] <= 20:
            violations.append(f"{key} unexpectedly under 20ms")
    gap = means["mec-ldns-lan-cdns"] - means["mec-ldns-mec-cdns"]
    if not 3 <= gap <= 8:
        violations.append(f"MEC vs LAN C-DNS gap {gap:.1f}ms not ~5ms")
    speedup = max(means[k] for k in ("lan-ldns", "google-dns",
                                     "cloudflare-dns")) / \
        means["mec-ldns-mec-cdns"]
    if speedup < 7.5:
        violations.append(f"best-case speedup {speedup:.1f}x below ~9x")
    mec_row = result.row("mec-ldns-mec-cdns")
    if mec_row.wireless.mean / mec_row.latency.mean < 0.6:
        violations.append("wireless leg does not dominate the MEC bar")
    return violations
