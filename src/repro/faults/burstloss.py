"""Gilbert–Elliott two-state burst-loss model.

The i.i.d. per-traversal loss on :class:`~repro.netsim.link.Link` cannot
express what LTE radio links actually do under interference: losses come
in *bursts*.  The classic Gilbert–Elliott chain models this with a Good
and a Bad state; each packet traversal first steps the chain, then drops
with the loss probability of the current state.  With ``p_enter`` small
and ``p_exit`` moderate, long loss-free stretches alternate with short
windows where almost everything dies — exactly the pattern that defeats
a fixed-timeout retry loop and motivates backoff + hedging.

Installed on a link as ``link.loss_model`` (usually via
:meth:`repro.faults.FaultPlan.burst_loss`), it *replaces* the i.i.d.
draw while present.  State advances per traversal and all draws come
from the link's seeded RNG stream, so runs are reproducible.
"""

from __future__ import annotations

import random


class GilbertElliott:
    """Two-state Markov loss process with per-state loss probabilities.

    ``p_enter``: P(Good -> Bad) per traversal; ``p_exit``: P(Bad -> Good)
    per traversal; ``bad_loss`` / ``good_loss``: drop probability while in
    each state.  Mean burst length is ``1 / p_exit`` traversals.
    """

    def __init__(self, p_enter: float, p_exit: float,
                 bad_loss: float = 1.0, good_loss: float = 0.0) -> None:
        for label, value in (("p_enter", p_enter), ("p_exit", p_exit)):
            if not 0 < value <= 1:
                raise ValueError(f"{label} must be in (0, 1], got {value}")
        for label, value in (("bad_loss", bad_loss), ("good_loss", good_loss)):
            if not 0 <= value <= 1:
                raise ValueError(f"{label} must be in [0, 1], got {value}")
        self.p_enter = p_enter
        self.p_exit = p_exit
        self.bad_loss = bad_loss
        self.good_loss = good_loss
        self.in_bad_state = False
        self.traversals = 0
        self.losses = 0
        self.bursts_entered = 0

    def lost(self, rng: random.Random) -> bool:
        """Step the chain for one traversal; True if the packet drops."""
        if self.in_bad_state:
            if rng.random() < self.p_exit:
                self.in_bad_state = False
        elif rng.random() < self.p_enter:
            self.in_bad_state = True
            self.bursts_entered += 1
        self.traversals += 1
        loss = self.bad_loss if self.in_bad_state else self.good_loss
        if loss and rng.random() < loss:
            self.losses += 1
            return True
        return False

    @property
    def stationary_loss(self) -> float:
        """Long-run loss fraction implied by the chain parameters."""
        fraction_bad = self.p_enter / (self.p_enter + self.p_exit)
        return (fraction_bad * self.bad_loss
                + (1 - fraction_bad) * self.good_loss)

    @property
    def mean_burst_traversals(self) -> float:
        """Expected traversals spent in the Bad state per burst."""
        return 1.0 / self.p_exit

    def __repr__(self) -> str:
        state = "bad" if self.in_bad_state else "good"
        return (f"GilbertElliott(p_enter={self.p_enter}, "
                f"p_exit={self.p_exit}, bad_loss={self.bad_loss}, "
                f"state={state}, {self.losses}/{self.traversals} lost)")
