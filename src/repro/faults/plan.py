"""Declarative fault plans and the injector that replays them.

A :class:`FaultPlan` is a schedule of timed fault events — server
crashes and restarts, brownouts, link flaps, loss degradation, burst
loss, partitions — built with chainable helper methods.  A
:class:`FaultInjector` binds the plan to a live
:class:`~repro.netsim.network.Network` and schedules every event on the
simulator clock.  Nothing in this module draws randomness of its own:
event times are fixed by the plan and any stochastic loss flows from the
network's seeded link-delay stream, so the same seed replays the same
fault timeline byte for byte (the injector keeps the proof in
:attr:`FaultInjector.timeline`).

The paper's §3 resilience arguments — fall back to the provider's L-DNS
under high ingress, survive DoS on MEC components — are only testable
against a substrate that can misbehave on schedule; this module is that
substrate.  The hooks it drives (``Host.down``, ``Host.brownout_ms``,
``Link.down``, ``Link.extra_loss``, ``Link.loss_model``,
``Network.partition``) are all no-fault-defaulted attributes, so an
uninstalled plan costs nothing.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence

from repro.errors import SimulationError
from repro.faults.burstloss import GilbertElliott
from repro.netsim.network import Network


class FaultEvent(NamedTuple):
    """One scheduled fault action."""

    at_ms: float
    kind: str          # e.g. "host-down", "link-up", "partition-on"
    target: str        # human-readable target ("host x", "link a<->b")
    fault_id: int      # pairs -on/-off events of the same fault
    params: dict

    def describe(self) -> str:
        """Human-readable one-liner used in injector timelines."""
        return f"{self.kind} {self.target}"


class FaultPlan:
    """A reusable, network-independent schedule of fault events."""

    def __init__(self) -> None:
        self._events: List[FaultEvent] = []
        self._next_fault_id = 0

    @property
    def events(self) -> List[FaultEvent]:
        """Events in firing order (time, then insertion order)."""
        return sorted(self._events,
                      key=lambda event: (event.at_ms, event.fault_id))

    def __len__(self) -> int:
        return len(self._events)

    # -- builders ---------------------------------------------------------------

    def _add(self, at_ms: float, kind: str, target: str, fault_id: int,
             **params) -> None:
        if at_ms < 0:
            raise ValueError(f"fault time {at_ms} must be >= 0")
        self._events.append(FaultEvent(at_ms, kind, target, fault_id, params))

    def _allocate(self) -> int:
        self._next_fault_id += 1
        return self._next_fault_id

    def crash_host(self, host: str, at_ms: float,
                   duration_ms: Optional[float] = None) -> "FaultPlan":
        """Crash ``host`` at ``at_ms``; restart after ``duration_ms``."""
        fault = self._allocate()
        self._add(at_ms, "host-down", f"host {host}", fault, host=host)
        if duration_ms is not None:
            self._add(at_ms + duration_ms, "host-up", f"host {host}", fault,
                      host=host)
        return self

    def brownout_host(self, host: str, at_ms: float, slow_ms: float,
                      duration_ms: Optional[float] = None) -> "FaultPlan":
        """Make ``host`` answer ``slow_ms`` late (up but degraded)."""
        if slow_ms <= 0:
            raise ValueError(f"brownout delay {slow_ms} must be positive")
        fault = self._allocate()
        self._add(at_ms, "brownout-on", f"host {host}", fault,
                  host=host, slow_ms=slow_ms)
        if duration_ms is not None:
            self._add(at_ms + duration_ms, "brownout-off", f"host {host}",
                      fault, host=host)
        return self

    def link_down(self, a: str, b: str, at_ms: float,
                  duration_ms: Optional[float] = None) -> "FaultPlan":
        """Black-hole the ``a``-``b`` link; restore after ``duration_ms``."""
        fault = self._allocate()
        self._add(at_ms, "link-down", f"link {a}<->{b}", fault, a=a, b=b)
        if duration_ms is not None:
            self._add(at_ms + duration_ms, "link-up", f"link {a}<->{b}",
                      fault, a=a, b=b)
        return self

    def flap_link(self, a: str, b: str, at_ms: float, down_ms: float,
                  up_ms: float, cycles: int) -> "FaultPlan":
        """``cycles`` down/up oscillations starting at ``at_ms``."""
        if cycles < 1:
            raise ValueError(f"flap cycles {cycles} must be >= 1")
        when = at_ms
        for _ in range(cycles):
            self.link_down(a, b, when, duration_ms=down_ms)
            when += down_ms + up_ms
        return self

    def degrade_link(self, a: str, b: str, at_ms: float, extra_loss: float,
                     duration_ms: Optional[float] = None) -> "FaultPlan":
        """Add i.i.d. loss to a link (radio interference, congestion)."""
        if not 0 < extra_loss < 1:
            raise ValueError(f"extra loss {extra_loss} out of (0, 1)")
        fault = self._allocate()
        self._add(at_ms, "degrade-on", f"link {a}<->{b}", fault,
                  a=a, b=b, extra_loss=extra_loss)
        if duration_ms is not None:
            self._add(at_ms + duration_ms, "degrade-off", f"link {a}<->{b}",
                      fault, a=a, b=b)
        return self

    def burst_loss(self, a: str, b: str, at_ms: float,
                   duration_ms: Optional[float] = None,
                   p_enter: float = 0.02, p_exit: float = 0.25,
                   bad_loss: float = 0.95,
                   good_loss: float = 0.0) -> "FaultPlan":
        """Install a Gilbert–Elliott burst-loss process on a link."""
        GilbertElliott(p_enter, p_exit, bad_loss, good_loss)  # validate now
        fault = self._allocate()
        self._add(at_ms, "burst-on", f"link {a}<->{b}", fault,
                  a=a, b=b, p_enter=p_enter, p_exit=p_exit,
                  bad_loss=bad_loss, good_loss=good_loss)
        if duration_ms is not None:
            self._add(at_ms + duration_ms, "burst-off", f"link {a}<->{b}",
                      fault, a=a, b=b)
        return self

    def partition(self, group_a: Sequence[str], at_ms: float,
                  duration_ms: Optional[float] = None,
                  group_b: Optional[Sequence[str]] = None) -> "FaultPlan":
        """Cut ``group_a`` off from ``group_b`` (default: everything else)."""
        names = sorted(group_a)
        label = (f"partition {{{','.join(names)}}}"
                 + ("" if group_b is None
                    else f" | {{{','.join(sorted(group_b))}}}"))
        fault = self._allocate()
        self._add(at_ms, "partition-on", label, fault,
                  group_a=list(group_a),
                  group_b=None if group_b is None else list(group_b))
        if duration_ms is not None:
            self._add(at_ms + duration_ms, "partition-off", label, fault)
        return self


class FaultInjector:
    """Binds a :class:`FaultPlan` to a network and replays it."""

    def __init__(self, network: Network, plan: FaultPlan) -> None:
        self.network = network
        self.plan = plan
        self.installed = False
        self.events_fired = 0
        #: Chronological proof of what happened: "t=<ms> <kind> <target>"
        #: lines, appended as each event fires.  Two runs with the same
        #: seed and plan produce identical timelines.
        self.timeline: List[str] = []
        self._partition_tokens: Dict[int, object] = {}
        self._loss_models: Dict[int, GilbertElliott] = {}

    def install(self) -> "FaultInjector":
        """Schedule every plan event on the simulator clock."""
        if self.installed:
            raise SimulationError("fault plan already installed")
        self.installed = True
        for event in self.plan.events:
            self.network.sim.call_at(
                event.at_ms, lambda ev=event: self._fire(ev))
        return self

    def loss_model(self, fault_id: int) -> Optional[GilbertElliott]:
        """The live burst-loss chain a burst-on event installed."""
        return self._loss_models.get(fault_id)

    # -- event dispatch -----------------------------------------------------------

    def _fire(self, event: FaultEvent) -> None:
        handler = getattr(self, "_apply_" + event.kind.replace("-", "_"))
        handler(event)
        self.events_fired += 1
        self.timeline.append(
            f"t={self.network.sim.now:.3f} {event.describe()}")
        tel = self.network.telemetry
        if tel is not None:
            tel.metrics.counter("repro_faults_fired_total",
                                "fault-plan events applied").inc(
                                    kind=event.kind)
            tel.tracer.event("fault", "faults", "fault-injector",
                             kind=event.kind, detail=event.describe())
            tel.timeseries.annotate(self.network.sim.now, "fault",
                                    detail=event.describe(),
                                    scope="fault-injector")

    def _apply_host_down(self, event: FaultEvent) -> None:
        self.network.host(event.params["host"]).down = True

    def _apply_host_up(self, event: FaultEvent) -> None:
        self.network.host(event.params["host"]).down = False

    def _apply_brownout_on(self, event: FaultEvent) -> None:
        host = self.network.host(event.params["host"])
        host.brownout_ms = event.params["slow_ms"]

    def _apply_brownout_off(self, event: FaultEvent) -> None:
        self.network.host(event.params["host"]).brownout_ms = 0.0

    def _apply_link_down(self, event: FaultEvent) -> None:
        self._link(event).down = True

    def _apply_link_up(self, event: FaultEvent) -> None:
        self._link(event).down = False

    def _apply_degrade_on(self, event: FaultEvent) -> None:
        self._link(event).extra_loss = event.params["extra_loss"]

    def _apply_degrade_off(self, event: FaultEvent) -> None:
        self._link(event).extra_loss = 0.0

    def _apply_burst_on(self, event: FaultEvent) -> None:
        model = GilbertElliott(event.params["p_enter"],
                               event.params["p_exit"],
                               event.params["bad_loss"],
                               event.params["good_loss"])
        self._loss_models[event.fault_id] = model
        self._link(event).loss_model = model

    def _apply_burst_off(self, event: FaultEvent) -> None:
        self._link(event).loss_model = None

    def _apply_partition_on(self, event: FaultEvent) -> None:
        token = self.network.partition(event.params["group_a"],
                                       event.params["group_b"])
        self._partition_tokens[event.fault_id] = token

    def _apply_partition_off(self, event: FaultEvent) -> None:
        token = self._partition_tokens.pop(event.fault_id, None)
        if token is None:
            raise SimulationError(
                f"partition-off without a matching partition-on "
                f"(fault {event.fault_id})")
        self.network.heal_partition(token)

    def _link(self, event: FaultEvent):
        return self.network.link_between(event.params["a"], event.params["b"])

    def __repr__(self) -> str:
        return (f"FaultInjector({len(self.plan)} events, "
                f"fired={self.events_fired}, installed={self.installed})")


def inject(network: Network, plan: FaultPlan) -> FaultInjector:
    """Install ``plan`` on ``network``; returns the live injector."""
    return FaultInjector(network, plan).install()
