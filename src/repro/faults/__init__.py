"""Deterministic fault injection for the simulated testbed.

Build a :class:`FaultPlan` (crashes, brownouts, link flaps, burst loss,
partitions), then :func:`inject` it into a live network; the returned
:class:`FaultInjector` records the fired timeline for reproducibility
checks.  See :mod:`repro.faults.plan` for the event model and
:mod:`repro.faults.burstloss` for the Gilbert–Elliott loss chain.
"""

from repro.faults.burstloss import GilbertElliott
from repro.faults.plan import FaultEvent, FaultInjector, FaultPlan, inject

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "GilbertElliott",
    "inject",
]
