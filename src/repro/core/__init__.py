"""The paper's contribution: MEC-CDN assembly and evaluated deployments.

* :mod:`repro.core.meccdn` — :class:`MecCdnSite` wires the orchestrator,
  CoreDNS L-DNS (split namespace, stub domain), the ATC-style C-DNS, and
  cache pods into the Figure 4 system.
* :mod:`repro.core.deployments` — the LTE testbed and the six DNS
  deployment options evaluated in Figure 5.
* :mod:`repro.core.fallback` — the client-side strategies for non-MEC
  names: multicast race and forward-on-timeout.
"""

from repro.core.meccdn import MecCdnSite
from repro.core.deployments import (
    DEPLOYMENT_KEYS,
    DEPLOYMENT_LABELS,
    ResilienceConfig,
    Testbed,
    add_provider_ldns,
    build_testbed,
)
from repro.core.fallback import FallbackClient, FallbackResult
from repro.core.resolution import EdgeAwareClient, TieredResolution

__all__ = [
    "EdgeAwareClient",
    "TieredResolution",
    "MecCdnSite",
    "DEPLOYMENT_KEYS",
    "DEPLOYMENT_LABELS",
    "ResilienceConfig",
    "Testbed",
    "add_provider_ldns",
    "build_testbed",
    "FallbackClient",
    "FallbackResult",
]
