"""Client-side fallback strategies for non-MEC names.

§3 of the paper: "have DNS requests be multicast to both MEC DNS and the
network's L-DNS, or even be forwarded to L-DNS on timeout from MEC DNS".
Both strategies are implemented on the client:

* :meth:`FallbackClient.race` — send to every resolver at once; the first
  successful answer wins (the "multicast" variant);
* :meth:`FallbackClient.timeout_fallback` — try the MEC DNS with a short
  timeout, then fall back to the provider's L-DNS.

Results record which resolver won and the overhead, feeding the ablation
benchmark for the paper's "adds only a small overhead to CDN accesses for
non-latency-critical content" claim.
"""

from __future__ import annotations

from typing import Generator, List, NamedTuple, Optional

from repro.dnswire.message import Message, cached_wire, make_query
from repro.dnswire.name import Name
from repro.dnswire.types import Rcode, RecordType
from repro.errors import QueryTimeout, WireFormatError
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.packet import Endpoint
from repro.netsim.socket import UdpSocket


class FallbackResult(NamedTuple):
    """One resolution through a fallback strategy."""

    name: Name
    addresses: List[str]
    status: str
    winner: Endpoint
    latency_ms: float
    used_fallback: bool


class FallbackClient:
    """Resolves names against a MEC DNS with a provider L-DNS backstop."""

    def __init__(self, network: Network, host: Host, mec_dns: Endpoint,
                 provider_ldns: Endpoint,
                 mec_timeout: float = 30.0,
                 total_timeout: float = 3000.0) -> None:
        self.network = network
        self.host = host
        self.mec_dns = mec_dns
        self.provider_ldns = provider_ldns
        self.mec_timeout = mec_timeout
        self.total_timeout = total_timeout
        self._rng = network.streams.stream(f"fallback:{host.name}")
        self.mec_wins = 0
        self.provider_wins = 0

    # -- strategies -------------------------------------------------------------

    def race(self, name: Name,
             rtype: RecordType = RecordType.A) -> Generator:
        """Multicast: query both resolvers; first *useful* answer wins.

        A REFUSED from the MEC DNS (a non-public name under the split
        namespace) is not a useful answer, so the provider's response is
        awaited instead.
        """
        started = self.network.sim.now
        attempts = [
            self.network.sim.spawn(
                self._one_query(name, rtype, server))
            for server in (self.mec_dns, self.provider_ldns)
        ]
        winner = yield self.network.sim.first_success(attempts)
        server, response = winner
        self._count_win(server)
        return self._result(name, response, server, started,
                            used_fallback=server == self.provider_ldns)

    def timeout_fallback(self, name: Name,
                         rtype: RecordType = RecordType.A) -> Generator:
        """Try the MEC DNS first; on timeout/refusal ask the provider."""
        started = self.network.sim.now
        try:
            server, response = yield from self._one_query(
                name, rtype, self.mec_dns, timeout=self.mec_timeout)
            self._count_win(server)
            return self._result(name, response, server, started,
                                used_fallback=False)
        except (QueryTimeout, _NotUseful):
            pass
        server, response = yield from self._one_query(
            name, rtype, self.provider_ldns)
        self._count_win(server)
        return self._result(name, response, server, started,
                            used_fallback=True)

    # -- internals -------------------------------------------------------------------

    def _one_query(self, name: Name, rtype: RecordType, server: Endpoint,
                   timeout: Optional[float] = None) -> Generator:
        """Process returning (server, response); fails on useless answers."""
        sock = UdpSocket(self.host)
        query = make_query(name, rtype,
                           msg_id=self._rng.randrange(1, 0xFFFF))
        try:
            reply = yield sock.request(
                cached_wire(query), server,
                timeout if timeout is not None else self.total_timeout)
        finally:
            sock.close()
        try:
            view = reply.claim_view()
            response = view if isinstance(view, Message) \
                else Message.from_wire(reply.payload)
        except WireFormatError as error:
            raise _NotUseful(str(error)) from error
        if response.rcode in (Rcode.REFUSED, Rcode.SERVFAIL):
            raise _NotUseful(f"{server} answered {response.rcode.name}")
        return server, response

    def _count_win(self, server: Endpoint) -> None:
        if server == self.mec_dns:
            self.mec_wins += 1
        else:
            self.provider_wins += 1

    def _result(self, name: Name, response: Message, server: Endpoint,
                started: float, used_fallback: bool) -> FallbackResult:
        return FallbackResult(
            name=name,
            addresses=response.answer_addresses(),
            status=response.rcode.name,
            winner=server,
            latency_ms=self.network.sim.now - started,
            used_fallback=used_fallback)


class _NotUseful(QueryTimeout):
    """An answer that does not settle the query (REFUSED/SERVFAIL/garbage).

    Subclasses QueryTimeout so both strategies treat it as "keep waiting
    for the other resolver".
    """
