"""The LTE testbed and the six DNS deployments of Figure 5.

Topology (one instance per deployment run, all latencies one-way):

    UE ==radio== eNB --s1-- S-GW --s5-- P-GW ---+--- mec nodes (cluster)
                                                +--- lan-cdns   (~2.8 ms)
                                                +--- core L-DNS (~52 ms)
                                                +--- cloud      (~23 ms)
                                                +--- google / cloudflare

Calibration: the paper's Figure 5 bar means are (read off the plot and
the text) roughly 14.4 / 19.4 / 60.9 / 114.6 / 112.5 / 128.4 ms, with the
wireless LTE leg contributing ~10 ms of round trip to every bar and
dominating the MEC bar.  Link constants below are chosen so the simulated
means land near those targets; the claims the reproduction must preserve
are *relative*: the ordering, the ~5 ms MEC-vs-LAN gap, the ~9x
MEC-vs-cloud-DNS gap, and the 20 ms line crossing between the second and
third bars.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from repro.cdn.content import ContentCatalog
from repro.cdn.router import CoverageZone, TrafficRouter
from repro.core.meccdn import MecCdnSite
from repro.dnswire.message import ResourceRecord
from repro.dnswire.name import Name
from repro.dnswire.rdata import A
from repro.dnswire.types import RecordType
from repro.mobile.core import EvolvedPacketCore
from repro.mobile.profiles import AccessProfile
from repro.mobile.ue import UserEquipment
from repro.netsim.latency import Constant, lognormal_from_median_p95
from repro.netsim.network import Network
from repro.netsim.engine import Simulator
from repro.netsim.packet import Endpoint
from repro.netsim.rand import RandomStreams
from repro.resolver.cache import DnsCache
from repro.resolver.forwarder import ForwardingResolver
from repro.resolver.retry import RetryPolicy

#: The six Figure 5 bars, in paper order.
DEPLOYMENT_KEYS = (
    "mec-ldns-mec-cdns",
    "mec-ldns-lan-cdns",
    "mec-ldns-wan-cdns",
    "lan-ldns",
    "google-dns",
    "cloudflare-dns",
)

DEPLOYMENT_LABELS: Dict[str, str] = {
    "mec-ldns-mec-cdns": "MEC L-DNS w/ MEC C-DNS",
    "mec-ldns-lan-cdns": "MEC L-DNS w/ LAN C-DNS",
    "mec-ldns-wan-cdns": "MEC L-DNS w/ WAN C-DNS",
    "lan-ldns": "LAN L-DNS",
    "google-dns": "Google DNS",
    "cloudflare-dns": "Cloudflare DNS",
}

#: The delivery domain and content name from the paper's prototype (§4).
CDN_DOMAIN = Name("mycdn.ciab.test")
QUERY_NAME = Name("video.demo1.mycdn.ciab.test")


def _attach_ambient_telemetry(network: Network) -> None:
    """Wire the ambient telemetry (if any) into a freshly built network.

    ``repro.cli --trace-out/--metrics-out`` installs a default facade;
    experiments build testbeds through here, so the whole stack reports
    without every builder growing a telemetry parameter.  A no-op when
    no default is installed.
    """
    from repro import telemetry
    tel = telemetry.get_default()
    if tel is not None:
        tel.attach(network)

#: srsLTE testbed radio profile: ~5 ms one-way UE->eNB with a moderate
#: tail, so the full UE<->P-GW wireless round trip is ~10 ms, matching
#: the paper's "approx. 10 ms" wireless component.
TESTBED_LTE = AccessProfile(
    name="testbed-lte",
    radio=lognormal_from_median_p95(4.2, 6.5, shift=2.0),
    access_backhaul=Constant(0.5),
    description="srsLTE B200mini testbed radio",
)

#: A 5G variant for the paper's "future 5G deployments will drastically
#: reduce this time" projection.
TESTBED_5G = AccessProfile(
    name="testbed-5g",
    radio=lognormal_from_median_p95(0.8, 1.6, shift=0.3),
    access_backhaul=Constant(0.2),
    description="hypothetical 5G NR swap-in for the same testbed",
)

# One-way WAN/LAN latencies (ms), tuned against the Figure 5 targets.
LAN_CDNS_LATENCY = lognormal_from_median_p95(2.6, 4.5, shift=1.0)
WAN_CDNS_LATENCY = lognormal_from_median_p95(23.0, 33.0, shift=12.0)
CARRIER_LDNS_LATENCY = lognormal_from_median_p95(50.7, 73.0, shift=30.0)
GOOGLE_DNS_LATENCY = lognormal_from_median_p95(49.7, 71.0, shift=30.0)
CLOUDFLARE_DNS_LATENCY = lognormal_from_median_p95(57.0, 86.0, shift=33.0)

#: Extra per-query processing cost when ECS is enabled (option parsing,
#: scope computation) at each DNS hop.
ECS_PROCESSING_OVERHEAD_MS = 0.15


class ResilienceConfig(NamedTuple):
    """Hardening knobs for running a deployment under injected faults.

    The Figure 5 defaults are deliberately fragile: the MEC C-DNS
    answers with TTL 0 (never cached, every query routed) and resolvers
    give a failing upstream one 2-second shot.  This bundle makes the
    resilient variant of the chaos experiment concrete:

    * ``answer_ttl`` > 0 lets the CoreDNS cache hold the C-DNS answer
      briefly, giving serve-stale something to serve;
    * ``serve_stale`` turns on RFC 8767 at the resolver caches;
    * ``coredns_upstream_timeout`` shortens the L-DNS's upstream wait so
      a dead C-DNS is detected inside the client's patience, not after;
    * ``upstream_retry_policy`` optionally adds backoff retries at the
      forwarding hops.
    """

    serve_stale: bool = True
    answer_ttl: int = 2
    coredns_upstream_timeout: Optional[float] = 300.0
    upstream_retry_policy: Optional[RetryPolicy] = None


class Testbed(NamedTuple):
    """One instantiated deployment, ready to be measured."""

    key: str
    label: str
    sim: Simulator
    network: Network
    ue: UserEquipment
    epc: EvolvedPacketCore
    query_name: Name
    #: Host name where the tcpdump-analog trace should attach (the P-GW).
    gateway_host: str
    #: The MEC site, present for the three MEC L-DNS deployments.
    mec_site: Optional[MecCdnSite]
    #: The address the query must resolve to (the MEC edge cache), used
    #: by the ECS experiment's correctness check where applicable.
    expected_cache_ips: List[str]


def build_testbed(deployment: str, seed: int = 0, ecs: bool = False,
                  profile: AccessProfile = TESTBED_LTE,
                  resilience: Optional[ResilienceConfig] = None) -> Testbed:
    """Build the testbed configured for one Figure 5 deployment.

    ``resilience`` hardens the deployment for fault-injection runs; the
    default ``None`` reproduces the Figure 5 configuration exactly.
    """
    if deployment not in DEPLOYMENT_KEYS:
        raise ValueError(f"unknown deployment {deployment!r}; "
                         f"expected one of {DEPLOYMENT_KEYS}")
    sim = Simulator()
    network = Network(sim, RandomStreams(seed))
    _attach_ambient_telemetry(network)

    # Mobile access: UE == eNB -- S-GW -- P-GW.
    epc = EvolvedPacketCore(
        network, "lte", profile,
        sgw_ip="10.40.0.2", pgw_ip="10.40.0.1",
        public_ips=["198.51.100.1"])
    enb = epc.add_base_station("enb-1", "10.40.1.1")
    ue = UserEquipment(network, "ue-1", "10.45.0.2")
    enb.attach(ue)

    # MEC cluster nodes hang off the P-GW LAN (the paper's collocated
    # machines managed by k8s).
    nodes = []
    for index in range(3):
        node = network.add_host(f"mec-node-{index}", f"10.40.2.{10 + index}")
        network.add_link(node.name, epc.pgw.name, Constant(0.25),
                         name=f"mec-lan-{index}")
        nodes.append(node)
    for a, b in ((0, 1), (1, 2)):
        network.add_link(nodes[a].name, nodes[b].name, Constant(0.2),
                         name=f"mec-fabric-{a}{b}")

    catalog = ContentCatalog()
    catalog.add_object(QUERY_NAME, "/seg1.ts", 500_000)

    processing = (Constant(0.4 + ECS_PROCESSING_OVERHEAD_MS) if ecs
                  else Constant(0.4))

    builder = _BUILDERS[deployment]
    mec_site, dns_target, expected_ips = builder(
        network, epc, nodes, catalog, ecs, processing, resilience)
    ue.switch_dns(dns_target)
    return Testbed(
        key=deployment,
        label=DEPLOYMENT_LABELS[deployment],
        sim=sim, network=network, ue=ue, epc=epc,
        query_name=QUERY_NAME,
        gateway_host=epc.gateway_name,
        mec_site=mec_site,
        expected_cache_ips=expected_ips)


# ---------------------------------------------------------------------------
# Per-deployment builders
# ---------------------------------------------------------------------------

def _build_mec_site(network, nodes, catalog, ecs, processing,
                    resilience=None,
                    cdns_endpoint_override=None) -> MecCdnSite:
    kwargs = {}
    answer_ttl = 0  # ATC-style: route every query, never pin a cache
    if resilience is not None:
        answer_ttl = resilience.answer_ttl
        kwargs = dict(
            serve_stale=resilience.serve_stale,
            upstream_retry_policy=resilience.upstream_retry_policy,
            coredns_upstream_timeout=resilience.coredns_upstream_timeout)
    return MecCdnSite(
        network, "edge1", nodes, catalog,
        cdn_domain=CDN_DOMAIN,
        client_networks=["10.45.0.0/16", "10.40.0.0/16", "10.233.64.0/18"],
        cache_count=2,
        warm_caches=True,
        ecs_enabled=ecs,
        answer_ttl=answer_ttl,
        ldns_processing_delay=processing,
        cdns_processing_delay=processing,
        cdns_endpoint_override=cdns_endpoint_override,
        **kwargs)


def _external_cdns(network, host_name, ip, link_to, latency, caches, ecs,
                   processing, answer_ttl=0) -> TrafficRouter:
    """A C-DNS outside the cluster (LAN or WAN), as ETSI/3GPP propose."""
    host = network.add_host(host_name, ip)
    network.add_link(host_name, link_to, latency, name=f"link-{host_name}")
    zone = CoverageZone("all", ["0.0.0.0/0"], caches)
    return TrafficRouter(network, host, CDN_DOMAIN, zones=[zone],
                         answer_ttl=answer_ttl, ecs_enabled=ecs,
                         processing_delay=processing)


def _deploy_mec_mec(network, epc, nodes, catalog, ecs, processing,
                    resilience=None):
    site = _build_mec_site(network, nodes, catalog, ecs, processing,
                           resilience)
    return site, site.ldns_endpoint, [c.endpoint.ip for c in site.caches]


def _deploy_mec_lan(network, epc, nodes, catalog, ecs, processing,
                    resilience=None):
    # L-DNS at MEC, C-DNS outside the k8s cluster on the same LAN: the
    # best case of the ETSI/3GPP-style split the paper compares against.
    site = _build_mec_site(network, nodes, catalog, ecs, processing,
                           resilience,
                           cdns_endpoint_override=Endpoint("10.41.0.53", 53))
    _external_cdns(network, "lan-cdns", "10.41.0.53", epc.pgw.name,
                   LAN_CDNS_LATENCY, site.caches, ecs, processing,
                   answer_ttl=0 if resilience is None
                   else resilience.answer_ttl)
    return site, site.ldns_endpoint, [c.endpoint.ip for c in site.caches]


def _deploy_mec_wan(network, epc, nodes, catalog, ecs, processing,
                    resilience=None):
    site = _build_mec_site(network, nodes, catalog, ecs, processing,
                           resilience,
                           cdns_endpoint_override=Endpoint("203.0.113.53", 53))
    _external_cdns(network, "wan-cdns", "203.0.113.53", epc.pgw.name,
                   WAN_CDNS_LATENCY, site.caches, ecs, processing,
                   answer_ttl=0 if resilience is None
                   else resilience.answer_ttl)
    return site, site.ldns_endpoint, [c.endpoint.ip for c in site.caches]


def _warmed_resolver(network, host_name, ip, link_to, latency, processing,
                     cache_answer_ip, resilience=None) -> ForwardingResolver:
    """A resolver with the CDN A record already cached.

    Models the paper's observation that for established CDN domains "the
    A records TTL never expires at L-DNS": the measured latency is the
    path to the resolver plus its lookup, with no upstream traversal.
    """
    host = network.add_host(host_name, ip)
    network.add_link(host_name, link_to, latency, name=f"link-{host_name}")
    kwargs = {}
    if resilience is not None:
        cache = DnsCache(serve_stale=resilience.serve_stale)
        kwargs["retry_policy"] = resilience.upstream_retry_policy
    else:
        cache = DnsCache()
    cache.put_records(
        [ResourceRecord(QUERY_NAME, RecordType.A, 86400, A(cache_answer_ip))],
        now=0.0)
    return ForwardingResolver(network, host,
                              upstreams=[Endpoint("203.0.113.53", 53)],
                              cache=cache, processing_delay=processing,
                              **kwargs)


def _deploy_lan_ldns(network, epc, nodes, catalog, ecs, processing,
                     resilience=None):
    # The operator's L-DNS "connected via LAN behind the core network".
    site = _build_mec_site(network, nodes, catalog, ecs, processing,
                           resilience)
    cache_ip = site.caches[0].endpoint.ip
    resolver = _warmed_resolver(network, "carrier-ldns", "172.20.0.53",
                                epc.pgw.name, CARRIER_LDNS_LATENCY,
                                processing, cache_ip, resilience)
    return site, resolver.endpoint, [cache_ip]


def _deploy_google(network, epc, nodes, catalog, ecs, processing,
                   resilience=None):
    site = _build_mec_site(network, nodes, catalog, ecs, processing,
                           resilience)
    cache_ip = site.caches[0].endpoint.ip
    resolver = _warmed_resolver(network, "google-dns", "8.8.8.8",
                                epc.pgw.name, GOOGLE_DNS_LATENCY,
                                processing, cache_ip, resilience)
    return site, resolver.endpoint, [cache_ip]


def _deploy_cloudflare(network, epc, nodes, catalog, ecs, processing,
                       resilience=None):
    site = _build_mec_site(network, nodes, catalog, ecs, processing,
                           resilience)
    cache_ip = site.caches[0].endpoint.ip
    resolver = _warmed_resolver(network, "cloudflare-dns", "1.1.1.1",
                                epc.pgw.name, CLOUDFLARE_DNS_LATENCY,
                                processing, cache_ip, resilience)
    return site, resolver.endpoint, [cache_ip]


def add_provider_ldns(testbed: Testbed, ip: str = "172.21.0.53",
                      serve_stale: bool = False) -> ForwardingResolver:
    """Attach the carrier's L-DNS behind the core as a fallback target.

    §3's mitigation — "have DNS requests ... be forwarded to L-DNS on
    timeout from MEC DNS" — needs a provider resolver to fall back *to*.
    The MEC deployments don't build one, so fault scenarios add it here:
    a warmed resolver (the paper's never-expiring CDN A record) hanging
    off the P-GW at carrier-L-DNS distance.
    """
    resolver = _warmed_resolver(
        testbed.network, "provider-ldns", ip, testbed.epc.pgw.name,
        CARRIER_LDNS_LATENCY, Constant(0.4),
        testbed.expected_cache_ips[0],
        ResilienceConfig(serve_stale=serve_stale) if serve_stale else None)
    return resolver


def build_custom_cdns_testbed(cdns_one_way_ms: float, seed: int = 0,
                              ecs: bool = False,
                              profile: AccessProfile = TESTBED_LTE) -> Testbed:
    """The MEC-L-DNS testbed with the C-DNS at an arbitrary distance.

    Interpolates between the Figure 5 deployments: ``cdns_one_way_ms`` is
    the one-way latency from the P-GW to the C-DNS host.  Used by the
    envelope-sweep experiment to locate where resolution crosses the
    paper's 20 ms envelope.
    """
    if cdns_one_way_ms < 0:
        raise ValueError("C-DNS distance cannot be negative")
    sim = Simulator()
    network = Network(sim, RandomStreams(seed))
    _attach_ambient_telemetry(network)
    epc = EvolvedPacketCore(
        network, "lte", profile,
        sgw_ip="10.40.0.2", pgw_ip="10.40.0.1",
        public_ips=["198.51.100.1"])
    enb = epc.add_base_station("enb-1", "10.40.1.1")
    ue = UserEquipment(network, "ue-1", "10.45.0.2")
    enb.attach(ue)
    nodes = []
    for index in range(3):
        node = network.add_host(f"mec-node-{index}", f"10.40.2.{10 + index}")
        network.add_link(node.name, epc.pgw.name, Constant(0.25),
                         name=f"mec-lan-{index}")
        nodes.append(node)
    for a, b in ((0, 1), (1, 2)):
        network.add_link(nodes[a].name, nodes[b].name, Constant(0.2),
                         name=f"mec-fabric-{a}{b}")
    catalog = ContentCatalog()
    catalog.add_object(QUERY_NAME, "/seg1.ts", 500_000)
    processing = (Constant(0.4 + ECS_PROCESSING_OVERHEAD_MS) if ecs
                  else Constant(0.4))
    site = _build_mec_site(network, nodes, catalog, ecs, processing,
                           cdns_endpoint_override=Endpoint("203.0.113.53", 53))
    _external_cdns(network, "custom-cdns", "203.0.113.53", epc.pgw.name,
                   Constant(cdns_one_way_ms), site.caches, ecs, processing)
    ue.switch_dns(site.ldns_endpoint)
    return Testbed(
        key=f"custom-cdns-{cdns_one_way_ms}ms",
        label=f"MEC L-DNS w/ C-DNS at {cdns_one_way_ms:.1f}ms",
        sim=sim, network=network, ue=ue, epc=epc,
        query_name=QUERY_NAME,
        gateway_host=epc.gateway_name,
        mec_site=site,
        expected_cache_ips=[cache.endpoint.ip for cache in site.caches])


_BUILDERS = {
    "mec-ldns-mec-cdns": _deploy_mec_mec,
    "mec-ldns-lan-cdns": _deploy_mec_lan,
    "mec-ldns-wan-cdns": _deploy_mec_wan,
    "lan-ldns": _deploy_lan_ldns,
    "google-dns": _deploy_google,
    "cloudflare-dns": _deploy_cloudflare,
}
