"""MecCdnSite: the Figure 4 system assembled on one MEC cluster.

Deployment sequence (mirroring §4 of the paper):

1. an :class:`~repro.mec.cluster.Orchestrator` over the MEC nodes;
2. cache pods for the CDN delivery domain, optionally warmed with the
   domain's content;
3. the C-DNS (ATC Traffic Router analog) as a service with a **fixed
   cluster IP**, so scaling events never move its address;
4. CoreDNS as the MEC L-DNS, with a **stub domain** sending the CDN
   delivery domain to the C-DNS cluster IP and a default forward to the
   provider's L-DNS;
5. a **split namespace**: the delivery domain is registered publicly, the
   cluster namespace stays internal-only.

The result: a UE pointed at the CoreDNS cluster IP resolves CDN content
in a single hop contained at the MEC (steps 1-2 of Figure 4), then
fetches from an edge cache pod.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cdn.cache_server import CacheServer
from repro.cdn.content import ContentCatalog
from repro.cdn.router import CoverageZone, TrafficRouter
from repro.dnswire.name import Name
from repro.mec.cluster import Orchestrator, Pod, Service
from repro.mec.coredns import CoreDnsServer
from repro.mec.namespaces import NamespacePolicy, SplitNamespacePlugin
from repro.netsim.latency import LatencyModel
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.packet import Endpoint
from repro.resolver.retry import RetryPolicy

#: Cluster-internal CIDRs that count as the vRAN's private namespace.
DEFAULT_INTERNAL_NETWORKS = ["10.40.0.0/16", "10.233.64.0/18", "10.96.0.0/16"]


class MecCdnSite:
    """One MEC edge site running the proposed MEC-CDN design."""

    def __init__(self, network: Network, name: str, nodes: List[Host],
                 catalog: ContentCatalog,
                 cdn_domain: Name = Name("mycdn.ciab.test"),
                 client_networks: Optional[List[str]] = None,
                 internal_networks: Optional[List[str]] = None,
                 upstream_ldns: Optional[Endpoint] = None,
                 cache_count: int = 2,
                 warm_caches: bool = True,
                 ecs_enabled: bool = False,
                 answer_ttl: int = 0,
                 enable_coredns_cache: bool = True,
                 namespace_policy: NamespacePolicy = NamespacePolicy.REFUSE,
                 next_tier_cdns: Optional[str] = None,
                 cdns_endpoint_override: Optional[Endpoint] = None,
                 ldns_processing_delay: Optional[LatencyModel] = None,
                 cdns_processing_delay: Optional[LatencyModel] = None,
                 service_cidr: str = "10.96.0.0/16",
                 pod_cidr: str = "10.233.64.0/18",
                 serve_stale: bool = False,
                 upstream_retry_policy: Optional["RetryPolicy"] = None,
                 coredns_upstream_timeout: Optional[float] = None) -> None:
        if not nodes:
            raise ValueError("a MEC site needs at least one node")
        self.network = network
        self.name = name
        self.catalog = catalog
        self.cdn_domain = cdn_domain
        client_networks = client_networks or ["10.45.0.0/16"]
        internal_networks = internal_networks or DEFAULT_INTERNAL_NETWORKS

        # Pod fabric latency calibrated against the paper's testbed: the
        # veth/bridge/kube-proxy path costs a few hundred microseconds.
        from repro.netsim.latency import Constant as _Constant
        self.orchestrator = Orchestrator(network, name,
                                         service_cidr=service_cidr,
                                         pod_cidr=pod_cidr,
                                         fabric_latency=_Constant(0.35))
        for node in nodes:
            self.orchestrator.register_node(node)

        # -- cache pods -------------------------------------------------------
        self.cache_service: Service = self.orchestrator.create_service(
            "cache", namespace="cdn", port=80)
        self.caches: List[CacheServer] = []
        for _ in range(cache_count):
            self.orchestrator.deploy_pod(self.cache_service,
                                         starter=self._start_cache)
        if warm_caches:
            items = catalog.under_domain(cdn_domain)
            for cache in self.caches:
                cache.warm(items)

        # -- C-DNS (Traffic Router) with a fixed cluster IP --------------------
        self.cdns_service: Service = self.orchestrator.create_service(
            "trafficrouter", namespace="cdn", port=53)
        zone_networks = list(client_networks) + list(internal_networks)
        self._edge_zone = CoverageZone(f"{name}-edge", zone_networks,
                                       self.caches)
        self._ecs_enabled = ecs_enabled
        self._answer_ttl = answer_ttl
        self._next_tier_cdns = next_tier_cdns
        self._cdns_processing_delay = cdns_processing_delay
        self.cdns_pod: Pod = self.orchestrator.deploy_pod(
            self.cdns_service, starter=self._start_cdns)
        self.cdns: TrafficRouter = self.cdns_pod.app  # type: ignore[assignment]

        # -- CoreDNS (MEC L-DNS) with split namespace --------------------------
        self.split_namespace = SplitNamespacePlugin(
            internal_networks=internal_networks, policy=namespace_policy)
        self.split_namespace.register_public(cdn_domain)
        self.ldns_service: Service = self.orchestrator.create_service(
            "coredns", namespace="kube-system", port=53)
        cdns_target = cdns_endpoint_override or self.cdns_service.endpoint
        self._coredns_config = {
            "stub_domains": {cdn_domain: cdns_target},
            "upstream": upstream_ldns,
            "enable_cache": enable_coredns_cache,
            "processing_delay": ldns_processing_delay,
            "ecs_inject": ecs_enabled,
            "serve_stale": serve_stale,
            "upstream_retry_policy": upstream_retry_policy,
            "upstream_timeout": coredns_upstream_timeout,
        }
        self.ldns_pod: Pod = self.orchestrator.deploy_pod(
            self.ldns_service, starter=self._start_coredns)
        self.ldns: CoreDnsServer = self.ldns_pod.app  # type: ignore[assignment]

    # -- pod starters -------------------------------------------------------------

    def _start_cache(self, pod: Pod) -> CacheServer:
        cache = CacheServer(self.network, pod.host, self.catalog)
        self.caches.append(cache)
        return cache

    def _start_cdns(self, pod: Pod) -> TrafficRouter:
        kwargs = {}
        if self._cdns_processing_delay is not None:
            kwargs["processing_delay"] = self._cdns_processing_delay
        return TrafficRouter(
            self.network, pod.host, self.cdn_domain,
            zones=[self._edge_zone],
            answer_ttl=self._answer_ttl,
            next_tier=self._next_tier_cdns,
            ecs_enabled=self._ecs_enabled,
            **kwargs)

    def _start_coredns(self, pod: Pod) -> CoreDnsServer:
        config = self._coredns_config
        kwargs = {}
        if config["processing_delay"] is not None:
            kwargs["processing_delay"] = config["processing_delay"]
        server = CoreDnsServer(
            self.network, pod.host, self.orchestrator,
            stub_domains=config["stub_domains"],
            upstream=config["upstream"],
            enable_cache=config["enable_cache"],
            front_plugins=[self.split_namespace],
            forward_ecs=True,
            ecs_inject=config["ecs_inject"],
            serve_stale=config["serve_stale"],
            upstream_retry_policy=config["upstream_retry_policy"],
            **kwargs)
        if config["upstream_timeout"] is not None:
            server.stub.timeout = config["upstream_timeout"]
            if server.forward_plugin is not None:
                server.forward_plugin.timeout = config["upstream_timeout"]
        return server

    # -- public surface --------------------------------------------------------------

    @property
    def ldns_endpoint(self) -> Endpoint:
        """What UEs are pointed at: the CoreDNS service cluster IP."""
        return self.ldns_service.endpoint

    @property
    def cdns_endpoint(self) -> Endpoint:
        return self.cdns_service.endpoint

    def publish_domain(self, domain: Name, cdns: Endpoint) -> None:
        """Onboard another CDN customer's delivery domain at this site."""
        self.split_namespace.register_public(domain)
        self.ldns.add_stub_domain(domain, cdns)

    def __repr__(self) -> str:
        return (f"MecCdnSite({self.name}, domain={self.cdn_domain}, "
                f"{len(self.caches)} caches, ldns={self.ldns_endpoint})")
