"""Tier-aware resolution: following C-DNS next-tier referrals.

The paper's §3 (P2): "In cases where the content is not available at
MEC-CDN, C-DNS simply returns the address of another C-DNS running at a
different CDN tier, e.g., a mid-tier running alongside the mobile network
core, or a far-tier running in the cloud."

A plain stub resolver would treat that address as the content server.
:class:`EdgeAwareClient` understands the referral marker the traffic
router attaches (see :func:`repro.cdn.router.referral_marker`): when a
response says "this address is another C-DNS", it re-issues the query
there, walking down the tier chain until a cache address comes back.
Legacy clients ignore the marker and still work — they just talk to the
next router over HTTP-ish redirects in real ATC; here the marker keeps
the whole chain in DNS.
"""

from __future__ import annotations

from typing import Generator, List, NamedTuple, Optional

from repro.cdn.router import is_referral
from repro.dnswire.name import Name
from repro.dnswire.types import RecordType
from repro.errors import ResolutionError
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.packet import Endpoint
from repro.resolver.stub import StubResolver

DEFAULT_MAX_REFERRALS = 4


class TieredResolution(NamedTuple):
    """The outcome of a tier-following resolution."""

    name: Name
    addresses: List[str]
    status: str
    #: Every server queried, in order (L-DNS first, then each C-DNS tier).
    servers_queried: List[Endpoint]
    referrals_followed: int
    latency_ms: float

    @property
    def resolved_at_edge(self) -> bool:
        return self.referrals_followed == 0


class EdgeAwareClient:
    """Resolves CDN names across tiers, starting from the MEC L-DNS."""

    def __init__(self, network: Network, host: Host, ldns: Endpoint,
                 max_referrals: int = DEFAULT_MAX_REFERRALS,
                 timeout: float = 3000.0) -> None:
        self.network = network
        self.host = host
        self.ldns = ldns
        self.max_referrals = max_referrals
        self.stub = StubResolver(network, host, ldns, timeout=timeout)
        self.resolutions = 0
        self.referrals_followed = 0

    def resolve(self, name: Name,
                rtype: RecordType = RecordType.A, ctx=None) -> Generator:
        """Process returning a :class:`TieredResolution`.

        Raises :class:`~repro.errors.ResolutionError` if the referral
        chain exceeds ``max_referrals`` (a routing loop or a
        mis-configured tier stack).
        """
        started = self.network.sim.now
        self.resolutions += 1
        tel = self.network.telemetry
        span = None
        if tel is not None:
            span = tel.tracer.begin("resolution.tiered", "resolver",
                                    self.host.name, parent=ctx,
                                    qname=str(name), rtype=rtype.name)
            if span is not None:
                ctx = span.context
        servers: List[Endpoint] = []
        target: Optional[Endpoint] = None  # None = use the default L-DNS
        referrals = 0
        while True:
            try:
                result = yield from self.stub.query(name, rtype,
                                                    server=target, ctx=ctx)
            except Exception as error:
                if tel is not None:
                    tel.tracer.end(span, status="FAILED",
                                   error=type(error).__name__,
                                   referrals=referrals)
                raise
            servers.append(result.server)
            if result.status != "NOERROR" or not result.addresses \
                    or not is_referral(result.response):
                if tel is not None:
                    tel.tracer.end(span, status=result.status,
                                   referrals=referrals)
                    tel.metrics.counter(
                        "repro_tiered_resolutions_total",
                        "tier-aware resolutions by depth").inc(
                            client=self.host.name, referrals=referrals)
                return TieredResolution(
                    name=name, addresses=result.addresses,
                    status=result.status, servers_queried=servers,
                    referrals_followed=referrals,
                    latency_ms=self.network.sim.now - started)
            referrals += 1
            self.referrals_followed += 1
            if referrals > self.max_referrals:
                if tel is not None:
                    tel.tracer.end(span, status="REFERRAL-LOOP",
                                   referrals=referrals)
                raise ResolutionError(
                    f"C-DNS referral chain for {name} exceeded "
                    f"{self.max_referrals} hops: {servers}")
            target = Endpoint(result.addresses[0], 53)
