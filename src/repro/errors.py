"""Exception hierarchy for the ``repro`` library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Subsystems define
narrower classes here rather than in their own modules so that the full
failure surface is visible in one place.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# DNS wire protocol
# ---------------------------------------------------------------------------

class DnsError(ReproError):
    """Base class for DNS protocol errors."""


class NameError_(DnsError):
    """A domain name is syntactically invalid (label/length limits)."""


class WireFormatError(DnsError):
    """A DNS message could not be encoded to or decoded from wire format."""


class TruncatedMessageError(WireFormatError):
    """The wire buffer ended before the message was complete."""


class CompressionLoopError(WireFormatError):
    """A compression pointer chain in a wire message formed a loop."""


class ZoneError(DnsError):
    """A zone is malformed (bad master file, out-of-zone data, ...)."""


# ---------------------------------------------------------------------------
# Resolution
# ---------------------------------------------------------------------------

class ResolutionError(ReproError):
    """Base class for resolution failures observed by a client."""


class QueryTimeout(ResolutionError):
    """No response arrived within the client's timeout."""


class ServerFailure(ResolutionError):
    """The server answered with SERVFAIL (or an equivalent hard error)."""


class NxDomain(ResolutionError):
    """The queried name does not exist (RCODE = NXDOMAIN)."""


class NoAnswer(ResolutionError):
    """The name exists but has no records of the requested type."""


# ---------------------------------------------------------------------------
# Simulator
# ---------------------------------------------------------------------------

class SimulationError(ReproError):
    """Base class for errors in the discrete-event simulator."""


class RoutingError(SimulationError):
    """No route exists between two simulated hosts."""


class AddressError(SimulationError):
    """An address is malformed, unassigned, or already in use."""


class SocketError(SimulationError):
    """Invalid use of a simulated socket (e.g. send on a closed socket)."""


# ---------------------------------------------------------------------------
# CDN / MEC
# ---------------------------------------------------------------------------

class CdnError(ReproError):
    """Base class for CDN subsystem errors."""


class ContentNotFound(CdnError):
    """The requested content is not in the catalog or any reachable tier."""


class NoCacheAvailable(CdnError):
    """The traffic router has no eligible cache server for a request."""


class MecError(ReproError):
    """Base class for MEC orchestrator errors."""


class ServiceNotFound(MecError):
    """A cluster service name did not resolve to any registered service."""


class CapacityError(MecError):
    """An orchestrator placement failed because no node has capacity."""
