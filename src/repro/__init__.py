"""Reproduction of "DNS Does Not Suffice for MEC-CDN" (HotNets 2020).

The library models the full MEC-CDN ecosystem the paper studies:

* a complete DNS wire protocol and resolver stack (:mod:`repro.dnswire`,
  :mod:`repro.resolver`),
* a deterministic discrete-event network simulator (:mod:`repro.netsim`),
* a mobile access network with an LTE/5G core (:mod:`repro.mobile`),
* a CDN with cache servers, a traffic router, and commercial provider
  models (:mod:`repro.cdn`),
* a Kubernetes-style MEC orchestrator with a CoreDNS analog
  (:mod:`repro.mec`), and
* the paper's proposed MEC-CDN design plus the six evaluated DNS
  deployment scenarios (:mod:`repro.core`).

The experiments in :mod:`repro.experiments` regenerate every table and
figure in the paper's evaluation.
"""

__version__ = "1.0.0"
