"""CLI glue for ``repro profile``, ``repro slo``, and ``repro tail``.

Mirrors :mod:`repro.check.runner`: ``add_*_arguments`` installs the
flags on a subparser, ``run_*_cli`` executes a parsed invocation and
returns the exit status (0 ok, 1 breach/failure, 2 usage error).  The
heavyweight imports (experiments, the harness) happen lazily so
``repro slo``/``repro tail`` on an existing artifact stay cheap.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional


def add_profile_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags for ``repro profile`` (the experiment name is added by the
    caller via the registry, like ``repro experiment``)."""
    parser.add_argument("--out-dir", metavar="DIR", default=".",
                        help="directory for <name>-budget.json and "
                             "<name>-profile.folded (default: .)")
    parser.add_argument("--bench-out", metavar="PATH", default=None,
                        help="where to write BENCH_profile.json "
                             "(default: <out-dir>/BENCH_profile.json)")
    parser.add_argument("--top", type=int, default=15,
                        help="rows to show in the profile tables "
                             "(default: 15)")


def run_profile_cli(args: argparse.Namespace) -> int:
    """Execute a parsed ``repro profile`` invocation."""
    from repro.profile import harness
    from repro.experiments.registry import builtin_registry
    experiment = builtin_registry().get(args.artifact)
    overrides = {param.name: getattr(args, param.name)
                 for param in experiment.params if param.cli}
    result = harness.run_profile(args.artifact, overrides,
                                 out_dir=args.out_dir,
                                 bench_path=args.bench_out,
                                 top=args.top)
    if result.run.failures:
        print(f"error: {len(result.run.failures)} of "
              f"{len(result.run.outcomes)} trials failed:", file=sys.stderr)
        for failure in result.run.failures:
            print(f"  {failure.describe()}", file=sys.stderr)
        return 1
    print(harness.render_summary(result, top=args.top))
    return 0


def add_slo_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags for ``repro slo``."""
    parser.add_argument("rules", metavar="RULES.slo",
                        help="SLO rule file "
                             "(<scope> <agg> <metric> <op> <threshold>)")
    parser.add_argument("--input", metavar="PATH", action="append",
                        dest="inputs", required=True,
                        help="artifact to evaluate against: a "
                             "repro-budget-v1 or repro-telemetry-v1 JSON "
                             "document (repeatable)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="stdout format (default: text)")
    parser.add_argument("--out", metavar="PATH",
                        help="also write the repro-slo-v1 verdict JSON "
                             "to PATH (the CI artifact)")


def run_slo_cli(args: argparse.Namespace) -> int:
    """Execute a parsed ``repro slo`` invocation."""
    from repro.profile.slo import SloParseError, evaluate_slo, parse_slo_text
    try:
        with open(args.rules, "r", encoding="utf-8") as handle:
            rules = parse_slo_text(handle.read())
    except OSError as exc:
        print(f"error: cannot read rules {args.rules}: {exc}",
              file=sys.stderr)
        return 2
    except SloParseError as exc:
        print(f"error: {args.rules}: {exc}", file=sys.stderr)
        return 2
    if not rules:
        print(f"error: {args.rules} contains no rules", file=sys.stderr)
        return 2
    documents: List[Dict[str, Any]] = []
    for path in args.inputs:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot load artifact {path}: {exc}",
                  file=sys.stderr)
            return 2
        if not isinstance(document, dict):
            print(f"error: {path} is not a JSON object", file=sys.stderr)
            return 2
        documents.append(document)
    verdict = evaluate_slo(rules, documents)
    if args.format == "json":
        print(json.dumps(verdict.to_dict(), indent=2, sort_keys=True))
    else:
        print(verdict.render_text())
    if args.out:
        try:
            verdict.write(args.out)
        except OSError as exc:
            print(f"error: cannot write verdict to {args.out}: {exc}",
                  file=sys.stderr)
            return 2
    return 0 if verdict.ok else 1


def add_tail_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags for ``repro tail``."""
    parser.add_argument("artifact", metavar="ARTIFACT.json",
                        help="repro-telemetry-v1 artifact with an "
                             "'exemplars' section (written by "
                             "repro experiment ... --metrics-out)")
    parser.add_argument("--top", type=int, default=0,
                        help="exemplars to print (default: all retained)")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="also reconstruct the exemplars as span "
                             "trees and write a Chrome trace_event JSON "
                             "(open in about:tracing/Perfetto)")


def run_tail_cli(args: argparse.Namespace) -> int:
    """Execute a parsed ``repro tail`` invocation."""
    from repro.telemetry.sampling import Exemplar
    try:
        with open(args.artifact, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot load artifact {args.artifact}: {exc}",
              file=sys.stderr)
        return 2
    if not isinstance(document, dict) or "exemplars" not in document:
        print(f"error: {args.artifact} has no 'exemplars' section (rerun "
              f"the experiment with --metrics-out and tail capture on)",
              file=sys.stderr)
        return 2
    try:
        exemplars = [Exemplar.from_dict(entry)
                     for entry in document["exemplars"]]
    except (KeyError, TypeError, ValueError) as exc:
        print(f"error: malformed exemplar in {args.artifact}: {exc}",
              file=sys.stderr)
        return 2
    exemplars.sort(key=Exemplar.sort_key)
    shown = exemplars[:args.top] if args.top > 0 else exemplars
    print(f"{len(exemplars)} tail exemplars in {args.artifact} "
          f"(slowest first):")
    for rank, exemplar in enumerate(shown, 1):
        attrs = dict(exemplar.attrs)
        context = " ".join(f"{key}={value}"
                           for key, value in sorted(attrs.items()))
        print(f"\n#{rank:<3d} {exemplar.total_ms:9.2f} ms  "
              f"t={exemplar.t_ms:.1f}  {exemplar.key}")
        if context:
            print(f"     {context}")
        for stage, ms in exemplar.stages:
            share = (100.0 * ms / exemplar.total_ms
                     if exemplar.total_ms else 0.0)
            print(f"     {stage:<14s} {ms:9.2f} ms  {share:5.1f}%")
    if args.trace_out:
        from repro.telemetry import exporters
        from repro.telemetry.sampling import exemplar_spans
        from repro.telemetry.trace import Tracer
        tracer = Tracer()
        exemplar_spans(exemplars, tracer)
        try:
            exporters.write_chrome_trace(tracer.finished, args.trace_out)
        except OSError as exc:
            print(f"error: cannot write trace to {args.trace_out}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"\n;; wrote {len(tracer.finished)} reconstructed spans to "
              f"{args.trace_out} (open in about:tracing or Perfetto)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.profile``) for SLOs."""
    parser = argparse.ArgumentParser(
        prog="repro-slo",
        description="Evaluate declarative latency SLOs over run artifacts")
    add_slo_arguments(parser)
    return run_slo_cli(parser.parse_args(argv))
