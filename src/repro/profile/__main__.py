"""``python -m repro.profile`` — standalone SLO evaluation.

Evaluates an ``.slo`` rule file against existing budget/metrics
artifacts without importing the simulator, so a CI gate can run it on
uploaded artifacts alone.  The full ``repro profile`` harness lives
behind ``python -m repro.cli profile``.
"""

from repro.profile.runner import main

if __name__ == "__main__":
    raise SystemExit(main())
