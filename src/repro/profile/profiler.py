"""Deterministic simulated-time profiler over telemetry spans.

A conventional profiler samples the wall clock; this one *derives* a
profile from the spans a run already recorded, so it is exactly
reproducible — same seed, same profile, byte for byte — and costs the
simulation nothing (ARCH002's zero-perturbation contract holds: spans
are only read here).

Two views:

* :func:`simulated_profile` — per ``category/name`` **inclusive** time
  (sum of span durations) and **exclusive** time (segments of the
  timeline the span owns outright, via the
  :mod:`repro.profile.criticalpath` sweep), rendered by
  :func:`render_profile` as a text table.
* :func:`collapsed_stacks` — exclusive time keyed by the full span
  ancestry (``lookup;stub.query;stub.attempt;transit``), rendered by
  :func:`render_collapsed` in Brendan Gregg's collapsed-stack format:
  feed the file to ``flamegraph.pl`` or paste it into a flamegraph
  viewer (values are integer microseconds of simulated time).

All arithmetic is exact (:class:`fractions.Fraction`), so exclusive
times across a trace sum to precisely its duration.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.profile.criticalpath import trace_segments
from repro.telemetry import Span


class ProfileEntry(NamedTuple):
    """One ``category/name`` row of the simulated-time profile."""

    category: str
    name: str
    count: int
    #: Exact sum of span durations (children included).
    inclusive: Fraction
    #: Exact timeline ownership (children excluded).
    exclusive: Fraction

    @property
    def inclusive_ms(self) -> float:
        return float(self.inclusive)

    @property
    def exclusive_ms(self) -> float:
        return float(self.exclusive)


def _by_trace(spans: Iterable[Span]) -> Dict[int, List[Span]]:
    grouped: Dict[int, List[Span]] = {}
    for span in spans:
        if span.end_ms is None:
            continue
        grouped.setdefault(span.trace_id, []).append(span)
    return grouped


def simulated_profile(spans: Iterable[Span]) -> List[ProfileEntry]:
    """Aggregate spans into inclusive/exclusive per-component rows.

    Rows come back sorted by exclusive time, largest first (ties by
    ``category/name`` so the order is total).
    """
    grouped = _by_trace(spans)
    counts: Dict[Tuple[str, str], int] = {}
    inclusive: Dict[Tuple[str, str], Fraction] = {}
    exclusive: Dict[Tuple[str, str], Fraction] = {}
    for trace_spans in grouped.values():
        for span in trace_spans:
            key = (span.category, span.name)
            counts[key] = counts.get(key, 0) + 1
            assert span.end_ms is not None
            inclusive[key] = (inclusive.get(key, Fraction(0))
                              + Fraction(span.end_ms)
                              - Fraction(span.start_ms))
    for trace_id, trace_spans in grouped.items():
        for segment in trace_segments(trace_spans, trace_id):
            if segment.owner is None:
                continue
            key = (segment.owner.category, segment.owner.name)
            exclusive[key] = exclusive.get(key, Fraction(0)) + segment.width
    entries = [ProfileEntry(category=category, name=name,
                            count=counts[(category, name)],
                            inclusive=inclusive[(category, name)],
                            exclusive=exclusive.get((category, name),
                                                    Fraction(0)))
               for category, name in counts]
    entries.sort(key=lambda entry: (-entry.exclusive, entry.category,
                                    entry.name))
    return entries


def render_profile(entries: List[ProfileEntry],
                   limit: Optional[int] = None) -> str:
    """The profile as a text table (all rows unless ``limit`` is set)."""
    total = sum((entry.exclusive for entry in entries), Fraction(0))
    shown = entries if limit is None else entries[:limit]
    lines = [f"{'component':28s} {'calls':>7s} {'incl ms':>12s} "
             f"{'excl ms':>12s} {'excl %':>7s}"]
    for entry in shown:
        share = float(entry.exclusive / total) * 100.0 if total else 0.0
        lines.append(f"{entry.category + '/' + entry.name:28s} "
                     f"{entry.count:7d} {entry.inclusive_ms:12.3f} "
                     f"{entry.exclusive_ms:12.3f} {share:6.1f}%")
    if limit is not None and len(entries) > limit:
        lines.append(f"... {len(entries) - limit} more rows")
    lines.append(f"{'total (exclusive)':28s} {'':7s} {'':12s} "
                 f"{float(total):12.3f}")
    return "\n".join(lines)


def collapsed_stacks(spans: Iterable[Span]) -> Dict[str, Fraction]:
    """Exclusive time per span ancestry, keyed by the collapsed stack.

    The key is ``;``-joined span names from trace root to owner — the
    flamegraph convention — and the value is the exact simulated time
    that stack owns across all traces.
    """
    stacks: Dict[str, Fraction] = {}
    for trace_id, trace_spans in _by_trace(spans).items():
        for segment in trace_segments(trace_spans, trace_id):
            if segment.owner is None:
                continue
            key = ";".join(span.name for span in segment.stack)
            stacks[key] = stacks.get(key, Fraction(0)) + segment.width
    return stacks


def render_collapsed(stacks: Dict[str, Fraction]) -> str:
    """Collapsed-stack text: one ``stack value`` line per ancestry.

    Values are integer **microseconds** of simulated time (flamegraph
    tools want integers); zero-rounded stacks are kept at 1 so no stack
    silently vanishes from the rendering.
    """
    lines = []
    for stack in sorted(stacks):
        micros = round(stacks[stack] * 1000)
        lines.append(f"{stack} {max(int(micros), 1)}")
    return "\n".join(lines) + ("\n" if lines else "")
