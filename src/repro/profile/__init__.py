"""Latency-budget profiling: from raw spans to actionable verdicts.

A read-only consumer of :mod:`repro.telemetry` (the leaf of the layer
DAG — nothing in the simulation stack may import it), answering three
questions the raw spans cannot:

* **Where did the budget go?** — :mod:`repro.profile.criticalpath`
  attributes every simulated instant of a trace to a named stage
  (radio, backhaul, L-DNS cache, upstream recursion, C-DNS routing,
  TCP fallback), with stage sums float-identical to the trace
  duration; :mod:`repro.profile.budget` rolls that up per deployment.
* **What dominates?** — :mod:`repro.profile.profiler` builds
  deterministic inclusive/exclusive simulated-time profiles with
  text-table and collapsed-stack (flamegraph) exporters.
* **Is it good enough?** — :mod:`repro.profile.slo` evaluates
  declarative SLO rules (``mec-ldns-mec-cdns p99 resolve_ms < 20``)
  over budget/metrics artifacts, and :mod:`repro.profile.harness`
  (``repro profile``) measures the simulator's own wall-clock speed,
  seeding the ``BENCH_profile.json`` trajectory.

See ``docs/OBSERVABILITY.md`` ("From spans to answers") for the tour.
"""

from repro.profile.budget import (BudgetReport, BudgetRow, StageBudget,
                                  budget_report, percentile)
from repro.profile.criticalpath import (STAGE_BACKHAUL, STAGE_CDNS,
                                        STAGE_CLIENT, STAGE_LDNS_CACHE,
                                        STAGE_OTHER, STAGE_RADIO, STAGES,
                                        STAGE_TCP_FALLBACK, STAGE_UPSTREAM,
                                        CriticalPath, PathStep, Segment,
                                        analyze_trace, render_path,
                                        trace_segments)
from repro.profile.profiler import (ProfileEntry, collapsed_stacks,
                                    render_collapsed, render_profile,
                                    simulated_profile)
from repro.profile.slo import (BurnRateRule, SloCheck, SloParseError,
                               SloRule, SloVerdict, WindowRule,
                               evaluate_slo, parse_slo_text)

__all__ = [
    "STAGES",
    "STAGE_BACKHAUL",
    "STAGE_CDNS",
    "STAGE_CLIENT",
    "STAGE_LDNS_CACHE",
    "STAGE_OTHER",
    "STAGE_RADIO",
    "STAGE_TCP_FALLBACK",
    "STAGE_UPSTREAM",
    "BudgetReport",
    "BudgetRow",
    "CriticalPath",
    "PathStep",
    "ProfileEntry",
    "Segment",
    "BurnRateRule",
    "SloCheck",
    "SloParseError",
    "SloRule",
    "SloVerdict",
    "WindowRule",
    "StageBudget",
    "analyze_trace",
    "budget_report",
    "collapsed_stacks",
    "evaluate_slo",
    "parse_slo_text",
    "percentile",
    "render_collapsed",
    "render_path",
    "render_profile",
    "simulated_profile",
    "trace_segments",
]
