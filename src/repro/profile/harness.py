"""``repro profile`` — wall-clock harness around registered experiments.

Everything else in this package analyzes *simulated* time; this module
is the repo's one sanctioned wall-clock reader (each
``time.perf_counter`` call carries an inline ``repro: allow[DET001]``
marker — the determinism linter keeps every other module honest).  The
ROADMAP's north star is "as fast as the hardware allows", and you
cannot keep that promise without measuring it.

``run_profile(name)`` executes one registered experiment **twice**:

* a *timed* pass — ambient telemetry installed (so every lookup emits
  the spans the budget/critical-path analyzers need) and the
  :func:`repro.netsim.observe_simulators` hook collecting event-loop
  counters, but **no** interpreter profiler.  ``wall_s`` and
  ``events_per_s`` come from this pass: timing under ``cProfile``
  measures the profiler's per-call overhead, not the code (an earlier
  revision did exactly that, and the bench number tracked call *count*
  instead of runtime);
* a *profiled* pass — :class:`~repro.runtime.TrialExecutor` per-trial
  ``cProfile`` capture (merged in spec order — see
  :mod:`repro.runtime.capture`), feeding only the ``top_functions``
  table and the returned ``profile_stats``.

Trials run serially (``jobs=1``): the counters and the profiler live
in this process, and a profile sharded over workers would measure the
pool, not the code.  Profiling observes the interpreter only — the
trial results and telemetry are byte-identical with it on or off,
which the test suite asserts via ``result_digest``.

Artifacts: ``<name>-budget.json`` (the ``repro-budget-v1`` document
``repro slo`` consumes), ``<name>-profile.folded`` (collapsed stacks
for a flamegraph), and ``BENCH_profile.json`` (the perf-trajectory
sample ``scripts/bench_compare.py`` gates on).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, NamedTuple, Optional

from repro import telemetry as _telemetry
from repro.netsim import Simulator, observe_simulators
from repro.profile.budget import BudgetReport, budget_report
from repro.profile.profiler import (ProfileEntry, collapsed_stacks,
                                    render_collapsed, render_profile,
                                    simulated_profile)
from repro.runtime import ExperimentRun, ProfileStats, TrialExecutor

#: Schema tag for ``BENCH_profile.json``.
BENCH_FORMAT = "repro-bench-profile-v1"


class ProfileRunResult(NamedTuple):
    """Everything one harness invocation produced."""

    run: ExperimentRun
    report: BudgetReport
    entries: List[ProfileEntry]
    bench: Dict[str, Any]
    budget_path: str
    folded_path: str
    bench_path: str


def _top_functions(stats: Optional[ProfileStats],
                   top: int) -> List[Dict[str, Any]]:
    """The ``top`` hottest rows of the merged cProfile table, by cumtime.

    File paths are reduced to basenames so the document compares across
    machines; ties break on the rendered name for a total order.
    """
    if not stats:
        return []
    rows: List[Dict[str, Any]] = []
    for (filename, lineno, funcname), row in stats.items():
        base = os.path.basename(filename) if filename not in ("~", "") else filename
        rows.append({
            "function": f"{base}:{lineno}:{funcname}",
            "calls": row[1],
            "tottime_s": round(row[2], 6),
            "cumtime_s": round(row[3], 6),
        })
    rows.sort(key=lambda entry: (-float(entry["cumtime_s"]),
                                 str(entry["function"])))
    return rows[:top]


def run_profile(name: str,
                overrides: Optional[Dict[str, object]] = None,
                out_dir: str = ".",
                bench_path: Optional[str] = None,
                top: int = 15) -> ProfileRunResult:
    """Profile one registered experiment end to end and write artifacts."""
    from repro.experiments.registry import builtin_registry
    experiment = builtin_registry().get(name)

    # Profiled pass first: same experiment under per-trial cProfile,
    # feeding only the top_functions table.  Running it before the timed
    # pass also serves as the warm-up — imports, zone construction, and
    # allocator caches are paid here, not inside the measurement.  Its
    # telemetry facade is discarded.
    previous = _telemetry.get_default()
    profiled_session = _telemetry.Telemetry()
    _telemetry.set_default(profiled_session)
    try:
        profiled = TrialExecutor(jobs=1, profile=True).run(
            experiment, overrides)
    finally:
        _telemetry.set_default(previous)

    # Timed pass: telemetry and event counters on, interpreter profiler
    # off — wall_s must measure the code, not cProfile's per-call hook.
    simulators: List[Simulator] = []
    session = _telemetry.Telemetry()
    _telemetry.set_default(session)
    observe_simulators(simulators.append)
    started = time.perf_counter()  # repro: allow[DET001]
    try:
        run = TrialExecutor(jobs=1).run(experiment, overrides)
    finally:
        wall_s = time.perf_counter() - started  # repro: allow[DET001]
        observe_simulators(None)
        _telemetry.set_default(previous)
    run = run._replace(profile_stats=profiled.profile_stats)

    spans = session.tracer.finished
    report = budget_report(spans)
    entries = simulated_profile(spans)
    events = sum(sim.events_processed for sim in simulators)
    heap_depth = max((sim.max_queue_depth for sim in simulators), default=0)
    bench: Dict[str, Any] = {
        "format": BENCH_FORMAT,
        "experiment": name,
        "ok": run.ok,
        "wall_s": round(wall_s, 4),
        "cpu_count": os.cpu_count(),
        "simulators": len(simulators),
        "events": events,
        "events_per_s": round(events / wall_s, 1) if wall_s > 0 else 0.0,
        "max_heap_depth": heap_depth,
        "spans": len(spans),
        "traces": len(session.tracer.trace_ids()),
        "top_functions": _top_functions(run.profile_stats, top),
    }

    os.makedirs(out_dir, exist_ok=True)
    budget_path = os.path.join(out_dir, f"{name}-budget.json")
    folded_path = os.path.join(out_dir, f"{name}-profile.folded")
    resolved_bench = (bench_path if bench_path is not None
                      else os.path.join(out_dir, "BENCH_profile.json"))
    report.write(budget_path)
    with open(folded_path, "w", encoding="utf-8") as handle:
        handle.write(render_collapsed(collapsed_stacks(spans)))
    with open(resolved_bench, "w", encoding="utf-8") as handle:
        json.dump(bench, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return ProfileRunResult(run=run, report=report, entries=entries,
                            bench=bench, budget_path=budget_path,
                            folded_path=folded_path,
                            bench_path=resolved_bench)


def render_summary(result: ProfileRunResult, top: int = 15) -> str:
    """Human-readable harness output: budget, sim profile, wall clock."""
    bench = result.bench
    lines = ["== latency budget (simulated ms) ==",
             result.report.render(), "",
             "== simulated-time profile ==",
             render_profile(result.entries, limit=top)]
    lines.extend([
        "",
        "== wall clock ==",
        f"wall {bench['wall_s']:.3f} s on {bench['cpu_count']} cpu(s); "
        f"{bench['simulators']} simulators, {bench['events']} events "
        f"({bench['events_per_s']:.0f}/s), heap depth {bench['max_heap_depth']}",
        f"artifacts: {result.budget_path}, {result.folded_path}, "
        f"{result.bench_path}",
    ])
    top_rows = bench.get("top_functions", [])
    if top_rows:
        lines.append("hottest functions (merged per-trial cProfile, "
                     "by cumulative time):")
        for row in top_rows:
            lines.append(f"  {row['cumtime_s']:9.4f} s  "
                         f"{row['calls']:9d} calls  {row['function']}")
    return "\n".join(lines)
