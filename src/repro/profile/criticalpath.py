"""Critical-path analysis: where did a resolution's budget go?

The paper's P1 requirement is a hard latency budget — resolution far
below the ~20 ms an MEC application can spend end to end — so totaling
a lookup's latency is not enough: deployment comparisons need the time
*attributed* to stages (radio, backhaul, L-DNS cache work, upstream
recursion, C-DNS routing, TCP fallback).  This module rebuilds a
trace's span tree and charges every simulated instant to exactly one
stage.

Attribution is a **segment sweep**: the trace's timeline is cut at
every span start/end, and each resulting segment is owned by the
*deepest* span covering it (ties break toward the later span id, i.e.
the span begun later).  A segment's stage is inferred from its owner's
name, category, track, and ancestry — no external configuration, so
the analyzer works on any trace the stack emits.

Arithmetic is done in :class:`fractions.Fraction`.  Each segment width
``Fraction(b) - Fraction(a)`` is an *exact* rational, so the per-stage
sums telescope exactly and the invariant

    sum(stage totals) == Fraction(max end) - Fraction(min start)

holds with no floating-point slack; converting that exact total back
to float reproduces IEEE ``max_end - min_start`` bit for bit (both are
the correctly-rounded difference).  That is the float-identity
contract the test suite asserts against
:func:`repro.telemetry.analysis.trace_duration` for every trace of a
figure5 run.

This package only *reads* spans — it never creates telemetry, so the
ARCH002 zero-perturbation contract is untouched.
"""

from __future__ import annotations

from fractions import Fraction
from typing import (Dict, FrozenSet, Iterable, List, NamedTuple, Optional,
                    Tuple)

from repro.telemetry import Span

#: UE ↔ eNodeB air-interface transit time.
STAGE_RADIO = "radio"
#: Wired transits (EPC bearer, LAN, Internet) outside upstream recursion.
STAGE_BACKHAUL = "backhaul"
#: Time spent inside the local resolver (cache probes, plugin chain).
STAGE_LDNS_CACHE = "ldns-cache"
#: Recursive resolution beyond the L-DNS (root/TLD/auth exchanges).
STAGE_UPSTREAM = "upstream-recursion"
#: Time on the CDN's request-routing DNS tier.
STAGE_CDNS = "cdns-routing"
#: Truncation-triggered retry over TCP, wherever it lands.
STAGE_TCP_FALLBACK = "tcp-fallback"
#: Stub/driver work on the client itself.
STAGE_CLIENT = "client"
#: Anything the rules above cannot place (kept so sums stay exact).
STAGE_OTHER = "other"

#: Canonical stage order for reports and serialized documents.
STAGES: Tuple[str, ...] = (
    STAGE_RADIO, STAGE_BACKHAUL, STAGE_LDNS_CACHE, STAGE_UPSTREAM,
    STAGE_CDNS, STAGE_TCP_FALLBACK, STAGE_CLIENT, STAGE_OTHER)


class Segment(NamedTuple):
    """One sweep segment: a slice of the trace owned by one span."""

    start_ms: float
    end_ms: float
    #: Exact width ``Fraction(end_ms) - Fraction(start_ms)``.
    width: Fraction
    #: Deepest covering span; ``None`` for an uncovered gap.
    owner: Optional[Span]
    #: Ancestry of the owner, root first, owner last; empty for gaps.
    stack: Tuple[Span, ...]
    stage: str


class PathStep(NamedTuple):
    """A maximal run of adjacent segments with one owner (for reports)."""

    start_ms: float
    end_ms: float
    stage: str
    #: ``category/name`` of the owning span; ``"(gap)"`` when uncovered.
    what: str
    width: Fraction


class CriticalPath(NamedTuple):
    """One trace's budget, attributed stage by stage — exactly."""

    trace_id: int
    #: Exact per-stage totals; keys are a subset of :data:`STAGES`.
    stages: Dict[str, Fraction]
    steps: List[PathStep]
    #: Exact trace duration; equals ``sum(stages.values())`` by
    #: construction, and ``float(total_exact)`` equals
    #: :func:`repro.telemetry.analysis.trace_duration` bit for bit.
    total_exact: Fraction

    @property
    def total_ms(self) -> float:
        return float(self.total_exact)

    def stage_ms(self, stage: str) -> float:
        """One stage's attributed time as a float (0.0 when absent)."""
        return float(self.stages.get(stage, Fraction(0)))


def _ancestry(spans: List[Span]) -> Dict[int, Tuple[Span, ...]]:
    """Each span's chain root → self, resolved within this trace.

    A parent id that never finished (or was absorbed away) simply
    truncates the chain — the span is treated as rooted where the
    record ends, which keeps the sweep total-preserving regardless.
    """
    by_id = {span.span_id: span for span in spans}
    chains: Dict[int, Tuple[Span, ...]] = {}

    def resolve(span: Span) -> Tuple[Span, ...]:
        cached = chains.get(span.span_id)
        if cached is not None:
            return cached
        lineage: List[Span] = [span]
        seen = {span.span_id}
        cursor = span.parent_id
        while cursor is not None and cursor in by_id and cursor not in seen:
            parent = by_id[cursor]
            lineage.append(parent)
            seen.add(cursor)
            cursor = parent.parent_id
        chain = tuple(reversed(lineage))
        chains[span.span_id] = chain
        return chain

    for span in spans:
        resolve(span)
    return chains


def _stage_for(span: Span, chain: Tuple[Span, ...],
               client_tracks: FrozenSet[str],
               cdns_tracks: FrozenSet[str]) -> str:
    """Classify one owning span into a budget stage.

    Rules are ordered most-specific first; ancestry (``chain``, root
    first, ``span`` last) lets a transit hop inherit the phase that
    caused it (TCP fallback, upstream recursion).
    """
    ancestor_names = {ancestor.name for ancestor in chain[:-1]}
    if span.name == "stub.tcp-fallback" or "stub.tcp-fallback" in ancestor_names:
        return STAGE_TCP_FALLBACK
    if span.name == "transit":
        if (span.attrs.get("from") in client_tracks
                or span.attrs.get("to") in client_tracks):
            return STAGE_RADIO
        if "upstream.exchange" in ancestor_names:
            return STAGE_UPSTREAM
        return STAGE_BACKHAUL
    if span.track in cdns_tracks:
        return STAGE_CDNS
    if span.name == "upstream.exchange":
        return STAGE_UPSTREAM
    if span.name == "dns.serve" and "upstream.exchange" in ancestor_names:
        return STAGE_UPSTREAM
    if (span.category == "mec" or span.name in ("dns.serve",
                                                "resolution.tiered",
                                                "ldns.cache-lookup",
                                                "ldns.serve-stale")
            or span.name.startswith("plugin.")):
        return STAGE_LDNS_CACHE
    if (span.category == "measure" or span.track in client_tracks
            or span.name in ("lookup", "stub.query", "stub.attempt")):
        return STAGE_CLIENT
    return STAGE_OTHER


def trace_segments(spans: Iterable[Span], trace_id: int) -> List[Segment]:
    """Sweep one trace into owner-attributed segments.

    Segments partition ``[min start, max end]`` of the trace's finished
    spans: cut at every span boundary, assign each slice to the deepest
    covering span (ties → larger span id), classify by
    :func:`_stage_for`.  Widths are exact rationals, so they sum to the
    exact trace duration with no float error.
    """
    done = [span for span in spans
            if span.trace_id == trace_id and span.end_ms is not None]
    if not done:
        return []
    chains = _ancestry(done)
    client_tracks = frozenset(span.track for span in done
                              if span.name == "stub.query")
    cdns_tracks = frozenset(span.track for span in done
                            if span.name == "cdns.route")
    boundaries = sorted({edge for span in done
                         for edge in (span.start_ms, span.end_ms)
                         if edge is not None})
    segments: List[Segment] = []
    for start, end in zip(boundaries, boundaries[1:]):
        covering = [span for span in done
                    if span.start_ms <= start
                    and span.end_ms is not None and span.end_ms >= end]
        owner: Optional[Span] = None
        stack: Tuple[Span, ...] = ()
        stage = STAGE_OTHER
        if covering:
            owner = max(covering,
                        key=lambda span: (len(chains[span.span_id]),
                                          span.span_id))
            stack = chains[owner.span_id]
            stage = _stage_for(owner, stack, client_tracks, cdns_tracks)
        segments.append(Segment(
            start_ms=start, end_ms=end,
            width=Fraction(end) - Fraction(start),
            owner=owner, stack=stack, stage=stage))
    return segments


def analyze_trace(spans: Iterable[Span], trace_id: int) -> CriticalPath:
    """Attribute one trace's whole duration to stages, exactly."""
    materialized = list(spans)
    segments = trace_segments(materialized, trace_id)
    stages: Dict[str, Fraction] = {}
    steps: List[PathStep] = []
    total = Fraction(0)
    for segment in segments:
        total += segment.width
        stages[segment.stage] = (stages.get(segment.stage, Fraction(0))
                                 + segment.width)
        what = ("(gap)" if segment.owner is None
                else f"{segment.owner.category}/{segment.owner.name}")
        if (steps and steps[-1].what == what
                and steps[-1].stage == segment.stage
                and steps[-1].end_ms == segment.start_ms):
            last = steps[-1]
            steps[-1] = PathStep(last.start_ms, segment.end_ms,
                                 last.stage, last.what,
                                 last.width + segment.width)
        else:
            steps.append(PathStep(segment.start_ms, segment.end_ms,
                                  segment.stage, what, segment.width))
    return CriticalPath(trace_id=trace_id, stages=stages, steps=steps,
                        total_exact=total)


def render_path(path: CriticalPath) -> str:
    """One trace's budget as a human-readable step table."""
    lines = [f"trace {path.trace_id}: {path.total_ms:.3f} ms total"]
    for step in path.steps:
        lines.append(f"  {step.start_ms:10.3f} ..{step.end_ms:10.3f}  "
                     f"{float(step.width):8.3f} ms  "
                     f"{step.stage:18s} {step.what}")
    by_stage = sorted(path.stages.items(),
                      key=lambda item: STAGES.index(item[0]))
    for stage, width in by_stage:
        share = (float(width / path.total_exact) * 100.0
                 if path.total_exact else 0.0)
        lines.append(f"  {stage:18s} {float(width):8.3f} ms "
                     f"({share:5.1f}%)")
    return "\n".join(lines)
