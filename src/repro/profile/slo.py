"""Declarative latency SLOs evaluated over run artifacts.

An ``.slo`` file is a list of one-line rules.  The second token picks
the rule kind; the original point-in-run form has an aggregation
there::

    # scope       agg  metric              op  threshold-ms
    mec-ldns-mec-cdns p99 resolve_ms       <   20
    mec-ldns-mec-cdns mean stage.radio_ms  <   15
    *                 p50 resolve_ms       <   120

* **scope** — a deployment key, or ``*`` to pool every deployment;
* **agg** — ``min``/``max``/``mean``/``p50``/``p90``/``p95``/``p99``;
* **metric** — ``resolve_ms`` (end-to-end resolution latency) or
  ``stage.<name>_ms`` (one critical-path stage, see
  :data:`repro.profile.criticalpath.STAGES`);
* **op** — ``<``, ``<=``, ``>``, ``>=`` (``>`` rules let a budget
  assert that, e.g., the WAN deployment really is over budget — a
  reproduction claim, not just a performance wish);
* **threshold** — milliseconds.

Two windowed forms evaluate against the ``repro-timeseries-v1``
document (standalone, or embedded as the ``timeseries`` section of the
telemetry artifact):

``<scope> window <agg> <metric> <op> <threshold>``
    The point-rule check applied to **every** window the series
    covers.  ``metric`` is ``dns_ms``/``total_ms`` (the population
    engine's windowed series) or a raw ``repro_*`` latency series
    name.  Missing-data semantics are strict *per window*: any window
    inside the covered range with zero samples FAILS the rule —
    "nothing measured for a second" is an outage signal, not a free
    pass.  (``min`` is not available: windows carry histograms.)

``<scope> burnrate <bad>/<total> <fires|quiet> budget=F factor=X fast=N slow=M [clear=K]``
    Multi-window, multi-burn-rate alerting (the SRE workbook shape)
    over two counter series.  The error ratio ``bad/total`` is read
    over a *fast* trailing window (``N`` windows) and a *slow* one
    (``M`` windows); the alert fires in any window where **both**
    burn rates reach ``X`` times the error ``budget``.  ``fires``
    asserts the alert fires at least once (and, with ``clear=K``,
    that it is quiet again for the last ``K`` windows of the run) —
    the reproduction claim that churn *does* burn the SLO and
    recovers; ``quiet`` asserts it never fires.  Bare series names
    resolve against the control-plane (``repro_control_*``) then the
    workload (``repro_workload_*``) families.

Point rules are evaluated against machine-readable artifacts the
toolchain already writes: ``repro-budget-v1`` documents (raw samples —
any quantile computes exactly) and, as a fallback for ``*``-scoped
``resolve_ms`` rules, the ``repro-telemetry-v1`` metrics artifact
(quantiles estimated from the ``repro_lookup_latency_ms`` histogram by
linear interpolation within the bucket, Prometheus-style).

A rule that cannot be evaluated — no matching deployment, no samples,
an empty window — **fails**: a gate that silently passes on missing
data is worse than no gate.  ``repro slo`` renders the verdict as text
or a ``repro-slo-v1`` JSON document and exits 1 on any breach.
"""

from __future__ import annotations

import json
from typing import (Any, Callable, Dict, Iterable, List, NamedTuple,
                    Optional, Tuple, Union)

from repro.profile.budget import percentile

#: Metric names answerable from the telemetry-artifact histograms.
_HISTOGRAM_METRICS = {"resolve_ms": "repro_lookup_latency_ms"}

#: Window-rule metric shorthands onto engine time-series names.
_SERIES_METRICS = {"dns_ms": "repro_workload_dns_ms",
                   "total_ms": "repro_workload_total_ms"}

#: Families bare burn-rate counter names resolve against, in order.
_COUNTER_FAMILIES = ("repro_control_", "repro_workload_")

_OPS: Dict[str, Callable[[float, float], bool]] = {
    "<": lambda value, bound: value < bound,
    "<=": lambda value, bound: value <= bound,
    ">": lambda value, bound: value > bound,
    ">=": lambda value, bound: value >= bound,
}

_AGGS = ("min", "max", "mean", "p50", "p90", "p95", "p99")


class SloParseError(ValueError):
    """A malformed rule line (message carries the line number)."""


class SloRule(NamedTuple):
    """One parsed point-in-run SLO line."""

    scope: str
    agg: str
    metric: str
    op: str
    threshold: float
    source: str

    def describe(self) -> str:
        """The rule re-rendered in canonical ``.slo`` line form."""
        return (f"{self.scope} {self.agg} {self.metric} "
                f"{self.op} {self.threshold:g}")

    def fields(self) -> Dict[str, Any]:
        """Kind-specific keys for the verdict document."""
        return {"agg": self.agg, "metric": self.metric,
                "op": self.op, "threshold": self.threshold}


class WindowRule(NamedTuple):
    """A point rule applied to every time-series window."""

    scope: str
    agg: str
    metric: str
    op: str
    threshold: float
    source: str

    def describe(self) -> str:
        """The rule re-rendered in canonical ``.slo`` line form."""
        return (f"{self.scope} window {self.agg} {self.metric} "
                f"{self.op} {self.threshold:g}")

    def fields(self) -> Dict[str, Any]:
        """Kind-specific keys for the verdict document."""
        return {"kind": "window", "agg": self.agg, "metric": self.metric,
                "op": self.op, "threshold": self.threshold}


class BurnRateRule(NamedTuple):
    """A multi-window burn-rate alert assertion over counter series."""

    scope: str
    bad: str
    total: str
    #: ``fires`` asserts the alert triggers; ``quiet`` that it never does.
    mode: str
    #: Error budget as a ratio (0.05 = five percent may be bad).
    budget: float
    #: Burn multiple that trips the alert (both windows must reach it).
    factor: float
    #: Fast/slow trailing lookback, in windows.
    fast: int
    slow: int
    #: With ``fires``: windows at the end of the run that must be quiet
    #: (0 = no recovery requirement).
    clear: int
    source: str

    def describe(self) -> str:
        """The rule re-rendered in canonical ``.slo`` line form."""
        tail = f" clear={self.clear}" if self.clear else ""
        return (f"{self.scope} burnrate {self.bad}/{self.total} "
                f"{self.mode} budget={self.budget:g} "
                f"factor={self.factor:g} fast={self.fast} "
                f"slow={self.slow}{tail}")

    def fields(self) -> Dict[str, Any]:
        """Kind-specific keys for the verdict document."""
        return {"kind": "burnrate", "bad": self.bad, "total": self.total,
                "mode": self.mode, "budget": self.budget,
                "factor": self.factor, "fast": self.fast,
                "slow": self.slow, "clear": self.clear}


#: Anything ``parse_slo_text`` can produce.
AnySloRule = Union[SloRule, WindowRule, BurnRateRule]


class SloCheck(NamedTuple):
    """One rule's outcome against the supplied artifacts."""

    rule: AnySloRule
    #: Observed aggregate; ``None`` when no data matched the rule.
    value: Optional[float]
    ok: bool
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        """One check of the ``repro-slo-v1`` document."""
        out: Dict[str, Any] = {"rule": self.rule.describe(),
                               "scope": self.rule.scope,
                               "value": self.value, "ok": self.ok,
                               "detail": self.detail}
        out.update(self.rule.fields())
        return out


class SloVerdict(NamedTuple):
    """Every rule's outcome; the gate passes only when all do."""

    checks: List[SloCheck]

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def to_dict(self) -> Dict[str, Any]:
        """The machine-readable ``repro-slo-v1`` verdict document."""
        return {"format": "repro-slo-v1", "ok": self.ok,
                "checks": [check.to_dict() for check in self.checks]}

    def render_text(self) -> str:
        """Human-readable PASS/FAIL lines plus the verdict summary."""
        lines = []
        for check in self.checks:
            mark = "PASS" if check.ok else "FAIL"
            shown = ("n/a" if check.value is None
                     else f"{check.value:.3f}")
            lines.append(f"[{mark}] {check.rule.describe():48s} "
                         f"observed {shown} ({check.detail})")
        verdict = "OK" if self.ok else "BREACH"
        failed = sum(1 for check in self.checks if not check.ok)
        lines.append(f"slo: {verdict} — {len(self.checks)} rules, "
                     f"{failed} failing")
        return "\n".join(lines)

    def write(self, path: str) -> None:
        """Serialize :meth:`to_dict` as stable JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def parse_slo_text(text: str) -> List[AnySloRule]:
    """Parse the ``.slo`` rule format; raises :class:`SloParseError`.

    The token after the scope dispatches the rule kind: ``window`` and
    ``burnrate`` introduce the time-series forms; anything else must be
    an aggregation and parses as a point rule.
    """
    rules: List[AnySloRule] = []
    for line_no, raw in enumerate(text.splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) >= 2 and parts[1] == "window":
            rules.append(_parse_window(line_no, raw, line, parts))
        elif len(parts) >= 2 and parts[1] == "burnrate":
            rules.append(_parse_burnrate(line_no, raw, line, parts))
        else:
            rules.append(_parse_point(line_no, raw, line, parts))
    return rules


def _parse_point(line_no: int, raw: str, line: str,
                 parts: List[str]) -> SloRule:
    if len(parts) != 5:
        raise SloParseError(
            f"line {line_no}: expected "
            f"'<scope> <agg> <metric> <op> <threshold>', got {raw!r}")
    scope, agg, metric, op, threshold_text = parts
    if agg not in _AGGS:
        raise SloParseError(
            f"line {line_no}: unknown aggregation {agg!r} "
            f"(use one of {', '.join(_AGGS)})")
    _check_op(line_no, op)
    if not (metric == "resolve_ms"
            or (metric.startswith("stage.") and metric.endswith("_ms"))):
        raise SloParseError(
            f"line {line_no}: unknown metric {metric!r} (use "
            f"'resolve_ms' or 'stage.<name>_ms')")
    return SloRule(scope=scope, agg=agg, metric=metric, op=op,
                   threshold=_parse_threshold(line_no, threshold_text),
                   source=line)


def _parse_window(line_no: int, raw: str, line: str,
                  parts: List[str]) -> WindowRule:
    if len(parts) != 6:
        raise SloParseError(
            f"line {line_no}: expected '<scope> window <agg> <metric> "
            f"<op> <threshold>', got {raw!r}")
    scope, _, agg, metric, op, threshold_text = parts
    if agg not in _AGGS or agg == "min":
        raise SloParseError(
            f"line {line_no}: unknown window aggregation {agg!r} (use "
            f"one of {', '.join(a for a in _AGGS if a != 'min')}; "
            f"windows carry histograms, so 'min' cannot be answered)")
    _check_op(line_no, op)
    if metric not in _SERIES_METRICS and not metric.startswith("repro_"):
        raise SloParseError(
            f"line {line_no}: unknown window metric {metric!r} (use "
            f"{', '.join(sorted(_SERIES_METRICS))} or a raw repro_* "
            f"series name)")
    return WindowRule(scope=scope, agg=agg, metric=metric, op=op,
                      threshold=_parse_threshold(line_no, threshold_text),
                      source=line)


def _parse_burnrate(line_no: int, raw: str, line: str,
                    parts: List[str]) -> BurnRateRule:
    usage = ("'<scope> burnrate <bad>/<total> <fires|quiet> budget=F "
             "factor=X fast=N slow=M [clear=K]'")
    if len(parts) < 4:
        raise SloParseError(
            f"line {line_no}: expected {usage}, got {raw!r}")
    scope, _, ratio, mode = parts[:4]
    if ratio.count("/") != 1:
        raise SloParseError(
            f"line {line_no}: burn-rate ratio must be '<bad>/<total>', "
            f"got {ratio!r}")
    bad, total = ratio.split("/")
    if not bad or not total:
        raise SloParseError(
            f"line {line_no}: burn-rate ratio must be '<bad>/<total>', "
            f"got {ratio!r}")
    if mode not in ("fires", "quiet"):
        raise SloParseError(
            f"line {line_no}: burn-rate mode must be 'fires' or "
            f"'quiet', got {mode!r}")
    options: Dict[str, str] = {}
    for token in parts[4:]:
        if "=" not in token:
            raise SloParseError(
                f"line {line_no}: expected key=value, got {token!r}")
        key, value = token.split("=", 1)
        if key not in ("budget", "factor", "fast", "slow", "clear"):
            raise SloParseError(
                f"line {line_no}: unknown burn-rate option {key!r}")
        if key in options:
            raise SloParseError(
                f"line {line_no}: duplicate burn-rate option {key!r}")
        options[key] = value
    for required in ("budget", "factor", "fast", "slow"):
        if required not in options:
            raise SloParseError(
                f"line {line_no}: burn-rate rule is missing "
                f"'{required}=' ({usage})")
    try:
        budget = float(options["budget"])
        factor = float(options["factor"])
        fast = int(options["fast"])
        slow = int(options["slow"])
        clear = int(options.get("clear", "0"))
    except ValueError as error:
        raise SloParseError(
            f"line {line_no}: bad burn-rate option value") from error
    if not 0.0 < budget <= 1.0:
        raise SloParseError(
            f"line {line_no}: budget must be in (0, 1], got {budget:g}")
    if factor <= 0.0:
        raise SloParseError(
            f"line {line_no}: factor must be > 0, got {factor:g}")
    if fast < 1 or slow < fast:
        raise SloParseError(
            f"line {line_no}: need 1 <= fast <= slow, got "
            f"fast={fast} slow={slow}")
    if clear < 0:
        raise SloParseError(
            f"line {line_no}: clear must be >= 0, got {clear}")
    return BurnRateRule(scope=scope, bad=bad, total=total, mode=mode,
                        budget=budget, factor=factor, fast=fast,
                        slow=slow, clear=clear, source=line)


def _check_op(line_no: int, op: str) -> None:
    if op not in _OPS:
        raise SloParseError(
            f"line {line_no}: unknown operator {op!r} "
            f"(use one of {', '.join(_OPS)})")


def _parse_threshold(line_no: int, text: str) -> float:
    try:
        return float(text)
    except ValueError as error:
        raise SloParseError(
            f"line {line_no}: bad threshold {text!r}") from error


def _aggregate(samples: List[float], agg: str) -> float:
    if agg == "min":
        return min(samples)
    if agg == "max":
        return max(samples)
    if agg == "mean":
        return sum(samples) / len(samples)
    return percentile(samples, float(agg[1:]))


def _budget_samples(rule: SloRule,
                    documents: List[Dict[str, Any]]) -> List[float]:
    """Raw samples matching the rule across all budget documents."""
    samples: List[float] = []
    for document in documents:
        if document.get("format") != "repro-budget-v1":
            continue
        for row in document.get("rows", []):
            if rule.scope != "*" and row.get("deployment") != rule.scope:
                continue
            if rule.metric == "resolve_ms":
                samples.extend(row.get("resolve_ms", {}).get("samples", []))
            else:
                stage = rule.metric[len("stage."):-len("_ms")]
                entry = row.get("stages", {}).get(stage)
                if entry is not None:
                    samples.extend(entry.get("samples", []))
    return samples


def _histogram_estimate(rule: SloRule,
                        documents: List[Dict[str, Any]]
                        ) -> Optional[float]:
    """Estimate the rule's aggregate from a telemetry-artifact histogram.

    Only ``*``-scoped rules over histogram-backed metrics can use this
    path (the histogram is not labeled by deployment).  Quantiles use
    Prometheus-style linear interpolation within the containing bucket.
    """
    name = _HISTOGRAM_METRICS.get(rule.metric)
    if name is None or rule.scope != "*":
        return None
    for document in documents:
        if document.get("format") != "repro-telemetry-v1":
            continue
        for metric in document.get("metrics", []):
            if metric.get("name") != name or metric.get("kind") != "histogram":
                continue
            for sample in metric.get("samples", []):
                count = sample.get("count", 0)
                if not count:
                    continue
                buckets = [(float("inf") if bucket["le"] == "+Inf"
                            else float(bucket["le"]), int(bucket["count"]))
                           for bucket in sample.get("buckets", [])]
                return _histogram_agg(rule.agg, count,
                                      float(sample.get("sum", 0.0)), buckets)
    return None


def _histogram_agg(agg: str, count: int, total: float,
                   buckets: List[Tuple[float, int]]) -> Optional[float]:
    if agg == "mean":
        return total / count
    if agg in ("min",):
        return None  # a histogram cannot bound the minimum
    if agg == "max":
        quantile = 100.0
    else:
        quantile = float(agg[1:])
    target = (quantile / 100.0) * count
    lower = 0.0
    cumulative_prev = 0
    for bound, cumulative in buckets:
        if cumulative >= target:
            if bound == float("inf"):
                return lower  # unbounded tail: best available estimate
            in_bucket = cumulative - cumulative_prev
            if in_bucket <= 0:
                return bound
            fraction = (target - cumulative_prev) / in_bucket
            return lower + (bound - lower) * fraction
        cumulative_prev = cumulative
        if bound != float("inf"):
            lower = bound
    return lower


def _timeseries_docs(documents: List[Dict[str, Any]]
                     ) -> List[Dict[str, Any]]:
    """Every ``repro-timeseries-v1`` document, standalone or embedded."""
    found: List[Dict[str, Any]] = []
    for document in documents:
        if document.get("format") == "repro-timeseries-v1":
            found.append(document)
            continue
        embedded = document.get("timeseries")
        if (isinstance(embedded, dict)
                and embedded.get("format") == "repro-timeseries-v1"):
            found.append(embedded)
    return found


def _scope_matches(scope: str, labels: Dict[str, Any]) -> bool:
    return scope == "*" or str(labels.get("deployment", "")) == scope


def _merged_series(documents: List[Dict[str, Any]], name: str,
                   kind: str, scope: str) -> Dict[int, List[Any]]:
    """Window-wise merge of every matching series across documents.

    Counter windows merge to ``[value]``; latency windows merge to
    ``[count, sum, {bound: count}]`` (bucket counts are per-bucket, as
    the artifact stores them).
    """
    merged: Dict[int, List[Any]] = {}
    for document in _timeseries_docs(documents):
        for series in document.get("series", []):
            if series.get("name") != name or series.get("kind") != kind:
                continue
            if not _scope_matches(scope, series.get("labels", {})):
                continue
            for window in series.get("windows", []):
                index = int(window["index"])
                if kind == "counter":
                    cell = merged.setdefault(index, [0.0])
                    cell[0] += float(window.get("value", 0.0))
                else:
                    cell = merged.setdefault(index, [0, 0.0, {}])
                    cell[0] += int(window.get("count", 0))
                    cell[1] += float(window.get("sum", 0.0))
                    for bound, count in window.get("buckets", []):
                        numeric = (float("inf") if bound == "+Inf"
                                   else float(bound))
                        cell[2][numeric] = (cell[2].get(numeric, 0)
                                            + int(count))
    return merged


def _cumulative(buckets: Dict[float, int]) -> List[Tuple[float, int]]:
    out: List[Tuple[float, int]] = []
    running = 0
    for bound in sorted(buckets):
        running += buckets[bound]
        out.append((bound, running))
    return out


def _check_window_rule(rule: WindowRule,
                       documents: List[Dict[str, Any]]) -> SloCheck:
    name = _SERIES_METRICS.get(rule.metric, rule.metric)
    merged = _merged_series(documents, name, "latency", rule.scope)
    if not merged:
        return SloCheck(rule=rule, value=None, ok=False,
                        detail="no matching data")
    first, last = min(merged), max(merged)
    compare = _OPS[rule.op]
    #: For upper-bound rules the worst window is the slowest; for
    #: reproduction (lower-bound) rules it is the fastest.
    bigger_is_worse = rule.op in ("<", "<=")
    worst: Optional[float] = None
    worst_window: Optional[int] = None
    failures: List[str] = []
    for index in range(first, last + 1):
        cell = merged.get(index)
        if cell is None or not cell[0]:
            # Strict per-window missing-data semantics: a covered-range
            # window with zero samples is an outage, not a free pass.
            failures.append(f"window {index} has no samples")
            continue
        value = _histogram_agg(rule.agg, cell[0], cell[1],
                               _cumulative(cell[2]))
        if value is None:  # pragma: no cover - min rejected at parse
            failures.append(f"window {index}: unanswerable aggregate")
            continue
        if (worst is None
                or (value > worst if bigger_is_worse else value < worst)):
            worst, worst_window = value, index
        if not compare(value, rule.threshold):
            failures.append(f"window {index}: {value:.3f}")
    windows = last - first + 1
    if failures:
        shown = "; ".join(failures[:3])
        if len(failures) > 3:
            shown += f"; +{len(failures) - 3} more"
        return SloCheck(rule=rule, value=worst, ok=False,
                        detail=f"{windows} windows; {shown}")
    return SloCheck(rule=rule, value=worst, ok=True,
                    detail=(f"{windows} windows, worst at "
                            f"window {worst_window}"))


def _resolve_counter(token: str, documents: List[Dict[str, Any]],
                     scope: str) -> Tuple[str, Dict[int, List[Any]]]:
    """Resolve a burn-rate counter name and merge its windows.

    Bare names try the control-plane family first, then the workload
    family; the first family with matching data wins.  Fully-qualified
    ``repro_*`` names skip resolution.
    """
    candidates = ([token] if token.startswith("repro_")
                  else [family + token for family in _COUNTER_FAMILIES])
    for name in candidates:
        merged = _merged_series(documents, name, "counter", scope)
        if merged:
            return name, merged
    return candidates[0], {}


def _check_burnrate_rule(rule: BurnRateRule,
                         documents: List[Dict[str, Any]]) -> SloCheck:
    _, total_wins = _resolve_counter(rule.total, documents, rule.scope)
    if not total_wins:
        return SloCheck(rule=rule, value=None, ok=False,
                        detail="no matching data")
    _, bad_wins = _resolve_counter(rule.bad, documents, rule.scope)
    first, last = min(total_wins), max(total_wins)
    if bad_wins:
        first, last = min(first, min(bad_wins)), max(last, max(bad_wins))

    def trailing(window: int, span: int,
                 cells: Dict[int, List[Any]]) -> float:
        return sum(cells[index][0]
                   for index in range(window - span + 1, window + 1)
                   if index in cells)

    fired: List[int] = []
    peak = 0.0
    for index in range(first, last + 1):
        burns: List[float] = []
        for span in (rule.fast, rule.slow):
            total = trailing(index, span, total_wins)
            bad = trailing(index, span, bad_wins)
            burns.append((bad / total) / rule.budget if total else 0.0)
        peak = max(peak, burns[0])
        if all(burn >= rule.factor for burn in burns):
            fired.append(index)

    windows = last - first + 1
    if rule.mode == "quiet":
        if fired:
            return SloCheck(
                rule=rule, value=peak, ok=False,
                detail=(f"alert fired in {len(fired)}/{windows} windows "
                        f"(first at window {fired[0]})"))
        return SloCheck(rule=rule, value=peak, ok=True,
                        detail=f"quiet across {windows} windows")
    # mode == "fires": the alert must trigger, and with clear=K the
    # last K windows must be quiet again (the burn recovered).
    if not fired:
        return SloCheck(rule=rule, value=peak, ok=False,
                        detail=(f"alert never fired across {windows} "
                                f"windows (peak fast burn {peak:.2f}x)"))
    detail = (f"fired in {len(fired)}/{windows} windows "
              f"(window {fired[0]}..{fired[-1]}, "
              f"peak fast burn {peak:.2f}x)")
    if rule.clear:
        dirty = [index for index in fired if index > last - rule.clear]
        if dirty:
            return SloCheck(
                rule=rule, value=peak, ok=False,
                detail=(detail + f"; still firing at window {dirty[-1]} "
                        f"inside the final {rule.clear}-window "
                        f"clear period"))
        detail += f"; clear for the final {rule.clear} windows"
    return SloCheck(rule=rule, value=peak, ok=True, detail=detail)


def _check_point_rule(rule: SloRule,
                      documents: List[Dict[str, Any]]) -> SloCheck:
    samples = _budget_samples(rule, documents)
    if samples:
        value: Optional[float] = _aggregate(samples, rule.agg)
        detail = f"{len(samples)} samples"
    else:
        value = _histogram_estimate(rule, documents)
        detail = ("histogram estimate" if value is not None
                  else "no matching data")
    ok = value is not None and _OPS[rule.op](value, rule.threshold)
    return SloCheck(rule=rule, value=value, ok=ok, detail=detail)


def evaluate_slo(rules: Iterable[AnySloRule],
                 documents: List[Dict[str, Any]]) -> SloVerdict:
    """Check every rule against the loaded artifact documents."""
    checks: List[SloCheck] = []
    for rule in rules:
        if isinstance(rule, WindowRule):
            checks.append(_check_window_rule(rule, documents))
        elif isinstance(rule, BurnRateRule):
            checks.append(_check_burnrate_rule(rule, documents))
        else:
            checks.append(_check_point_rule(rule, documents))
    return SloVerdict(checks=checks)
