"""Declarative latency SLOs evaluated over run artifacts.

An ``.slo`` file is a list of one-line rules::

    # scope       agg  metric              op  threshold-ms
    mec-ldns-mec-cdns p99 resolve_ms       <   20
    mec-ldns-mec-cdns mean stage.radio_ms  <   15
    *                 p50 resolve_ms       <   120

* **scope** — a deployment key, or ``*`` to pool every deployment;
* **agg** — ``min``/``max``/``mean``/``p50``/``p90``/``p95``/``p99``;
* **metric** — ``resolve_ms`` (end-to-end resolution latency) or
  ``stage.<name>_ms`` (one critical-path stage, see
  :data:`repro.profile.criticalpath.STAGES`);
* **op** — ``<``, ``<=``, ``>``, ``>=`` (``>`` rules let a budget
  assert that, e.g., the WAN deployment really is over budget — a
  reproduction claim, not just a performance wish);
* **threshold** — milliseconds.

Rules are evaluated against machine-readable artifacts the toolchain
already writes: ``repro-budget-v1`` documents (raw samples — any
quantile computes exactly) and, as a fallback for ``*``-scoped
``resolve_ms`` rules, the ``repro-telemetry-v1`` metrics artifact
(quantiles estimated from the ``repro_lookup_latency_ms`` histogram by
linear interpolation within the bucket, Prometheus-style).

A rule that cannot be evaluated — no matching deployment, no samples —
**fails**: a gate that silently passes on missing data is worse than no
gate.  ``repro slo`` renders the verdict as text or a
``repro-slo-v1`` JSON document and exits 1 on any breach.
"""

from __future__ import annotations

import json
from typing import (Any, Callable, Dict, Iterable, List, NamedTuple,
                    Optional, Tuple)

from repro.profile.budget import percentile

#: Metric names answerable from the telemetry-artifact histograms.
_HISTOGRAM_METRICS = {"resolve_ms": "repro_lookup_latency_ms"}

_OPS: Dict[str, Callable[[float, float], bool]] = {
    "<": lambda value, bound: value < bound,
    "<=": lambda value, bound: value <= bound,
    ">": lambda value, bound: value > bound,
    ">=": lambda value, bound: value >= bound,
}

_AGGS = ("min", "max", "mean", "p50", "p90", "p95", "p99")


class SloParseError(ValueError):
    """A malformed rule line (message carries the line number)."""


class SloRule(NamedTuple):
    """One parsed SLO line."""

    scope: str
    agg: str
    metric: str
    op: str
    threshold: float
    source: str

    def describe(self) -> str:
        """The rule re-rendered in canonical ``.slo`` line form."""
        return (f"{self.scope} {self.agg} {self.metric} "
                f"{self.op} {self.threshold:g}")


class SloCheck(NamedTuple):
    """One rule's outcome against the supplied artifacts."""

    rule: SloRule
    #: Observed aggregate; ``None`` when no data matched the rule.
    value: Optional[float]
    ok: bool
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        """One check of the ``repro-slo-v1`` document."""
        return {"rule": self.rule.describe(), "scope": self.rule.scope,
                "agg": self.rule.agg, "metric": self.rule.metric,
                "op": self.rule.op, "threshold": self.rule.threshold,
                "value": self.value, "ok": self.ok, "detail": self.detail}


class SloVerdict(NamedTuple):
    """Every rule's outcome; the gate passes only when all do."""

    checks: List[SloCheck]

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def to_dict(self) -> Dict[str, Any]:
        """The machine-readable ``repro-slo-v1`` verdict document."""
        return {"format": "repro-slo-v1", "ok": self.ok,
                "checks": [check.to_dict() for check in self.checks]}

    def render_text(self) -> str:
        """Human-readable PASS/FAIL lines plus the verdict summary."""
        lines = []
        for check in self.checks:
            mark = "PASS" if check.ok else "FAIL"
            shown = ("n/a" if check.value is None
                     else f"{check.value:.3f}")
            lines.append(f"[{mark}] {check.rule.describe():48s} "
                         f"observed {shown} ({check.detail})")
        verdict = "OK" if self.ok else "BREACH"
        failed = sum(1 for check in self.checks if not check.ok)
        lines.append(f"slo: {verdict} — {len(self.checks)} rules, "
                     f"{failed} failing")
        return "\n".join(lines)

    def write(self, path: str) -> None:
        """Serialize :meth:`to_dict` as stable JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def parse_slo_text(text: str) -> List[SloRule]:
    """Parse the ``.slo`` rule format; raises :class:`SloParseError`."""
    rules: List[SloRule] = []
    for line_no, raw in enumerate(text.splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 5:
            raise SloParseError(
                f"line {line_no}: expected "
                f"'<scope> <agg> <metric> <op> <threshold>', got {raw!r}")
        scope, agg, metric, op, threshold_text = parts
        if agg not in _AGGS:
            raise SloParseError(
                f"line {line_no}: unknown aggregation {agg!r} "
                f"(use one of {', '.join(_AGGS)})")
        if op not in _OPS:
            raise SloParseError(
                f"line {line_no}: unknown operator {op!r} "
                f"(use one of {', '.join(_OPS)})")
        if not (metric == "resolve_ms"
                or (metric.startswith("stage.") and metric.endswith("_ms"))):
            raise SloParseError(
                f"line {line_no}: unknown metric {metric!r} (use "
                f"'resolve_ms' or 'stage.<name>_ms')")
        try:
            threshold = float(threshold_text)
        except ValueError as error:
            raise SloParseError(
                f"line {line_no}: bad threshold {threshold_text!r}"
            ) from error
        rules.append(SloRule(scope=scope, agg=agg, metric=metric, op=op,
                             threshold=threshold, source=line))
    return rules


def _aggregate(samples: List[float], agg: str) -> float:
    if agg == "min":
        return min(samples)
    if agg == "max":
        return max(samples)
    if agg == "mean":
        return sum(samples) / len(samples)
    return percentile(samples, float(agg[1:]))


def _budget_samples(rule: SloRule,
                    documents: List[Dict[str, Any]]) -> List[float]:
    """Raw samples matching the rule across all budget documents."""
    samples: List[float] = []
    for document in documents:
        if document.get("format") != "repro-budget-v1":
            continue
        for row in document.get("rows", []):
            if rule.scope != "*" and row.get("deployment") != rule.scope:
                continue
            if rule.metric == "resolve_ms":
                samples.extend(row.get("resolve_ms", {}).get("samples", []))
            else:
                stage = rule.metric[len("stage."):-len("_ms")]
                entry = row.get("stages", {}).get(stage)
                if entry is not None:
                    samples.extend(entry.get("samples", []))
    return samples


def _histogram_estimate(rule: SloRule,
                        documents: List[Dict[str, Any]]
                        ) -> Optional[float]:
    """Estimate the rule's aggregate from a telemetry-artifact histogram.

    Only ``*``-scoped rules over histogram-backed metrics can use this
    path (the histogram is not labeled by deployment).  Quantiles use
    Prometheus-style linear interpolation within the containing bucket.
    """
    name = _HISTOGRAM_METRICS.get(rule.metric)
    if name is None or rule.scope != "*":
        return None
    for document in documents:
        if document.get("format") != "repro-telemetry-v1":
            continue
        for metric in document.get("metrics", []):
            if metric.get("name") != name or metric.get("kind") != "histogram":
                continue
            for sample in metric.get("samples", []):
                count = sample.get("count", 0)
                if not count:
                    continue
                buckets = [(float("inf") if bucket["le"] == "+Inf"
                            else float(bucket["le"]), int(bucket["count"]))
                           for bucket in sample.get("buckets", [])]
                return _histogram_agg(rule.agg, count,
                                      float(sample.get("sum", 0.0)), buckets)
    return None


def _histogram_agg(agg: str, count: int, total: float,
                   buckets: List[Tuple[float, int]]) -> Optional[float]:
    if agg == "mean":
        return total / count
    if agg in ("min",):
        return None  # a histogram cannot bound the minimum
    if agg == "max":
        quantile = 100.0
    else:
        quantile = float(agg[1:])
    target = (quantile / 100.0) * count
    lower = 0.0
    cumulative_prev = 0
    for bound, cumulative in buckets:
        if cumulative >= target:
            if bound == float("inf"):
                return lower  # unbounded tail: best available estimate
            in_bucket = cumulative - cumulative_prev
            if in_bucket <= 0:
                return bound
            fraction = (target - cumulative_prev) / in_bucket
            return lower + (bound - lower) * fraction
        cumulative_prev = cumulative
        if bound != float("inf"):
            lower = bound
    return lower


def evaluate_slo(rules: Iterable[SloRule],
                 documents: List[Dict[str, Any]]) -> SloVerdict:
    """Check every rule against the loaded artifact documents."""
    checks: List[SloCheck] = []
    for rule in rules:
        samples = _budget_samples(rule, documents)
        if samples:
            value: Optional[float] = _aggregate(samples, rule.agg)
            detail = f"{len(samples)} samples"
        else:
            value = _histogram_estimate(rule, documents)
            detail = ("histogram estimate" if value is not None
                      else "no matching data")
        ok = value is not None and _OPS[rule.op](value, rule.threshold)
        checks.append(SloCheck(rule=rule, value=value, ok=ok, detail=detail))
    return SloVerdict(checks=checks)
