"""Per-deployment latency-budget reports from measured lookup traces.

This is the analyzer that turns a figure5-style run's spans into the
question the paper actually asks: *for each deployment option, where
does the sub-20 ms budget go?*  Every non-warmup ``measure/lookup``
root span (tagged with its deployment key by the measure runner) is
attributed stage by stage via :mod:`repro.profile.criticalpath`, and
the per-deployment distributions are summarized the usual way (mean,
p50/p95/p99, max).

The serialized document (``repro-budget-v1``) keeps the raw samples,
not just the aggregates, so downstream SLO evaluation
(:mod:`repro.profile.slo`) can compute any quantile without re-running
the simulation.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List, NamedTuple, Sequence

from repro.profile.criticalpath import STAGES, analyze_trace
from repro.telemetry import Span


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile (pct in [0, 100]).

    Mirrors ``repro.measure.stats.percentile`` exactly; a local copy
    keeps this package importable without the measure layer.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile {pct} out of [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * weight


class StageBudget(NamedTuple):
    """One stage's share of one deployment's lookups."""

    mean_ms: float
    samples: List[float]


class BudgetRow(NamedTuple):
    """One deployment's resolution-latency budget."""

    deployment: str
    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    samples: List[float]
    #: Keyed by stage name, canonical :data:`STAGES` order, only
    #: stages that received any time.
    stages: Dict[str, StageBudget]


class BudgetReport(NamedTuple):
    """Budget rows for every deployment seen in a run's spans."""

    rows: List[BudgetRow]

    def row(self, deployment: str) -> BudgetRow:
        """The row for one deployment key; raises ``KeyError`` if absent."""
        for candidate in self.rows:
            if candidate.deployment == deployment:
                return candidate
        raise KeyError(deployment)

    def to_dict(self) -> Dict[str, Any]:
        """The machine-readable ``repro-budget-v1`` document."""
        return {
            "format": "repro-budget-v1",
            "rows": [{
                "deployment": row.deployment,
                "count": row.count,
                "resolve_ms": {
                    "mean": row.mean_ms,
                    "p50": row.p50_ms,
                    "p95": row.p95_ms,
                    "p99": row.p99_ms,
                    "max": row.max_ms,
                    "samples": list(row.samples),
                },
                "stages": {stage: {"mean_ms": budget.mean_ms,
                                   "samples": list(budget.samples)}
                           for stage, budget in row.stages.items()},
            } for row in self.rows],
        }

    def render(self) -> str:
        """The budget as a text report: latency table + stage means."""
        stage_names = [stage for stage in STAGES
                       if any(stage in row.stages for row in self.rows)]
        lines = [f"{'deployment':22s} {'n':>4s} {'mean':>8s} {'p50':>8s} "
                 f"{'p95':>8s} {'p99':>8s} {'max':>8s}"]
        for row in self.rows:
            lines.append(f"{row.deployment:22s} {row.count:4d} "
                         f"{row.mean_ms:8.2f} {row.p50_ms:8.2f} "
                         f"{row.p95_ms:8.2f} {row.p99_ms:8.2f} "
                         f"{row.max_ms:8.2f}")
        lines.append("")
        header = f"{'stage means (ms)':22s}" + "".join(
            f" {stage:>18s}" for stage in stage_names)
        lines.append(header)
        for row in self.rows:
            cells = "".join(
                f" {row.stages[stage].mean_ms:18.3f}"
                if stage in row.stages else f" {'-':>18s}"
                for stage in stage_names)
            lines.append(f"{row.deployment:22s}{cells}")
        return "\n".join(lines)

    def write(self, path: str) -> None:
        """Serialize :meth:`to_dict` as stable JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def budget_report(spans: Iterable[Span]) -> BudgetReport:
    """Build the per-deployment budget from a run's finished spans.

    Rows come out sorted by deployment key so the report (and its JSON
    document) is deterministic regardless of trial completion order.
    """
    materialized = [span for span in spans if span.end_ms is not None]
    by_trace: Dict[int, List[Span]] = {}
    for span in materialized:
        by_trace.setdefault(span.trace_id, []).append(span)

    grouped: Dict[str, List[int]] = {}
    for span in materialized:
        if (span.name != "lookup" or span.category != "measure"
                or span.attrs.get("warmup")):
            continue
        deployment = str(span.attrs.get("deployment", "unknown"))
        grouped.setdefault(deployment, []).append(span.trace_id)

    rows: List[BudgetRow] = []
    for deployment in sorted(grouped):
        resolve_samples: List[float] = []
        stage_samples: Dict[str, List[float]] = {}
        for trace_id in grouped[deployment]:
            path = analyze_trace(by_trace.get(trace_id, []), trace_id)
            resolve_samples.append(path.total_ms)
            # Record every stage for every lookup (zeros included), so
            # stage sample series align with the resolve series and
            # quantiles over them are meaningful.
            for stage in STAGES:
                stage_samples.setdefault(stage, []).append(
                    path.stage_ms(stage))
        stages = {stage: StageBudget(
                      mean_ms=sum(stage_samples[stage])
                      / len(stage_samples[stage]),
                      samples=stage_samples[stage])
                  for stage in STAGES
                  if stage in stage_samples
                  and any(stage_samples[stage])}
        rows.append(BudgetRow(
            deployment=deployment,
            count=len(resolve_samples),
            mean_ms=sum(resolve_samples) / len(resolve_samples),
            p50_ms=percentile(resolve_samples, 50),
            p95_ms=percentile(resolve_samples, 95),
            p99_ms=percentile(resolve_samples, 99),
            max_ms=max(resolve_samples),
            samples=resolve_samples,
            stages=stages))
    return BudgetReport(rows=rows)
