"""The client-side stub resolver and its ``dig``-style result.

:class:`DigResult` carries exactly what the paper reads off ``dig``:
status, the answer section, and the query time in milliseconds.  The
experiments (Figures 2 and 5) are built from sequences of these results.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.dnswire.edns import Edns
from repro.dnswire.message import Message, ResourceRecord, make_query
from repro.dnswire.name import Name
from repro.dnswire.types import Rcode, RecordType
from repro.errors import QueryTimeout, WireFormatError
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.packet import Endpoint
from repro.netsim.socket import UdpSocket


class DigResult:
    """One completed DNS lookup as seen by the client."""

    __slots__ = ("question_name", "rtype", "response", "query_time_ms",
                 "server", "attempts", "started_at")

    def __init__(self, question_name: Name, rtype: RecordType,
                 response: Message, query_time_ms: float, server: Endpoint,
                 attempts: int, started_at: float) -> None:
        self.question_name = question_name
        self.rtype = rtype
        self.response = response
        self.query_time_ms = query_time_ms
        self.server = server
        self.attempts = attempts
        self.started_at = started_at

    @property
    def status(self) -> str:
        return self.response.rcode.name

    @property
    def addresses(self) -> List[str]:
        return self.response.answer_addresses()

    def __repr__(self) -> str:
        return (f"DigResult({self.question_name} {self.rtype.name} -> "
                f"{self.status} {self.addresses} in {self.query_time_ms:.2f}ms)")


class StubResolver:
    """Issues queries from a client host to a configured resolver."""

    def __init__(self, network: Network, host: Host, server: Endpoint,
                 timeout: float = 3000.0, retries: int = 2,
                 source_ip: Optional[str] = None) -> None:
        self.network = network
        self.host = host
        self.server = server
        self.timeout = timeout
        self.retries = retries
        self.source_ip = source_ip
        self._rng = network.streams.stream(f"stub:{host.name}")
        self.queries_issued = 0
        self.timeouts_seen = 0
        self.tcp_fallbacks = 0

    def query(self, name: Name, rtype: RecordType = RecordType.A,
              server: Optional[Endpoint] = None,
              edns: Optional[Edns] = None,
              timeout: Optional[float] = None,
              authorities: Optional[List["ResourceRecord"]] = None) -> Generator:
        """Process returning a :class:`DigResult` (raises QueryTimeout).

        ``authorities`` lets callers put records in the request's
        authority section — IXFR carries the client's current SOA there.
        """
        target = server or self.server
        per_try_timeout = timeout if timeout is not None else self.timeout
        started_at = self.network.sim.now
        last_error: Optional[Exception] = None
        for attempt in range(1, self.retries + 2):
            msg_id = self._rng.randrange(1, 0xFFFF)
            query = make_query(name, rtype, msg_id=msg_id, edns=edns)
            if authorities:
                query.authorities = list(authorities)
            sock = UdpSocket(self.host, ip=self.source_ip)
            self.queries_issued += 1
            try:
                reply = yield sock.request(query.to_wire(), target,
                                           per_try_timeout)
            except QueryTimeout as error:
                self.timeouts_seen += 1
                last_error = error
                continue
            finally:
                sock.close()
            try:
                response = Message.from_wire(reply.payload)
            except WireFormatError as error:
                last_error = error
                continue
            if response.msg_id != msg_id:
                last_error = WireFormatError("transaction id mismatch")
                continue
            if response.flags.tc:
                # Truncated: retry the same query over the stream
                # transport (RFC 7766), like dig's automatic +tcp retry.
                response = yield from self._retry_over_stream(query, target)
            return DigResult(
                question_name=name, rtype=rtype, response=response,
                query_time_ms=self.network.sim.now - started_at,
                server=target, attempts=attempt, started_at=started_at)
        raise last_error if last_error is not None else QueryTimeout(
            f"query for {name} failed")

    def _retry_over_stream(self, query: Message,
                           target: Endpoint) -> Generator:
        from repro.netsim.stream import open_channel
        from repro.resolver.server import DNS_TCP_PORT
        self.tcp_fallbacks += 1
        channel = yield from open_channel(
            self.network, self.host, Endpoint(target.ip, DNS_TCP_PORT))
        try:
            raw = yield from channel.exchange(query.to_wire())
        finally:
            channel.close()
        response = Message.from_wire(raw)
        if response.msg_id != query.msg_id:
            raise WireFormatError("tcp retry transaction id mismatch")
        return response

    def resolve_addresses(self, name: Name,
                          server: Optional[Endpoint] = None) -> Generator:
        """Process returning the list of A addresses (empty on NXDOMAIN)."""
        result = yield from self.query(name, RecordType.A, server=server)
        if result.response.rcode == Rcode.NXDOMAIN:
            return []
        return result.addresses
