"""The client-side stub resolver and its ``dig``-style result.

:class:`DigResult` carries exactly what the paper reads off ``dig``:
status, the answer section, and the query time in milliseconds.  The
experiments (Figures 2 and 5) are built from sequences of these results.

Resilience (see :mod:`repro.resolver.retry`): a stub built with a
:class:`~repro.resolver.retry.RetryPolicy` retries with exponential
backoff and jitter, respects a shared retry budget, and can hedge the
first attempt with a second racing query.  SERVFAIL responses are
retried like transport failures — a resolver that answered "I am
broken" is no more settled than one that said nothing.  Without a
policy the stub behaves exactly as it always has.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.dnswire.edns import Edns
from repro.dnswire.message import (Message, ResourceRecord, cached_wire,
                                    make_query)
from repro.dnswire.name import Name
from repro.dnswire.types import Rcode, RecordType
from repro.errors import QueryTimeout, WireFormatError
from repro.netsim.engine import ProcessFailed, SimFuture
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.packet import Endpoint
from repro.netsim.socket import UdpSocket
from repro.resolver.retry import RetryPolicy


class DigResult:
    """One completed DNS lookup as seen by the client."""

    __slots__ = ("question_name", "rtype", "response", "query_time_ms",
                 "server", "attempts", "started_at")

    def __init__(self, question_name: Name, rtype: RecordType,
                 response: Message, query_time_ms: float, server: Endpoint,
                 attempts: int, started_at: float) -> None:
        self.question_name = question_name
        self.rtype = rtype
        self.response = response
        self.query_time_ms = query_time_ms
        self.server = server
        self.attempts = attempts
        self.started_at = started_at

    @property
    def status(self) -> str:
        return self.response.rcode.name

    @property
    def addresses(self) -> List[str]:
        return self.response.answer_addresses()

    @property
    def stale(self) -> bool:
        """Whether the answer was served past its TTL (RFC 8767).

        Stale answers carry the RFC 8914 "Stale Answer" extended error
        option, which is how a real resolver marks them on the wire.
        """
        edns = self.response.edns
        if edns is None:
            return False
        ede = edns.extended_error
        return ede is not None and ede.is_stale_answer

    def __repr__(self) -> str:
        flavor = " (stale)" if self.stale else ""
        return (f"DigResult({self.question_name} {self.rtype.name} -> "
                f"{self.status} {self.addresses}{flavor} "
                f"in {self.query_time_ms:.2f}ms)")


class StubResolver:
    """Issues queries from a client host to a configured resolver."""

    def __init__(self, network: Network, host: Host, server: Endpoint,
                 timeout: float = 3000.0, retries: int = 2,
                 source_ip: Optional[str] = None,
                 policy: Optional[RetryPolicy] = None) -> None:
        self.network = network
        self.host = host
        self.server = server
        self.timeout = timeout
        self.retries = retries
        self.source_ip = source_ip
        self.policy = policy
        self._rng = network.streams.stream(f"stub:{host.name}")
        self.queries_issued = 0
        self.timeouts_seen = 0
        self.tcp_fallbacks = 0
        self.servfails_seen = 0
        self.hedges_sent = 0

    def _count(self, metric: str, help: str) -> None:
        tel = self.network.telemetry
        if tel is not None:
            tel.metrics.counter(metric, help).inc(client=self.host.name)

    def query(self, name: Name, rtype: RecordType = RecordType.A,
              server: Optional[Endpoint] = None,
              edns: Optional[Edns] = None,
              timeout: Optional[float] = None,
              authorities: Optional[List["ResourceRecord"]] = None,
              ctx=None) -> Generator:
        """Process returning a :class:`DigResult` (raises QueryTimeout).

        ``authorities`` lets callers put records in the request's
        authority section — IXFR carries the client's current SOA there.
        ``ctx`` optionally joins an existing telemetry trace; with no
        telemetry attached the lookup runs exactly as it always has.
        """
        target = server or self.server
        tel = self.network.telemetry
        if tel is None:
            result = yield from self._query_impl(name, rtype, target, edns,
                                                 timeout, authorities, None)
            return result
        span = tel.tracer.begin("stub.query", "resolver", self.host.name,
                                parent=ctx, qname=str(name),
                                rtype=rtype.name, server=str(target))
        tel.metrics.counter("repro_stub_lookups_total",
                            "client lookups started").inc(
                                client=self.host.name)
        try:
            result = yield from self._query_impl(
                name, rtype, target, edns, timeout, authorities,
                span.context if span is not None else ctx)
        except Exception as error:
            tel.metrics.counter("repro_stub_failures_total",
                                "lookups that exhausted every retry").inc(
                                    kind=type(error).__name__)
            tel.tracer.end(span, status="FAILED",
                           error=type(error).__name__)
            raise
        tel.tracer.end(span, status=result.status,
                       attempts=result.attempts, stale=result.stale)
        return result

    def _query_impl(self, name: Name, rtype: RecordType, target: Endpoint,
                    edns: Optional[Edns], timeout: Optional[float],
                    authorities: Optional[List["ResourceRecord"]],
                    ctx) -> Generator:
        policy = self.policy
        started_at = self.network.sim.now
        max_attempts = (policy.retries if policy is not None
                        else self.retries) + 1
        if policy is not None and policy.budget is not None:
            policy.budget.record_request()
        last_error: Optional[Exception] = None
        last_servfail: Optional[DigResult] = None
        attempt = 0
        while attempt < max_attempts:
            attempt += 1
            if timeout is not None:
                per_try_timeout = timeout
            elif policy is not None:
                per_try_timeout = policy.timeout_for(attempt, self._rng)
            else:
                per_try_timeout = self.timeout
            msg_id = self._rng.randrange(1, 0xFFFF)
            try:
                if (policy is not None and policy.hedge_after_ms is not None
                        and attempt == 1):
                    response = yield from self._hedged_probe(
                        name, rtype, edns, authorities, target,
                        per_try_timeout, msg_id, ctx=ctx)
                else:
                    response = yield from self._probe(
                        name, rtype, edns, authorities, target,
                        per_try_timeout, msg_id, attempt=attempt, ctx=ctx)
            except QueryTimeout as error:
                self.timeouts_seen += 1
                self._count("repro_stub_timeouts_total",
                            "per-attempt timeouts burned")
                last_error = error
            except WireFormatError as error:
                last_error = error
            else:
                result = DigResult(
                    question_name=name, rtype=rtype, response=response,
                    query_time_ms=self.network.sim.now - started_at,
                    server=target, attempts=attempt, started_at=started_at)
                if response.rcode != Rcode.SERVFAIL:
                    return result
                # SERVFAIL is as unsettled as silence: retry while the
                # policy allows, but keep the response so exhaustion
                # returns the server's verdict instead of raising.
                self.servfails_seen += 1
                self._count("repro_stub_servfails_total",
                            "SERVFAIL responses absorbed by retries")
                last_servfail = result
                last_error = None
            if attempt >= max_attempts:
                break
            if policy is not None and not policy.may_retry(attempt):
                break
        if last_servfail is not None:
            return last_servfail
        raise last_error if last_error is not None else QueryTimeout(
            f"query for {name} failed")

    # -- probes -----------------------------------------------------------------

    def _probe(self, name: Name, rtype: RecordType, edns: Optional[Edns],
               authorities: Optional[List[ResourceRecord]], target: Endpoint,
               per_try_timeout: float, msg_id: int, attempt: int = 1,
               ctx=None, hedge: bool = False) -> Generator:
        """Process: one query/response round, TCP fallback included."""
        query = make_query(name, rtype, msg_id=msg_id, edns=edns)
        if authorities:
            query.authorities = list(authorities)
        sock = UdpSocket(self.host, ip=self.source_ip)
        self.queries_issued += 1
        tel = self.network.telemetry
        span = None
        if tel is not None:
            span = tel.tracer.begin("stub.attempt", "resolver",
                                    self.host.name, parent=ctx,
                                    attempt=attempt, hedge=hedge,
                                    server=str(target))
            tel.metrics.counter("repro_stub_attempts_total",
                                "client transmissions").inc(
                                    server=target.ip)
        probe_ctx = span.context if span is not None else ctx
        try:
            reply = yield sock.request(cached_wire(query), target,
                                       per_try_timeout, ctx=probe_ctx)
        except Exception as error:
            if tel is not None:
                tel.tracer.end(span, outcome=type(error).__name__)
            raise
        finally:
            sock.close()
        try:
            view = reply.claim_view()
            response = view if isinstance(view, Message) \
                else Message.from_wire(reply.payload)
            if response.msg_id != msg_id:
                raise WireFormatError("transaction id mismatch")
            if response.flags.tc:
                # Truncated: retry the same query over the stream
                # transport (RFC 7766), like dig's automatic +tcp retry.
                response = yield from self._retry_over_stream(
                    query, target, timeout=per_try_timeout, ctx=probe_ctx)
        except Exception as error:
            if tel is not None:
                tel.tracer.end(span, outcome=type(error).__name__)
            raise
        if tel is not None:
            tel.tracer.end(span, outcome=response.rcode.name)
        return response

    def _hedged_probe(self, name: Name, rtype: RecordType,
                      edns: Optional[Edns],
                      authorities: Optional[List[ResourceRecord]],
                      target: Endpoint, per_try_timeout: float,
                      msg_id: int, ctx=None) -> Generator:
        """Process: race the probe against a delayed identical hedge."""
        sim = self.network.sim
        hedge_msg_id = self._rng.randrange(1, 0xFFFF)
        primary = sim.spawn(self._probe(
            name, rtype, edns, authorities, target, per_try_timeout, msg_id,
            ctx=ctx))
        hedge = sim.spawn(self._hedge_after(
            primary, name, rtype, edns, authorities, target,
            per_try_timeout, hedge_msg_id, ctx=ctx))
        try:
            response = yield sim.first_success([primary, hedge])
        except ProcessFailed as error:
            cause = error.__cause__
            if isinstance(cause, (QueryTimeout, WireFormatError)):
                raise cause
            raise
        return response

    def _hedge_after(self, primary: SimFuture, name: Name, rtype: RecordType,
                     edns: Optional[Edns],
                     authorities: Optional[List[ResourceRecord]],
                     target: Endpoint, per_try_timeout: float,
                     msg_id: int, ctx=None) -> Generator:
        assert self.policy is not None
        yield self.policy.hedge_after_ms
        if primary.done and primary.error is None:
            raise QueryTimeout("hedge not needed; primary already answered")
        self.hedges_sent += 1
        self._count("repro_stub_hedges_total",
                    "hedged second queries actually transmitted")
        response = yield from self._probe(
            name, rtype, edns, authorities, target, per_try_timeout, msg_id,
            ctx=ctx, hedge=True)
        return response

    def _retry_over_stream(self, query: Message, target: Endpoint,
                           timeout: Optional[float] = None,
                           ctx=None) -> Generator:
        from repro.netsim.stream import open_channel
        from repro.resolver.server import DNS_TCP_PORT
        self.tcp_fallbacks += 1
        tel = self.network.telemetry
        span = None
        if tel is not None:
            span = tel.tracer.begin("stub.tcp-fallback", "resolver",
                                    self.host.name, parent=ctx,
                                    server=str(target))
            tel.metrics.counter("repro_stub_tcp_fallbacks_total",
                                "truncated replies retried over TCP").inc()
        try:
            channel = yield from open_channel(
                self.network, self.host, Endpoint(target.ip, DNS_TCP_PORT),
                timeout=timeout)
            try:
                raw = yield from channel.exchange(cached_wire(query),
                                                  timeout=timeout)
            finally:
                channel.close()
            response = Message.from_wire(raw)
            if response.msg_id != query.msg_id:
                raise WireFormatError("tcp retry transaction id mismatch")
        except Exception as error:
            if tel is not None:
                tel.tracer.end(span, outcome=type(error).__name__)
            raise
        if tel is not None:
            tel.tracer.end(span, outcome=response.rcode.name)
        return response

    def resolve_addresses(self, name: Name,
                          server: Optional[Endpoint] = None) -> Generator:
        """Process returning the list of A addresses (empty on NXDOMAIN)."""
        result = yield from self.query(name, RecordType.A, server=server)
        if result.response.rcode == Rcode.NXDOMAIN:
            return []
        return result.addresses
