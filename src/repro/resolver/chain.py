"""A CoreDNS-style plugin chain.

CoreDNS (the Kubernetes DNS server the paper's prototype re-purposes as
the MEC L-DNS) processes every query through an ordered chain of plugins;
each plugin may answer, rewrite, or pass the query on.  The MEC package
builds its CoreDNS analog from this chain with `kubernetes`,
`stubdomain/forward`, and `split-namespace` plugins.
"""

from __future__ import annotations

import inspect
from typing import Any, Dict, Generator, List, Optional

from repro.dnswire.message import Message, make_response
from repro.dnswire.types import Rcode
from repro.netsim.packet import Endpoint


class QueryContext:
    """Mutable state threaded through the plugin chain for one query."""

    def __init__(self, query: Message, client: Endpoint) -> None:
        self.query = query
        self.client = client
        self.response: Optional[Message] = None
        #: Free-form annotations plugins leave for each other
        #: (e.g. the namespace view selected for this client).
        self.metadata: Dict[str, Any] = {}
        #: Telemetry facade, current trace parent, and display track
        #: (host name); set by the server that built the context, all
        #: ignored when telemetry is off.
        self.telemetry = None
        self.trace = None
        self.track = "?"

    @property
    def qname(self):
        return self.query.question.name

    @property
    def rtype(self):
        return self.query.question.rtype


class Plugin:
    """One chain element.

    :meth:`handle` receives the context and a ``next_plugin`` continuation;
    call ``yield from next_plugin(ctx)`` to delegate down the chain.  It
    must be a generator (the chain runs as a simulator process) and should
    set ``ctx.response`` (or leave it for a later plugin).
    """

    name = "plugin"

    def handle(self, ctx: QueryContext, next_plugin) -> Generator:
        """Chain hook: answer, annotate, or delegate to ``next_plugin``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class PluginChain:
    """An ordered list of plugins terminating in REFUSED."""

    def __init__(self, plugins: List[Plugin]) -> None:
        self.plugins = list(plugins)

    def run(self, ctx: QueryContext) -> Generator:
        """Process: run the chain; returns the response message."""
        def make_continuation(index: int):
            def continuation(inner_ctx: QueryContext) -> Generator:
                if index >= len(self.plugins):
                    # End of chain with no answer: refuse, as CoreDNS does
                    # without a fallthrough target.
                    inner_ctx.response = make_response(
                        inner_ctx.query, rcode=Rcode.REFUSED)
                    return inner_ctx.response
                plugin = self.plugins[index]
                tel = inner_ctx.telemetry
                span = None
                outer_trace = inner_ctx.trace
                if tel is not None:
                    span = tel.tracer.begin(
                        f"plugin.{plugin.name}", "mec", inner_ctx.track,
                        parent=outer_trace, qname=str(inner_ctx.qname))
                    if span is not None:
                        # Spans begun by this plugin (and deeper chain
                        # links) nest under it; each query owns its
                        # context, so the save/restore cannot race.
                        inner_ctx.trace = span.context
                try:
                    result = plugin.handle(inner_ctx,
                                           make_continuation(index + 1))
                    if inspect.isgenerator(result):
                        response = yield from result
                    else:
                        response = result
                    if response is not None:
                        inner_ctx.response = response
                finally:
                    if span is not None:
                        inner_ctx.trace = outer_trace
                        tel.tracer.end(
                            span,
                            answered=inner_ctx.response is not None)
                return inner_ctx.response
            return continuation

        response = yield from make_continuation(0)(ctx)
        return response

    def insert_before(self, name: str, plugin: Plugin) -> None:
        """Insert ``plugin`` before the plugin called ``name``."""
        for index, existing in enumerate(self.plugins):
            if existing.name == name:
                self.plugins.insert(index, plugin)
                return
        self.plugins.append(plugin)

    def __repr__(self) -> str:
        return f"PluginChain({[plugin.name for plugin in self.plugins]})"
