"""Authoritative DNS server over one or more zones.

Implements the answer-side semantics the reproduction needs: longest-match
zone selection, CNAME chasing across hosted zones, wildcard answers,
referrals for delegations, NXDOMAIN/NODATA with SOA in the authority
section, and an ECS hook that lets subclasses (the CDN traffic router)
select answers by client subnet and stamp the response scope.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.dnswire.edns import ClientSubnet
from repro.dnswire.message import Message, ResourceRecord, make_response
from repro.dnswire.name import Name
from repro.dnswire.types import Rcode, RecordType
from repro.dnswire.zone import LookupStatus, Zone
from repro.netsim.packet import Endpoint
from repro.resolver.server import DnsServer

#: Bound on CNAME indirections followed within one response.
MAX_CNAME_CHAIN = 8


class AuthoritativeServer(DnsServer):
    """Serves the zones it hosts; refuses everything else."""

    def __init__(self, network, host, zones: Iterable[Zone],
                 ecs_enabled: bool = False, allow_axfr: bool = True,
                 rotate_answers: bool = False,
                 journal_depth: Optional[int] = None, **kwargs) -> None:
        super().__init__(network, host, **kwargs)
        self.zones = {zone.origin: zone for zone in zones}
        self.ecs_enabled = ecs_enabled
        #: Serve AXFR for hosted zones (real servers gate this by ACL).
        self.allow_axfr = allow_axfr
        #: Round-robin rotation of multi-record answers (poor-man's load
        #: balancing, as BIND's ``rrset-order cyclic``).
        self.rotate_answers = rotate_answers
        self._rotation_counter = 0
        self.axfr_served = 0
        self.ixfr_served = 0
        #: IXFR requests answered with a full AXFR-style payload because
        #: the client's serial had aged out of the bounded journal.
        self.ixfr_axfr_fallbacks = 0
        # Change history so updates can be served incrementally (RFC 1995).
        # ``journal_depth`` bounds it; a secondary whose serial has aged
        # out of the bounded history gets a full AXFR instead.
        from repro.resolver.xfr import DEFAULT_JOURNAL_DEPTH, ZoneJournal
        self.journal = ZoneJournal(depth=(DEFAULT_JOURNAL_DEPTH
                                          if journal_depth is None
                                          else journal_depth))

    def add_zone(self, zone: Zone) -> None:
        """Host (or replace) a zone; replacements are journalled for IXFR."""
        from repro.errors import ZoneError
        old = self.zones.get(zone.origin)
        if old is not None and old.soa is not None and zone.soa is not None:
            try:
                self.journal.record(zone.origin, old, zone)
            except ZoneError:
                pass  # undiffable update; IXFR will fall back to AXFR
        self.zones[zone.origin] = zone

    def find_zone(self, qname: Name) -> Optional[Zone]:
        """The hosted zone with the longest origin matching ``qname``."""
        best: Optional[Zone] = None
        for origin, zone in self.zones.items():
            if qname.is_subdomain_of(origin):
                if best is None or len(origin) > len(best.origin):
                    best = zone
        return best

    # -- answer selection hook ---------------------------------------------------

    def select_answer(self, qname: Name, rtype: RecordType,
                      records: List[ResourceRecord],
                      ecs: Optional[ClientSubnet],
                      client: Endpoint) -> Tuple[List[ResourceRecord], int]:
        """Choose which records to return and the ECS scope to stamp.

        The default returns everything with scope 0 (answer not tailored).
        The CDN traffic router overrides this to pick a cache server by
        client location and advertise a meaningful scope.
        """
        return records, 0

    # -- query handling --------------------------------------------------------------

    def handle_query(self, query: Message, client: Endpoint) -> Message:
        question = query.question
        if question.rtype == RecordType.AXFR:
            return self._handle_axfr(query, client)
        if question.rtype == RecordType.IXFR:
            return self._handle_ixfr(query, client)
        zone = self.find_zone(question.name)
        if zone is None:
            return make_response(query, rcode=Rcode.REFUSED)

        ecs = query.edns.client_subnet if (self.ecs_enabled and query.edns) else None
        answers: List[ResourceRecord] = []
        authorities: List[ResourceRecord] = []
        additionals: List[ResourceRecord] = []
        rcode = Rcode.NOERROR
        scope = 0
        authoritative_answer = True

        qname = question.name
        for _ in range(MAX_CNAME_CHAIN):
            result = zone.lookup(qname, question.rtype)
            if result.status == LookupStatus.SUCCESS:
                selected, scope = self.select_answer(
                    qname, question.rtype, result.records, ecs, client)
                if self.rotate_answers and len(selected) > 1:
                    self._rotation_counter += 1
                    pivot = self._rotation_counter % len(selected)
                    selected = selected[pivot:] + selected[:pivot]
                answers.extend(selected)
                break
            if result.status == LookupStatus.CNAME:
                answers.extend(result.records)
                assert result.cname_target is not None
                qname = result.cname_target
                next_zone = self.find_zone(qname)
                if next_zone is None:
                    break  # target is out of our authority; client re-resolves
                zone = next_zone
                continue
            if result.status == LookupStatus.DELEGATION:
                # Referral: not an authoritative answer; carry the glue.
                authorities.extend(result.authority)
                additionals.extend(result.additional)
                authoritative_answer = False
                break
            if result.status == LookupStatus.NXDOMAIN:
                rcode = Rcode.NXDOMAIN
                authorities.extend(result.authority)
                break
            # NODATA
            authorities.extend(result.authority)
            break
        else:
            rcode = Rcode.SERVFAIL  # CNAME loop within our own zones

        response = make_response(query, rcode=rcode,
                                 authoritative=authoritative_answer,
                                 answers=answers, authorities=authorities,
                                 additionals=additionals)
        return self._finish_response(response, ecs, scope)

    def _handle_axfr(self, query: Message, client: Endpoint) -> Message:
        """Full zone transfer for a hosted zone apex (RFC 5936 shape)."""
        from repro.resolver.xfr import axfr_response_records
        if not self.allow_axfr:
            return make_response(query, rcode=Rcode.REFUSED)
        zone = self.zones.get(query.question.name)
        if zone is None:
            return make_response(query, rcode=Rcode.NOTAUTH)
        self.axfr_served += 1
        return make_response(query, authoritative=True,
                             answers=axfr_response_records(zone))

    def _handle_ixfr(self, query: Message, client: Endpoint) -> Message:
        """Incremental transfer (RFC 1995): diffs, or AXFR fallback.

        The client's current serial rides in the request's authority
        section; an unknown serial (history rotated away) falls back to
        a full AXFR-style answer, and a current serial gets the bare SOA.
        """
        from repro.dnswire.rdata import SOA as SoaRdata
        from repro.resolver.xfr import (axfr_response_records,
                                        ixfr_response_records)
        if not self.allow_axfr:
            return make_response(query, rcode=Rcode.REFUSED)
        zone = self.zones.get(query.question.name)
        if zone is None or zone.soa is None:
            return make_response(query, rcode=Rcode.NOTAUTH)
        client_serial = None
        for record in query.authorities:
            if record.rtype == RecordType.SOA \
                    and isinstance(record.rdata, SoaRdata):
                client_serial = record.rdata.serial
        self.ixfr_served += 1
        our_serial = zone.soa.rdata.serial  # type: ignore[attr-defined]
        if client_serial == our_serial:
            return make_response(query, authoritative=True,
                                 answers=[zone.soa])
        deltas = (self.journal.deltas_since(zone.origin, client_serial)
                  if client_serial is not None else None)
        if deltas:
            answers = ixfr_response_records(zone, deltas)
        else:
            self.ixfr_axfr_fallbacks += 1
            answers = axfr_response_records(zone)
        return make_response(query, authoritative=True, answers=answers)

    def _finish_response(self, response: Message, ecs, scope) -> Message:
        if response.edns is not None and ecs is not None:
            response.edns.options = [
                opt if not isinstance(opt, ClientSubnet) else ecs.with_scope(scope)
                for opt in response.edns.options]
        return response
