"""Zone transfer (AXFR, RFC 5936) and secondary-zone maintenance.

The MEC platform needs the CDN's delivery zone locally; in real
deployments that zone is either pushed by the orchestrator or pulled with
standard zone transfer.  Both the primary side (AXFR answers out of an
authoritative server) and the secondary side (serial polling + transfer +
reload) are implemented:

* the primary answers AXFR queries with the full zone, SOA first and
  last, as RFC 5936 requires.  Over UDP the answer almost always exceeds
  the payload limit, so it truncates and the client's automatic TCP retry
  carries the real transfer — mirroring the TCP-only nature of AXFR;
* :class:`SecondaryZone` polls the primary's SOA serial at the zone's
  refresh interval and pulls + installs a fresh copy when it changes.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from repro.dnswire.message import ResourceRecord
from repro.dnswire.name import Name
from repro.dnswire.rdata import SOA
from repro.dnswire.types import Rcode, RecordType
from repro.dnswire.zone import Zone
from repro.errors import QueryTimeout, ZoneError
from repro.netsim.network import Network
from repro.netsim.packet import Endpoint
from repro.resolver.authoritative import AuthoritativeServer
from repro.resolver.stub import StubResolver

DEFAULT_REFRESH_MS = 60_000.0


class ZoneDelta:
    """One zone change set: what an IXFR diff block carries (RFC 1995)."""

    __slots__ = ("old_soa", "new_soa", "deleted", "added")

    def __init__(self, old_soa: ResourceRecord, new_soa: ResourceRecord,
                 deleted: List[ResourceRecord],
                 added: List[ResourceRecord]) -> None:
        self.old_soa = old_soa
        self.new_soa = new_soa
        self.deleted = deleted
        self.added = added

    @property
    def old_serial(self) -> int:
        return self.old_soa.rdata.serial  # type: ignore[attr-defined]

    @property
    def new_serial(self) -> int:
        return self.new_soa.rdata.serial  # type: ignore[attr-defined]

    def __repr__(self) -> str:
        return (f"ZoneDelta({self.old_serial} -> {self.new_serial}, "
                f"-{len(self.deleted)} +{len(self.added)})")


def diff_zones(old: Zone, new: Zone) -> ZoneDelta:
    """Compute the change set between two versions of a zone."""
    if old.soa is None or new.soa is None:
        raise ZoneError("both zone versions need an SOA to diff")
    old_records = set(record for record in old.records()
                      if record.rtype != RecordType.SOA)
    new_records = set(record for record in new.records()
                      if record.rtype != RecordType.SOA)
    return ZoneDelta(
        old_soa=old.soa, new_soa=new.soa,
        deleted=sorted(old_records - new_records, key=lambda r: str(r.name)),
        added=sorted(new_records - old_records, key=lambda r: str(r.name)))


#: Default bound on retained IXFR history per origin.
DEFAULT_JOURNAL_DEPTH = 16


class ZoneJournal:
    """Per-origin history of change sets, for serving IXFR.

    ``depth`` bounds retained history; a request older than the history
    falls back to a full transfer, exactly as real servers do.
    """

    def __init__(self, depth: int = DEFAULT_JOURNAL_DEPTH) -> None:
        if depth < 1:
            raise ValueError("journal depth must be >= 1")
        self.depth = depth
        self._deltas: dict = {}

    def record(self, origin: Name, old: Zone, new: Zone) -> ZoneDelta:
        """Append the old->new change set for ``origin``."""
        delta = diff_zones(old, new)
        history = self._deltas.setdefault(origin, [])
        history.append(delta)
        del history[:-self.depth]
        return delta

    def deltas_since(self, origin: Name,
                     serial: int) -> Optional[List[ZoneDelta]]:
        """The chain of deltas from ``serial`` to now, or None if gone."""
        history = self._deltas.get(origin, [])
        chain: List[ZoneDelta] = []
        collecting = False
        for delta in history:
            if delta.old_serial == serial:
                collecting = True
            if collecting:
                if chain and delta.old_serial != chain[-1].new_serial:
                    return None  # broken chain; history rotated oddly
                chain.append(delta)
        return chain if collecting else None


def ixfr_response_records(zone: Zone,
                          deltas: List[ZoneDelta]) -> List[ResourceRecord]:
    """An incremental transfer payload (RFC 1995 §4).

    ``SOA(new)`` then, per delta, ``SOA(old) deletions... SOA(next)
    additions...``, closed by ``SOA(new)``.
    """
    soa = zone.soa
    if soa is None:
        raise ZoneError(f"zone {zone.origin} has no SOA")
    records: List[ResourceRecord] = [soa]
    for delta in deltas:
        records.append(delta.old_soa)
        records.extend(delta.deleted)
        records.append(delta.new_soa)
        records.extend(delta.added)
    records.append(soa)
    return records


def apply_ixfr(zone: Zone, answers: List[ResourceRecord]) -> Zone:
    """Apply an IXFR answer section to a copy of ``zone``.

    Handles all three RFC 1995 response forms: up-to-date (single SOA),
    AXFR-style fallback (second record is not an SOA), and the diff
    sequence.
    """
    if not answers or answers[0].rtype != RecordType.SOA:
        raise ZoneError("IXFR response must start with the new SOA")
    if len(answers) == 1:
        return zone  # already current
    if answers[1].rtype != RecordType.SOA:
        return zone_from_axfr(zone.origin, answers)
    if answers[1].rdata == answers[0].rdata:
        # AXFR-style fallback of a zone holding nothing but its SOA:
        # [SOA, SOA] with equal rdata is a full transfer, not a diff
        # whose first old-SOA happens to equal the new one.
        return zone_from_axfr(zone.origin, answers)
    if zone.soa is not None:
        first_old = answers[1].rdata
        ours = zone.soa.rdata
        if isinstance(first_old, SOA) and isinstance(ours, SOA) \
                and first_old.serial != ours.serial:
            # The diff chain starts at a serial we do not hold; applying
            # it would silently install a corrupt zone.  Raising makes
            # the secondary fall back to a full AXFR instead.
            raise ZoneError(
                f"IXFR diff starts at serial {first_old.serial}, "
                f"but we hold {ours.serial}; refusing to apply")

    updated = Zone(zone.origin)
    for record in zone.records():
        updated.add(record)
    index = 1
    final_soa = answers[-1]
    while index < len(answers) - 1:
        old_soa = answers[index]
        if old_soa.rtype != RecordType.SOA:
            raise ZoneError("malformed IXFR diff: expected old SOA")
        index += 1
        deletions: List[ResourceRecord] = []
        while index < len(answers) and answers[index].rtype != RecordType.SOA:
            deletions.append(answers[index])
            index += 1
        if index >= len(answers):
            raise ZoneError("malformed IXFR diff: missing new SOA")
        new_soa = answers[index]
        index += 1
        additions: List[ResourceRecord] = []
        while index < len(answers) - 1 \
                and answers[index].rtype != RecordType.SOA:
            additions.append(answers[index])
            index += 1
        if updated.soa is not None:
            updated.remove(updated.soa)
        for record in deletions:
            updated.remove(record)
        updated.add(new_soa)
        for record in additions:
            updated.add(record)
    if updated.soa is None or updated.soa.rdata != final_soa.rdata:  # type: ignore[union-attr]
        raise ZoneError("IXFR application did not converge on the new SOA")
    return updated


def axfr_response_records(zone: Zone) -> List[ResourceRecord]:
    """The transfer payload: SOA, everything else, SOA again."""
    soa = zone.soa
    if soa is None:
        raise ZoneError(f"zone {zone.origin} has no SOA; cannot transfer")
    body = [record for record in zone.records()
            if record.rtype != RecordType.SOA]
    return [soa] + body + [soa]


def zone_from_axfr(origin: Name,
                   records: List[ResourceRecord]) -> Zone:
    """Rebuild a zone from a transfer answer section."""
    if len(records) < 2 or records[0].rtype != RecordType.SOA \
            or records[-1].rtype != RecordType.SOA:
        raise ZoneError("transfer does not start and end with SOA")
    if records[0].rdata != records[-1].rdata:
        raise ZoneError("transfer SOA records disagree; aborted transfer?")
    zone = Zone(origin)
    for record in records[:-1]:  # drop the trailing SOA duplicate
        zone.add(record)
    return zone


class SecondaryZone:
    """Keeps one zone on a secondary server in sync with a primary."""

    def __init__(self, network: Network, server: AuthoritativeServer,
                 origin: Name, primary: Endpoint,
                 refresh_ms: Optional[float] = None) -> None:
        self.network = network
        self.server = server
        self.origin = origin
        self.primary = primary
        self._refresh_override = refresh_ms
        self._stub = StubResolver(network, server.host, primary,
                                  timeout=5000, retries=1)
        self.transfers = 0
        self.axfr_transfers = 0
        self.ixfr_transfers = 0
        self.refreshes = 0
        self.notifies = 0
        #: (simulated time, serial) per installed transfer, oldest first
        #: — the propagation evidence the control plane reads.
        self.install_log: List[tuple] = []
        #: Called as ``on_install(time, serial)`` after every installed
        #: transfer; the control plane hangs its apply step here.
        self.on_install: Optional[Callable[[float, int], None]] = None
        self._running = False

    @property
    def serial(self) -> Optional[int]:
        zone = self.server.zones.get(self.origin)
        if zone is None or zone.soa is None:
            return None
        return zone.soa.rdata.serial  # type: ignore[attr-defined]

    @property
    def refresh_ms(self) -> float:
        if self._refresh_override is not None:
            return self._refresh_override
        zone = self.server.zones.get(self.origin)
        if zone is not None and zone.soa is not None:
            return zone.soa.rdata.refresh * 1000.0  # type: ignore[attr-defined]
        return DEFAULT_REFRESH_MS

    # -- one refresh cycle ---------------------------------------------------

    def refresh_once(self) -> Generator:
        """Process: poll the primary's serial; transfer if it moved.

        Returns True when a transfer was installed.
        """
        self.refreshes += 1
        try:
            soa_result = yield from self._stub.query(self.origin,
                                                     RecordType.SOA)
        except QueryTimeout:
            return False
        soa_records = soa_result.response.answer_rrs(RecordType.SOA)
        if not soa_records or not isinstance(soa_records[0].rdata, SOA):
            return False
        primary_serial = soa_records[0].rdata.serial
        if self.serial is not None and primary_serial <= self.serial:
            return False
        transferred = yield from self._transfer()
        return transferred

    def _transfer(self) -> Generator:
        """Pull the zone: IXFR when we hold a version, AXFR otherwise."""
        current = self.server.zones.get(self.origin)
        if current is not None and current.soa is not None:
            done = yield from self._transfer_ixfr(current)
            return done
        done = yield from self._transfer_axfr()
        return done

    def _transfer_axfr(self) -> Generator:
        try:
            result = yield from self._stub.query(self.origin,
                                                 RecordType.AXFR)
        except QueryTimeout:
            return False
        if result.response.rcode != Rcode.NOERROR:
            return False
        try:
            zone = zone_from_axfr(self.origin, result.response.answers)
        except ZoneError:
            return False
        self._install(zone)
        self.axfr_transfers += 1
        return True

    def _transfer_ixfr(self, current: Zone) -> Generator:
        try:
            result = yield from self._stub.query(
                self.origin, RecordType.IXFR,
                authorities=[current.soa])
        except QueryTimeout:
            return False
        if result.response.rcode != Rcode.NOERROR:
            return False
        try:
            zone = apply_ixfr(current, result.response.answers)
        except ZoneError:
            # A malformed or unusable diff: retry as a full transfer.
            done = yield from self._transfer_axfr()
            return done
        if zone is current:
            return False  # already up to date; nothing installed
        self._install(zone)
        self.ixfr_transfers += 1
        return True

    def _install(self, zone: Zone) -> None:
        self.server.add_zone(zone)
        self.transfers += 1
        serial = (zone.soa.rdata.serial  # type: ignore[attr-defined]
                  if zone.soa is not None else -1)
        self.install_log.append((self.network.sim.now, serial))
        if self.on_install is not None:
            self.on_install(self.network.sim.now, serial)

    # -- NOTIFY (RFC 1996) -------------------------------------------------

    def notify(self) -> Generator:
        """Out-of-cycle refresh, as a primary's NOTIFY triggers it.

        Returns True when a transfer was installed.
        """
        self.notifies += 1
        transferred = yield from self.refresh_once()
        return transferred

    # -- continuous maintenance ---------------------------------------------------

    def start(self) -> None:
        """Poll forever at the zone's refresh interval."""
        if self._running:
            return
        self._running = True

        def loop() -> Generator:
            while self._running:
                yield from self.refresh_once()
                yield self.refresh_ms

        self.network.sim.spawn(loop())

    def stop(self) -> None:
        """Stop the refresh loop after its current cycle."""
        self._running = False
