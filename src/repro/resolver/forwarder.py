"""Forwarding resolver with stub-domain routing.

This models two things from the paper:

* the carrier or public resolver front-ends that simply forward to an
  upstream recursive farm, and
* the CoreDNS *stub domain* mechanism the prototype configures in §4:
  "we update the configuration of L-DNS with the sub-domain and upstream
  server to ensure that L-DNS redirects queries for this CDN domain to
  C-DNS" — i.e. queries under a configured sub-domain go to a dedicated
  upstream (the ATC Traffic Router) instead of the default path.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.dnswire.message import Message, make_query, make_response
from repro.dnswire.name import Name
from repro.dnswire.types import Rcode
from repro.errors import QueryTimeout, WireFormatError
from repro.netsim.packet import Endpoint
from repro.resolver.cache import CacheOutcome, DnsCache
from repro.resolver.server import DnsServer


class ForwardingResolver(DnsServer):
    """Caches locally; otherwise forwards to the matching upstream."""

    def __init__(self, network, host, upstreams: List[Endpoint],
                 stub_domains: Optional[Dict[Name, Endpoint]] = None,
                 cache: Optional[DnsCache] = None,
                 upstream_timeout: float = 2000.0,
                 forward_ecs: bool = True, **kwargs) -> None:
        super().__init__(network, host, **kwargs)
        if not upstreams:
            raise ValueError("forwarding resolver needs at least one upstream")
        self.upstreams = list(upstreams)
        self.stub_domains = dict(stub_domains or {})
        self.cache = cache if cache is not None else DnsCache()
        self.upstream_timeout = upstream_timeout
        self.forward_ecs = forward_ecs
        self.forwarded = 0
        self.served_from_cache = 0

    def add_stub_domain(self, domain: Name, upstream: Endpoint) -> None:
        """Route queries under ``domain`` to a dedicated upstream."""
        self.stub_domains[domain] = upstream

    def upstreams_for(self, qname: Name) -> List[Endpoint]:
        """The upstream list for ``qname``: longest stub-domain match wins."""
        best: Optional[Name] = None
        for domain in self.stub_domains:
            if qname.is_subdomain_of(domain):
                if best is None or len(domain) > len(best):
                    best = domain
        if best is not None:
            return [self.stub_domains[best]]
        return self.upstreams

    def handle_query(self, query: Message, client: Endpoint) -> Generator:
        question = query.question
        now = self.network.sim.now
        cached = self.cache.get(question.name, question.rtype, now)
        if cached.outcome == CacheOutcome.HIT:
            self.served_from_cache += 1
            return make_response(query, recursion_available=True,
                                 answers=cached.records)
        if cached.outcome == CacheOutcome.NEGATIVE_NXDOMAIN:
            self.served_from_cache += 1
            return make_response(query, rcode=Rcode.NXDOMAIN,
                                 recursion_available=True)
        if cached.outcome == CacheOutcome.NEGATIVE_NODATA:
            self.served_from_cache += 1
            return make_response(query, recursion_available=True)

        for upstream in self.upstreams_for(question.name):
            forwarded = make_query(question.name, question.rtype,
                                   msg_id=self.allocate_query_id(),
                                   recursion_desired=True)
            if self.forward_ecs and query.edns is not None:
                forwarded.edns = query.edns
            try:
                self.forwarded += 1
                response = yield from self.query_upstream(
                    forwarded, upstream, self.upstream_timeout)
            except (QueryTimeout, WireFormatError):
                continue
            self._cache_response(question, response)
            reply = make_response(query, rcode=response.rcode,
                                  recursion_available=True,
                                  answers=response.answers,
                                  authorities=response.authorities,
                                  additionals=response.additionals)
            return reply
        return make_response(query, rcode=Rcode.SERVFAIL,
                             recursion_available=True)

    def _cache_response(self, question, response: Message) -> None:
        now = self.network.sim.now
        if response.rcode == Rcode.NOERROR and response.answers:
            self.cache.put_records(response.answers, now)
        elif response.rcode == Rcode.NXDOMAIN:
            self.cache.put_negative(question.name, question.rtype,
                                    CacheOutcome.NEGATIVE_NXDOMAIN,
                                    _soa_ttl(response), now)
        elif response.rcode == Rcode.NOERROR:
            self.cache.put_negative(question.name, question.rtype,
                                    CacheOutcome.NEGATIVE_NODATA,
                                    _soa_ttl(response), now)


def _soa_ttl(response: Message) -> int:
    from repro.dnswire.rdata import SOA
    from repro.dnswire.types import RecordType
    for record in response.authorities:
        if record.rtype == RecordType.SOA and isinstance(record.rdata, SOA):
            return min(record.rdata.minimum, record.ttl)
    return 60
