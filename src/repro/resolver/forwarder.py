"""Forwarding resolver with stub-domain routing.

This models two things from the paper:

* the carrier or public resolver front-ends that simply forward to an
  upstream recursive farm, and
* the CoreDNS *stub domain* mechanism the prototype configures in §4:
  "we update the configuration of L-DNS with the sub-domain and upstream
  server to ensure that L-DNS redirects queries for this CDN domain to
  C-DNS" — i.e. queries under a configured sub-domain go to a dedicated
  upstream (the ATC Traffic Router) instead of the default path.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.dnswire.message import Message, make_query, make_response, mark_stale
from repro.dnswire.name import Name
from repro.dnswire.types import Rcode
from repro.errors import QueryTimeout, WireFormatError
from repro.netsim.packet import Endpoint
from repro.resolver.cache import CacheOutcome, DnsCache
from repro.resolver.retry import RetryPolicy
from repro.resolver.server import DnsServer


class ForwardingResolver(DnsServer):
    """Caches locally; otherwise forwards to the matching upstream.

    A ``retry_policy`` makes each upstream worth several attempts with
    backed-off timeouts instead of one shot.  When every upstream fails
    and the cache was built with ``serve_stale``, an expired entry is
    served (marked with the RFC 8914 stale-answer option) before
    admitting SERVFAIL — RFC 8767's "stale bread is better than no
    bread" trade, which §3 of the paper needs for MEC DNS outages.
    """

    def __init__(self, network, host, upstreams: List[Endpoint],
                 stub_domains: Optional[Dict[Name, Endpoint]] = None,
                 cache: Optional[DnsCache] = None,
                 upstream_timeout: float = 2000.0,
                 forward_ecs: bool = True,
                 retry_policy: Optional[RetryPolicy] = None,
                 **kwargs) -> None:
        super().__init__(network, host, **kwargs)
        if not upstreams:
            raise ValueError("forwarding resolver needs at least one upstream")
        self.upstreams = list(upstreams)
        self.stub_domains = dict(stub_domains or {})
        self.cache = cache if cache is not None else DnsCache()
        self.upstream_timeout = upstream_timeout
        self.forward_ecs = forward_ecs
        self.retry_policy = retry_policy
        self._retry_rng = (network.streams.stream(f"forwarder:{host.name}")
                          if retry_policy is not None else None)
        self.forwarded = 0
        self.served_from_cache = 0
        self.upstream_retries = 0
        self.stale_served = 0

    def add_stub_domain(self, domain: Name, upstream: Endpoint) -> None:
        """Route queries under ``domain`` to a dedicated upstream."""
        self.stub_domains[domain] = upstream

    def upstreams_for(self, qname: Name) -> List[Endpoint]:
        """The upstream list for ``qname``: longest stub-domain match wins."""
        best: Optional[Name] = None
        for domain in self.stub_domains:
            if qname.is_subdomain_of(domain):
                if best is None or len(domain) > len(best):
                    best = domain
        if best is not None:
            return [self.stub_domains[best]]
        return self.upstreams

    def handle_query(self, query: Message, client: Endpoint) -> Generator:
        question = query.question
        now = self.network.sim.now
        tel = self.network.telemetry
        ctx = getattr(query, "trace_ctx", None)
        cached = self.cache.get(question.name, question.rtype, now)
        if tel is not None:
            tel.tracer.event("ldns.cache-lookup", "resolver", self.host.name,
                             parent=ctx, outcome=cached.outcome.name,
                             qname=str(question.name))
            tel.metrics.counter("repro_ldns_cache_lookups_total",
                                "L-DNS cache probes by outcome").inc(
                                    server=self.name,
                                    outcome=cached.outcome.name)
        if cached.outcome == CacheOutcome.HIT:
            self.served_from_cache += 1
            return make_response(query, recursion_available=True,
                                 answers=cached.records)
        if cached.outcome == CacheOutcome.NEGATIVE_NXDOMAIN:
            self.served_from_cache += 1
            return make_response(query, rcode=Rcode.NXDOMAIN,
                                 recursion_available=True)
        if cached.outcome == CacheOutcome.NEGATIVE_NODATA:
            self.served_from_cache += 1
            return make_response(query, recursion_available=True)

        policy = self.retry_policy
        attempts_per_upstream = 1 + (policy.retries if policy else 0)
        for upstream in self.upstreams_for(question.name):
            for attempt in range(1, attempts_per_upstream + 1):
                per_try_timeout = (
                    policy.timeout_for(attempt, self._retry_rng)
                    if policy is not None else self.upstream_timeout)
                forwarded = make_query(question.name, question.rtype,
                                       msg_id=self.allocate_query_id(),
                                       recursion_desired=True)
                if self.forward_ecs and query.edns is not None:
                    forwarded.edns = query.edns
                try:
                    self.forwarded += 1
                    if attempt > 1:
                        self.upstream_retries += 1
                        if tel is not None:
                            tel.metrics.counter(
                                "repro_ldns_upstream_retries_total",
                                "forwarder re-attempts against an "
                                "upstream").inc(server=self.name)
                    response = yield from self.query_upstream(
                        forwarded, upstream, per_try_timeout, ctx=ctx)
                except (QueryTimeout, WireFormatError):
                    continue
                self._cache_response(question, response)
                reply = make_response(query, rcode=response.rcode,
                                      recursion_available=True,
                                      answers=response.answers,
                                      authorities=response.authorities,
                                      additionals=response.additionals)
                return reply
        if self.cache.serve_stale:
            stale = self.cache.get_stale(question.name, question.rtype,
                                         self.network.sim.now)
            if stale.outcome == CacheOutcome.HIT:
                self.stale_served += 1
                if tel is not None:
                    tel.tracer.event("ldns.serve-stale", "resolver",
                                     self.host.name, parent=ctx,
                                     qname=str(question.name))
                    tel.metrics.counter(
                        "repro_ldns_stale_served_total",
                        "RFC 8767 stale answers served").inc(
                            server=self.name)
                reply = make_response(query, recursion_available=True,
                                      answers=stale.records)
                if stale.stale:
                    mark_stale(reply)
                return reply
        return make_response(query, rcode=Rcode.SERVFAIL,
                             recursion_available=True)

    def _cache_response(self, question, response: Message) -> None:
        now = self.network.sim.now
        if response.rcode == Rcode.NOERROR and response.answers:
            self.cache.put_records(response.answers, now)
        elif response.rcode == Rcode.NXDOMAIN:
            self.cache.put_negative(question.name, question.rtype,
                                    CacheOutcome.NEGATIVE_NXDOMAIN,
                                    _soa_ttl(response), now)
        elif response.rcode == Rcode.NOERROR:
            self.cache.put_negative(question.name, question.rtype,
                                    CacheOutcome.NEGATIVE_NODATA,
                                    _soa_ttl(response), now)


def _soa_ttl(response: Message) -> int:
    from repro.dnswire.rdata import SOA
    from repro.dnswire.types import RecordType
    for record in response.authorities:
        if record.rtype == RecordType.SOA and isinstance(record.rdata, SOA):
            return min(record.rdata.minimum, record.ttl)
    return 60
