"""Iterative (recursive-resolver) DNS resolution with caching.

This is the L-DNS role in the paper's Figure 1: it receives a stub query,
walks the delegation tree from the root hints (root → TLD → authoritative
→ CDN router), follows CNAMEs and referrals, and caches everything it
learns — positively and negatively — within the bailiwick of the zone cut
it was talking to.

ECS (RFC 7871) support: when enabled, the resolver attaches the client's
/24 (or /56 for IPv6) to upstream queries so authoritative servers can
tailor answers; responses whose scope prefix is non-zero are cached per
client subnet, as the RFC requires.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.dnswire.edns import ClientSubnet, Edns
from repro.dnswire.message import Message, ResourceRecord, make_query, make_response
from repro.dnswire.name import Name, ROOT
from repro.dnswire.rdata import SOA
from repro.dnswire.types import Rcode, RecordType
from repro.errors import QueryTimeout, WireFormatError
from repro.netsim.packet import Endpoint
from repro.resolver.cache import CacheOutcome, DnsCache
from repro.resolver.server import DnsServer

MAX_CNAME_CHAIN = 8
MAX_REFERRALS = 16
MAX_NS_RESOLUTION_DEPTH = 4
#: Fallback negative TTL when a response carries no SOA.
DEFAULT_NEGATIVE_TTL = 60
#: ECS prefixes a resolver advertises for its clients (RFC 7871 defaults).
ECS_V4_PREFIX = 24
ECS_V6_PREFIX = 56


class RecursiveResolver(DnsServer):
    """A caching iterative resolver seeded with root hints."""

    def __init__(self, network, host, root_hints: List[Tuple[Name, str]],
                 cache: Optional[DnsCache] = None,
                 upstream_timeout: float = 2000.0,
                 ecs_enabled: bool = False, **kwargs) -> None:
        super().__init__(network, host, **kwargs)
        if not root_hints:
            raise ValueError("recursive resolver needs at least one root hint")
        self.root_hints = list(root_hints)
        self.cache = cache if cache is not None else DnsCache()
        self.upstream_timeout = upstream_timeout
        self.ecs_enabled = ecs_enabled
        # (name, rtype, subnet) -> (records, expires_at); RFC 7871 §7.3.1.
        self._ecs_cache: Dict[Tuple[Name, RecordType, str],
                              Tuple[List[ResourceRecord], float]] = {}
        self.upstream_queries_sent = 0

    # -- entry point -----------------------------------------------------------

    def handle_query(self, query: Message, client: Endpoint) -> Generator:
        question = query.question
        ecs = self._effective_ecs(query, client)
        rcode, answers = yield from self._resolve(
            question.name, question.rtype, ecs, depth=0)
        response = make_response(query, rcode=rcode,
                                 recursion_available=True, answers=answers)
        return response

    def _effective_ecs(self, query: Message,
                       client: Endpoint) -> Optional[ClientSubnet]:
        if not self.ecs_enabled:
            return None
        if query.edns is not None and query.edns.client_subnet is not None:
            return query.edns.client_subnet
        prefix = ECS_V6_PREFIX if ":" in client.ip else ECS_V4_PREFIX
        return ClientSubnet(client.ip, prefix)

    # -- CNAME-chasing resolution -------------------------------------------------

    def _resolve(self, qname: Name, rtype: RecordType,
                 ecs: Optional[ClientSubnet],
                 depth: int) -> Generator:
        """Process returning ``(rcode, answer_records)``."""
        answers: List[ResourceRecord] = []
        current = qname
        for _ in range(MAX_CNAME_CHAIN):
            outcome, records = yield from self._resolve_rrset(
                current, rtype, ecs, depth)
            if outcome == "answer":
                answers.extend(records)
                return Rcode.NOERROR, answers
            if outcome == "cname":
                answers.extend(records)
                target = records[-1].rdata.target  # type: ignore[attr-defined]
                current = target
                continue
            if outcome == "nxdomain":
                return Rcode.NXDOMAIN, answers
            if outcome == "nodata":
                return Rcode.NOERROR, answers
            return Rcode.SERVFAIL, answers
        return Rcode.SERVFAIL, answers  # CNAME chain too long

    # -- single RRset resolution -----------------------------------------------------

    def _resolve_rrset(self, name: Name, rtype: RecordType,
                       ecs: Optional[ClientSubnet],
                       depth: int) -> Generator:
        """Process returning ``(outcome, records)`` for one (name, rtype).

        ``outcome`` is one of ``answer``, ``cname``, ``nxdomain``,
        ``nodata``, ``servfail``; a CNAME is reported, not followed.
        """
        now = self.network.sim.now
        if ecs is not None:
            scoped = self._ecs_cache_get(name, rtype, ecs, now)
            if scoped is not None:
                return "answer", scoped
        cached = self.cache.get(name, rtype, now)
        if cached.outcome == CacheOutcome.HIT:
            return "answer", cached.records
        if cached.outcome == CacheOutcome.NEGATIVE_NXDOMAIN:
            return "nxdomain", []
        if cached.outcome == CacheOutcome.NEGATIVE_NODATA:
            return "nodata", []
        if rtype != RecordType.CNAME:
            cached_cname = self.cache.get(name, RecordType.CNAME, now)
            if cached_cname.outcome == CacheOutcome.HIT:
                return "cname", cached_cname.records

        zone_cut, server_names, server_addresses = self._closest_known_servers(name)
        for _ in range(MAX_REFERRALS):
            if not server_addresses:
                server_addresses = yield from self._addresses_for_servers(
                    server_names, depth)
            if not server_addresses:
                return "servfail", []
            response = yield from self._query_any_server(
                name, rtype, server_addresses, ecs)
            if response is None:
                return "servfail", []
            now = self.network.sim.now
            self._cache_response(response, zone_cut, ecs, now)

            if response.rcode == Rcode.NXDOMAIN:
                ttl = _negative_ttl(response)
                self.cache.put_negative(name, rtype,
                                        CacheOutcome.NEGATIVE_NXDOMAIN, ttl, now)
                return "nxdomain", []
            if response.rcode != Rcode.NOERROR:
                return "servfail", []

            direct = [record for record in response.answers
                      if record.name == name and record.rtype == rtype]
            if direct:
                # Return the full answer section so CNAME chains assembled
                # by the upstream authoritative server stay intact.
                return "answer", list(response.answers)
            cname = [record for record in response.answers
                     if record.name == name and record.rtype == RecordType.CNAME]
            if cname:
                return "cname", cname

            referral_ns = [record for record in response.authorities
                           if record.rtype == RecordType.NS]
            if referral_ns and not response.flags.aa:
                zone_cut = referral_ns[0].name
                server_names = [record.rdata.target  # type: ignore[attr-defined]
                                for record in referral_ns]
                server_addresses = _glue_addresses(response, server_names)
                continue

            ttl = _negative_ttl(response)
            self.cache.put_negative(name, rtype,
                                    CacheOutcome.NEGATIVE_NODATA, ttl, now)
            return "nodata", []
        return "servfail", []

    # -- server selection ---------------------------------------------------------------

    def _closest_known_servers(
            self, name: Name) -> Tuple[Name, List[Name], List[str]]:
        """Deepest zone cut we have cached NS (with addresses) for."""
        now = self.network.sim.now
        current = name
        while True:
            ns_cached = self.cache.get(current, RecordType.NS, now)
            if ns_cached.outcome == CacheOutcome.HIT:
                ns_names = [record.rdata.target  # type: ignore[attr-defined]
                            for record in ns_cached.records]
                addresses = []
                for ns_name in ns_names:
                    addresses.extend(self.cache.peek_addresses(ns_name, now))
                if addresses:
                    return current, ns_names, addresses
            if current.is_root:
                break
            current = current.parent()
        return ROOT, [hint for hint, _ in self.root_hints], \
            [address for _, address in self.root_hints]

    def _addresses_for_servers(self, server_names: List[Name],
                               depth: int) -> Generator:
        """Resolve NS names that arrived without glue (depth-limited)."""
        if depth >= MAX_NS_RESOLUTION_DEPTH:
            return []
        addresses: List[str] = []
        for ns_name in server_names:
            cached = self.cache.peek_addresses(ns_name, self.network.sim.now)
            if cached:
                addresses.extend(cached)
                continue
            rcode, records = yield from self._resolve(
                ns_name, RecordType.A, None, depth + 1)
            if rcode == Rcode.NOERROR:
                addresses.extend(
                    record.rdata.address for record in records  # type: ignore[attr-defined]
                    if record.rtype == RecordType.A)
            if addresses:
                break  # one reachable server is enough to continue
        return addresses

    def _query_any_server(self, name: Name, rtype: RecordType,
                          addresses: List[str],
                          ecs: Optional[ClientSubnet]) -> Generator:
        """Try each server address once; return the first response."""
        for address in addresses:
            query = make_query(name, rtype, msg_id=self.allocate_query_id(),
                               recursion_desired=False)
            if ecs is not None:
                query.edns = Edns(options=[ecs])
            try:
                self.upstream_queries_sent += 1
                response = yield from self.query_upstream(
                    query, Endpoint(address, 53), self.upstream_timeout)
            except (QueryTimeout, WireFormatError):
                continue
            if response.msg_id != query.msg_id:
                continue  # mismatched transaction; treat as garbage
            return response
        return None

    # -- caching ------------------------------------------------------------------------------

    def _cache_response(self, response: Message, zone_cut: Name,
                        ecs: Optional[ClientSubnet], now: float) -> None:
        """Cache in-bailiwick records; honour ECS scope on answers."""
        response_scope = 0
        if response.edns is not None and response.edns.client_subnet is not None:
            response_scope = response.edns.client_subnet.scope_prefix
        scoped_answer = ecs is not None and response_scope > 0

        in_bailiwick = [record for record
                        in (response.answers + response.authorities
                            + response.additionals)
                        if record.name.is_subdomain_of(zone_cut)
                        or (record.rtype == RecordType.A
                            and _is_glue(record, response))]
        if scoped_answer:
            answers = [record for record in response.answers
                       if record.name.is_subdomain_of(zone_cut)]
            self._ecs_cache_put(answers, ecs, now)
            in_bailiwick = [record for record in in_bailiwick
                            if record not in answers]
        self.cache.put_records(in_bailiwick, now)

    def _ecs_cache_put(self, records: List[ResourceRecord],
                       ecs: ClientSubnet, now: float) -> None:
        if not records:
            return
        subnet = str(ecs.network())
        by_key: Dict[Tuple[Name, RecordType], List[ResourceRecord]] = {}
        for record in records:
            by_key.setdefault((record.name, record.rtype), []).append(record)
        for (name, rtype), rrset in by_key.items():
            ttl = min(record.ttl for record in rrset)
            self._ecs_cache[(name, rtype, subnet)] = (rrset, now + ttl * 1000.0)

    def _ecs_cache_get(self, name: Name, rtype: RecordType,
                       ecs: ClientSubnet,
                       now: float) -> Optional[List[ResourceRecord]]:
        key = (name, rtype, str(ecs.network()))
        entry = self._ecs_cache.get(key)
        if entry is None:
            return None
        records, expires_at = entry
        if expires_at <= now:
            del self._ecs_cache[key]
            return None
        remaining = int((expires_at - now) / 1000.0)
        return [record.with_ttl(remaining) for record in records]


def _negative_ttl(response: Message) -> int:
    for record in response.authorities:
        if record.rtype == RecordType.SOA and isinstance(record.rdata, SOA):
            return min(record.rdata.minimum, record.ttl)
    return DEFAULT_NEGATIVE_TTL


def _glue_addresses(response: Message, server_names: List[Name]) -> List[str]:
    """Addresses from the additional section for the referral's NS names."""
    wanted = set(server_names)
    return [record.rdata.address  # type: ignore[attr-defined]
            for record in response.additionals
            if record.rtype == RecordType.A and record.name in wanted]


def _is_glue(record: ResourceRecord, response: Message) -> bool:
    """True if ``record`` is an address for an NS named in the response."""
    ns_targets = {rr.rdata.target for rr in
                  response.authorities + response.answers
                  if rr.rtype == RecordType.NS}  # type: ignore[attr-defined]
    return record.name in ns_targets


def root_hints_from(*pairs: Tuple[str, str]) -> List[Tuple[Name, str]]:
    """Convenience: build root hints from (name, ip) text pairs."""
    return [(Name(name), ip) for name, ip in pairs]
