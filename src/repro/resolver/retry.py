"""Retry policies for resolution under faults: backoff, budgets, hedging.

The paper's measurements assume a network that answers; under injected
faults (:mod:`repro.faults`) the interesting question becomes *how* a
client keeps resolving.  This module packages the three standard
mechanisms as one pluggable :class:`RetryPolicy`:

* **exponential backoff with jitter** — per-attempt timeouts grow
  geometrically so a burst outage is waited out rather than hammered,
  and jitter decorrelates clients that fail together;
* **retry budgets** — an Envoy-style cap (``max(min_retries,
  ratio * requests)``) shared per destination, so retries cannot
  amplify an overload into a storm;
* **hedged queries** — after ``hedge_after_ms`` with no answer, a second
  identical query is raced against the first; whichever response arrives
  first wins.  Hedging converts one-off packet loss from a full timeout
  into roughly one extra RTT.

A :class:`~repro.resolver.stub.StubResolver` built without a policy
behaves exactly as before — the policy path is strictly additive.
"""

from __future__ import annotations

import random
from typing import Optional


class RetryBudget:
    """Per-destination retry allowance: ``max(min_retries, ratio * requests)``.

    Shared by every client pointed at the same destination, it bounds the
    system-wide retry amplification factor at ``1 + ratio`` once traffic
    volume dwarfs ``min_retries``.
    """

    def __init__(self, ratio: float = 0.2, min_retries: int = 3) -> None:
        if ratio < 0:
            raise ValueError(f"budget ratio {ratio} must be >= 0")
        if min_retries < 0:
            raise ValueError(f"min_retries {min_retries} must be >= 0")
        self.ratio = ratio
        self.min_retries = min_retries
        self.requests = 0
        self.retries = 0
        self.retries_denied = 0

    @property
    def allowance(self) -> float:
        """How many retries the budget currently covers."""
        return max(float(self.min_retries), self.ratio * self.requests)

    def record_request(self) -> None:
        """Count a first-attempt request toward the budget base."""
        self.requests += 1

    def try_acquire(self) -> bool:
        """Spend one retry if the budget allows; False when exhausted."""
        if self.retries < self.allowance:
            self.retries += 1
            return True
        self.retries_denied += 1
        return False

    def __repr__(self) -> str:
        return (f"RetryBudget(ratio={self.ratio}, "
                f"min_retries={self.min_retries}, "
                f"{self.retries}/{self.allowance:.1f} spent, "
                f"denied={self.retries_denied})")


class RetryPolicy:
    """How a client retries: attempt count, timeouts, hedging, budget.

    ``timeout_ms`` is the first attempt's timeout; attempt ``n`` waits
    ``timeout_ms * backoff**(n-1)`` (clamped to ``max_timeout_ms``), with
    ``jitter_frac`` of symmetric multiplicative jitter drawn from the
    caller's RNG stream.  ``hedge_after_ms`` arms a hedged second query
    on the first attempt.  ``budget``, when shared between clients, gates
    every retry attempt globally.
    """

    def __init__(self, retries: int = 2, timeout_ms: float = 3000.0,
                 backoff: float = 2.0,
                 max_timeout_ms: Optional[float] = None,
                 jitter_frac: float = 0.0,
                 hedge_after_ms: Optional[float] = None,
                 budget: Optional[RetryBudget] = None) -> None:
        if retries < 0:
            raise ValueError(f"retries {retries} must be >= 0")
        if timeout_ms <= 0:
            raise ValueError(f"timeout {timeout_ms} must be positive")
        if backoff < 1.0:
            raise ValueError(f"backoff {backoff} must be >= 1")
        if not 0 <= jitter_frac < 1:
            raise ValueError(f"jitter_frac {jitter_frac} out of [0, 1)")
        if hedge_after_ms is not None and hedge_after_ms <= 0:
            raise ValueError(f"hedge_after_ms {hedge_after_ms} must be > 0")
        self.retries = retries
        self.timeout_ms = timeout_ms
        self.backoff = backoff
        self.max_timeout_ms = max_timeout_ms
        self.jitter_frac = jitter_frac
        self.hedge_after_ms = hedge_after_ms
        self.budget = budget

    def timeout_for(self, attempt: int,
                    rng: Optional[random.Random] = None) -> float:
        """Timeout (ms) for 1-based ``attempt``, backoff and jitter applied.

        A policy configured with jitter demands an explicit RNG stream:
        silently skipping the jitter when ``rng`` is omitted would both
        change behaviour and hide a break in the named-stream
        discipline.
        """
        if attempt < 1:
            raise ValueError(f"attempt {attempt} must be >= 1")
        timeout = self.timeout_ms * self.backoff ** (attempt - 1)
        if self.max_timeout_ms is not None:
            timeout = min(timeout, self.max_timeout_ms)
        if self.jitter_frac:
            if rng is None:
                raise ValueError(
                    "jitter_frac is set but no RNG stream was passed; "
                    "thread an explicit random.Random stream")
            timeout *= 1.0 + self.jitter_frac * (2.0 * rng.random() - 1.0)
        return timeout

    def may_retry(self, attempt: int) -> bool:
        """Whether attempt ``attempt + 1`` is allowed (count and budget)."""
        if attempt > self.retries:
            return False
        if self.budget is not None:
            return self.budget.try_acquire()
        return True

    def __repr__(self) -> str:
        hedge = (f", hedge_after={self.hedge_after_ms}ms"
                 if self.hedge_after_ms is not None else "")
        return (f"RetryPolicy(retries={self.retries}, "
                f"timeout={self.timeout_ms}ms, backoff={self.backoff}"
                f"{hedge})")
