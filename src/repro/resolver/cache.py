"""A TTL-aware DNS cache with positive and negative entries.

Keys are ``(name, rtype)``.  Positive entries store full resource records
and serve them back with decremented TTLs.  Negative entries (RFC 2308)
store the NXDOMAIN/NODATA status with the TTL taken from the zone SOA's
minimum field.  Capacity is bounded with LRU eviction.

The paper's Figure 2 analysis notes that popular CDN domains are answered
from L-DNS caches ("the A records TTL never expires at L-DNS"), so cache
behaviour is directly load-bearing for the reproduction.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.dnswire.message import ResourceRecord
from repro.dnswire.name import Name
from repro.dnswire.types import RecordType

#: Cap on stored TTLs; long TTLs are clamped as real resolvers do.
MAX_TTL = 86400
#: Floor applied when inserting, so zero-TTL records are still usable once.
MIN_POSITIVE_TTL = 0
#: TTL stamped on stale answers (RFC 8767 §5.2 recommends 30 seconds).
STALE_ANSWER_TTL = 30
#: How long past expiry an entry stays usable for serve-stale (RFC 8767
#: suggests one to three days; a conservative hour is the default here).
DEFAULT_MAX_STALE_TTL = 3600


class CacheOutcome(enum.Enum):
    """What the cache knows about a (name, rtype)."""

    MISS = "miss"
    HIT = "hit"
    NEGATIVE_NXDOMAIN = "nxdomain"
    NEGATIVE_NODATA = "nodata"


class CacheAnswer:
    """The result of a cache probe."""

    __slots__ = ("outcome", "records", "stale")

    def __init__(self, outcome: CacheOutcome,
                 records: Optional[List[ResourceRecord]] = None,
                 stale: bool = False) -> None:
        self.outcome = outcome
        self.records = records or []
        self.stale = stale

    @property
    def is_miss(self) -> bool:
        return self.outcome == CacheOutcome.MISS

    def __repr__(self) -> str:
        flavor = " stale" if self.stale else ""
        return (f"CacheAnswer({self.outcome.value},"
                f" {len(self.records)} records{flavor})")


_Key = Tuple[Name, RecordType]


class _PositiveEntry:
    __slots__ = ("records", "expires_at")

    def __init__(self, records: List[ResourceRecord], expires_at: float) -> None:
        self.records = records
        self.expires_at = expires_at


class _NegativeEntry:
    __slots__ = ("outcome", "expires_at")

    def __init__(self, outcome: CacheOutcome, expires_at: float) -> None:
        self.outcome = outcome
        self.expires_at = expires_at


class DnsCache:
    """Bounded LRU cache of RRsets and negative answers.

    With ``serve_stale`` enabled (RFC 8767), expired positive entries are
    retained for ``max_stale_ttl`` seconds past expiry; :meth:`get` still
    reports a MISS for them (resolution must be *attempted*), but
    :meth:`get_stale` serves them when the attempt fails.
    """

    def __init__(self, max_entries: int = 100_000,
                 serve_stale: bool = False,
                 max_stale_ttl: int = DEFAULT_MAX_STALE_TTL) -> None:
        if max_entries <= 0:
            raise ValueError("cache capacity must be positive")
        if max_stale_ttl < 0:
            raise ValueError("max_stale_ttl must be >= 0")
        self.max_entries = max_entries
        self.serve_stale = serve_stale
        self.max_stale_ttl = max_stale_ttl
        self._positive: "OrderedDict[_Key, _PositiveEntry]" = OrderedDict()
        self._negative: "OrderedDict[_Key, _NegativeEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.negative_hits = 0
        self.stale_hits = 0

    def __len__(self) -> int:
        return len(self._positive) + len(self._negative)

    # -- insertion ---------------------------------------------------------------

    def put_records(self, records: List[ResourceRecord], now: float) -> None:
        """Insert records, grouped into RRsets by (owner, type)."""
        grouped: Dict[_Key, List[ResourceRecord]] = {}
        for record in records:
            if record.rtype == RecordType.OPT:
                continue
            grouped.setdefault((record.name, record.rtype), []).append(record)
        for key, rrset in grouped.items():
            ttl = min(min(record.ttl for record in rrset), MAX_TTL)
            self._negative.pop(key, None)
            self._positive[key] = _PositiveEntry(rrset, now + ttl * 1000.0)
            self._positive.move_to_end(key)
            self._evict_if_needed()

    def put_negative(self, name: Name, rtype: RecordType,
                     outcome: CacheOutcome, ttl: int, now: float) -> None:
        """Insert an NXDOMAIN/NODATA entry with the SOA-derived TTL."""
        if outcome not in (CacheOutcome.NEGATIVE_NXDOMAIN,
                           CacheOutcome.NEGATIVE_NODATA):
            raise ValueError(f"{outcome} is not a negative outcome")
        key = (name, rtype)
        self._positive.pop(key, None)
        self._negative[key] = _NegativeEntry(
            outcome, now + min(ttl, MAX_TTL) * 1000.0)
        self._negative.move_to_end(key)
        self._evict_if_needed()

    def _evict_if_needed(self) -> None:
        while len(self) > self.max_entries:
            if self._negative:
                self._negative.popitem(last=False)
            else:
                self._positive.popitem(last=False)

    # -- probing ------------------------------------------------------------------

    def get(self, name: Name, rtype: RecordType, now: float) -> CacheAnswer:
        """Probe the cache; TTLs in returned records are decremented."""
        key = (name, rtype)
        positive = self._positive.get(key)
        if positive is not None:
            if positive.expires_at <= now:
                if not self._usable_stale(positive, now):
                    del self._positive[key]
            else:
                self._positive.move_to_end(key)
                self.hits += 1
                remaining = int((positive.expires_at - now) / 1000.0)
                return CacheAnswer(
                    CacheOutcome.HIT,
                    [record.with_ttl(remaining) for record in positive.records])
        negative = self._negative.get(key)
        if negative is not None:
            if negative.expires_at <= now:
                del self._negative[key]
            else:
                self._negative.move_to_end(key)
                self.negative_hits += 1
                return CacheAnswer(negative.outcome)
        # NXDOMAIN for the name under any type implies NXDOMAIN for all types.
        for (cached_name, _), entry in self._negative.items():
            if (cached_name == name and entry.expires_at > now
                    and entry.outcome == CacheOutcome.NEGATIVE_NXDOMAIN):
                self.negative_hits += 1
                return CacheAnswer(CacheOutcome.NEGATIVE_NXDOMAIN)
        self.misses += 1
        return CacheAnswer(CacheOutcome.MISS)

    def get_stale(self, name: Name, rtype: RecordType,
                  now: float) -> CacheAnswer:
        """Serve an expired entry after a failed resolution attempt.

        RFC 8767: resolution must have been attempted (and failed) before
        stale data is used, so callers probe :meth:`get` first, go
        upstream on MISS, and only fall back here.  Stale records carry
        :data:`STALE_ANSWER_TTL`; entries older than ``max_stale_ttl``
        are gone.  A still-fresh entry is served normally.
        """
        key = (name, rtype)
        entry = self._positive.get(key)
        if entry is None:
            return CacheAnswer(CacheOutcome.MISS)
        if entry.expires_at > now:
            self.hits += 1
            remaining = int((entry.expires_at - now) / 1000.0)
            return CacheAnswer(
                CacheOutcome.HIT,
                [record.with_ttl(remaining) for record in entry.records])
        if not self._usable_stale(entry, now):
            del self._positive[key]
            return CacheAnswer(CacheOutcome.MISS)
        self.stale_hits += 1
        return CacheAnswer(
            CacheOutcome.HIT,
            [record.with_ttl(STALE_ANSWER_TTL) for record in entry.records],
            stale=True)

    def _usable_stale(self, entry: _PositiveEntry, now: float) -> bool:
        return (self.serve_stale
                and now < entry.expires_at + self.max_stale_ttl * 1000.0)

    def peek_addresses(self, name: Name, now: float) -> List[str]:
        """Cached A-record addresses for ``name`` without counting stats."""
        entry = self._positive.get((name, RecordType.A))
        if entry is None or entry.expires_at <= now:
            return []
        return [record.rdata.address for record in entry.records]  # type: ignore[attr-defined]

    def flush(self) -> None:
        """Drop every cached entry."""
        self._positive.clear()
        self._negative.clear()

    def __repr__(self) -> str:
        return (f"DnsCache({len(self._positive)} positive, "
                f"{len(self._negative)} negative, hits={self.hits}, "
                f"misses={self.misses})")
