"""DNS server and client implementations on top of the simulator.

* :mod:`repro.resolver.cache` — TTL-aware positive/negative cache.
* :mod:`repro.resolver.server` — base class: socket handling, wire codec,
  processing delay, upstream query helper.
* :mod:`repro.resolver.authoritative` — authoritative server over zones
  (CNAME chasing, wildcards, referrals, ECS hook).
* :mod:`repro.resolver.recursive` — iterative resolver with root hints,
  referral chasing, glue handling, and negative caching.
* :mod:`repro.resolver.forwarder` — forwarding resolver with stub-domain
  routing (the CoreDNS mechanism the paper's prototype configures).
* :mod:`repro.resolver.stub` — the client side; its :class:`DigResult`
  mirrors the fields the paper reads off ``dig``.
* :mod:`repro.resolver.chain` — CoreDNS-style plugin chain.
* :mod:`repro.resolver.retry` — retry policies: backoff + jitter,
  retry budgets, hedged queries (for fault-injection runs).
"""

from repro.resolver.cache import DnsCache, CacheOutcome
from repro.resolver.server import DnsServer
from repro.resolver.authoritative import AuthoritativeServer
from repro.resolver.recursive import RecursiveResolver
from repro.resolver.forwarder import ForwardingResolver
from repro.resolver.stub import StubResolver, DigResult
from repro.resolver.chain import Plugin, PluginChain, QueryContext
from repro.resolver.retry import RetryBudget, RetryPolicy
from repro.resolver.xfr import SecondaryZone

__all__ = [
    "DnsCache",
    "CacheOutcome",
    "DnsServer",
    "AuthoritativeServer",
    "RecursiveResolver",
    "ForwardingResolver",
    "StubResolver",
    "DigResult",
    "Plugin",
    "PluginChain",
    "QueryContext",
    "RetryBudget",
    "RetryPolicy",
    "SecondaryZone",
]
