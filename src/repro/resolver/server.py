"""Base class for simulated DNS servers.

Handles the transport plumbing every server shares: binding a socket,
decoding queries (FORMERR on garbage, NOTIMP on unsupported opcodes),
sampling a per-query processing delay, running the subclass handler as a
simulator process, and encoding the response.

Subclasses implement :meth:`DnsServer.handle_query`, either as a plain
method returning a :class:`~repro.dnswire.message.Message` or as a
generator (a simulator process) when they need upstream queries.
"""

from __future__ import annotations

import inspect
from typing import Generator, Optional

from repro.dnswire.message import Message, cached_wire, make_response
from repro.dnswire.types import Opcode, Rcode
from repro.errors import QueryTimeout, WireFormatError
from repro.netsim.latency import Constant, LatencyModel
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.packet import Endpoint
from repro.netsim.socket import UdpSocket

#: Default per-query processing time: sub-millisecond, as for a warm
#: in-memory resolver.
DEFAULT_PROCESSING_DELAY = Constant(0.2)

DNS_PORT = 53
#: The simulator has one port space per host (no protocol dimension), so
#: DNS-over-TCP (really TCP/53) listens here.
DNS_TCP_PORT = 1053
#: Responses larger than the client's advertised payload are truncated
#: (TC=1) and the client retries over the stream transport (RFC 7766).
CLASSIC_UDP_PAYLOAD = 512


class DnsServer:
    """A DNS server bound to ``host``'s address on ``port``.

    ``workers`` bounds concurrent query processing (an M/G/c-style service
    model): when every worker is busy, queries queue FIFO, and beyond
    ``max_queue`` they are silently dropped — which is what a flooded
    resolver looks like to its clients.  The default is unbounded, i.e.
    the server is never the bottleneck (the right model for the latency
    calibration experiments); the overload experiments set it explicitly.
    """

    def __init__(self, network: Network, host: Host,
                 ip: Optional[str] = None, port: int = DNS_PORT,
                 processing_delay: Optional[LatencyModel] = None,
                 name: Optional[str] = None,
                 enable_tcp: bool = True,
                 workers: Optional[int] = None,
                 max_queue: int = 256) -> None:
        self.network = network
        self.host = host
        self.name = name or f"{type(self).__name__}@{host.name}"
        self.processing_delay = processing_delay or DEFAULT_PROCESSING_DELAY
        self.sock = UdpSocket(host, ip=ip, port=port)
        self.sock.on_datagram = self._on_datagram
        self._rng = network.streams.stream(f"dns-server:{self.name}")
        self._next_query_id = 1
        self.queries_received = 0
        self.responses_sent = 0
        self.truncated_sent = 0
        self.tcp_queries_received = 0
        if workers is not None and workers < 1:
            raise ValueError("worker count must be >= 1")
        self.workers = workers
        self.max_queue = max_queue
        self._busy_workers = 0
        self._backlog: "list" = []
        self.queries_dropped = 0
        self.peak_backlog = 0
        self._tcp_server = None
        if enable_tcp and port == DNS_PORT:
            from repro.netsim.stream import StreamServer
            self._tcp_server = StreamServer(
                network, host, DNS_TCP_PORT, self._handle_stream_query,
                ip=self.sock.ip)

    @property
    def endpoint(self) -> Endpoint:
        return self.sock.endpoint

    # -- transport ------------------------------------------------------------

    def _on_datagram(self, payload: bytes, client: Endpoint,
                     sock: UdpSocket) -> None:
        self.queries_received += 1
        tel = self.network.telemetry
        if tel is not None:
            tel.metrics.counter("repro_dns_queries_total",
                                "queries received by DNS servers").inc(
                                    server=self.name)
        try:
            query = Message.from_wire(payload)
        except WireFormatError:
            self._send_error_for_garbage(payload, client)
            return
        # Join the client's trace: the context rode the datagram
        # out-of-band, and the decoded Message carries it onward.
        query.trace_ctx = sock.last_delivery_ctx
        if query.opcode != Opcode.QUERY or not query.questions:
            response = make_response(query, rcode=Rcode.NOTIMP)
            self._send(response, client)
            return
        self._admit(query, client)

    def _admit(self, query: Message, client: Endpoint) -> None:
        """Run immediately if a worker is free; queue or drop otherwise."""
        if self.workers is None or self._busy_workers < self.workers:
            self._busy_workers += 1
            self.network.sim.spawn(self._serve_and_release(query, client))
            return
        if len(self._backlog) >= self.max_queue:
            self.queries_dropped += 1
            tel = self.network.telemetry
            if tel is not None:
                tel.metrics.counter(
                    "repro_dns_queries_shed_total",
                    "queries dropped by overloaded servers").inc(
                        server=self.name)
            return
        self._backlog.append((query, client))
        self.peak_backlog = max(self.peak_backlog, len(self._backlog))

    def _serve_and_release(self, query: Message,
                           client: Endpoint) -> Generator:
        try:
            yield from self._serve(query, client)
        finally:
            self._busy_workers -= 1
            if self._backlog:
                next_query, next_client = self._backlog.pop(0)
                self._busy_workers += 1
                self.network.sim.spawn(
                    self._serve_and_release(next_query, next_client))

    def _serve(self, query: Message, client: Endpoint) -> Generator:
        tel = self.network.telemetry
        span = None
        if tel is not None:
            qname = str(query.questions[0].name) if query.questions else "?"
            span = tel.tracer.begin("dns.serve", "resolver", self.host.name,
                                    parent=getattr(query, "trace_ctx", None),
                                    server=self.name, qname=qname)
            if span is not None:
                # Children spawned by the handler (plugin chain, upstream
                # exchanges, the reply datagram) nest under the serve span.
                query.trace_ctx = span.context
        yield self.processing_delay.sample(self._rng)
        response = yield from self._produce_response(query, client)
        if response is not None:
            self._send(response, client, query)
        if tel is not None:
            tel.tracer.end(span, rcode=(response.rcode.name
                                        if response is not None
                                        else "NO-RESPONSE"))

    def _produce_response(self, query: Message,
                          client: Endpoint) -> Generator:
        try:
            result = self.handle_query(query, client)
            if inspect.isgenerator(result):
                response = yield from result
            else:
                response = result
        except QueryTimeout:
            response = make_response(query, rcode=Rcode.SERVFAIL)
        return response

    def _handle_stream_query(self, payload: bytes,
                             client: Endpoint) -> Generator:
        """DNS-over-TCP path: no size limit, no truncation."""
        self.tcp_queries_received += 1
        try:
            query = Message.from_wire(payload)
        except WireFormatError:
            return b""
            yield  # pragma: no cover - generator marker
        yield self.processing_delay.sample(self._rng)
        response = yield from self._produce_response(query, client)
        return response.to_wire() if response is not None else b""

    def _send(self, response: Message, client: Endpoint,
              query: Optional[Message] = None) -> None:
        self.responses_sent += 1
        wire = cached_wire(response)
        max_payload = CLASSIC_UDP_PAYLOAD
        if query is not None and query.edns is not None:
            max_payload = max(query.edns.udp_payload, CLASSIC_UDP_PAYLOAD)
        if len(wire) > max_payload:
            # RFC 1035 §4.2.1 truncation: signal TC and drop the records
            # that no longer fit; the client retries over the stream.
            truncated = make_response(
                query if query is not None else response,
                rcode=response.rcode,
                recursion_available=response.flags.ra,
                authoritative=response.flags.aa)
            truncated.flags.tc = True
            wire = cached_wire(truncated)
            response = truncated
            self.truncated_sent += 1
        ctx = getattr(query, "trace_ctx", None) if query is not None else None
        # The response object is done on this side — hand it to the
        # client as a decoded view so the reply is never re-parsed.
        self.sock.send_to(wire, client, ctx=ctx, view=response)

    def _send_error_for_garbage(self, payload: bytes, client: Endpoint) -> None:
        """Best effort FORMERR: echo the query id if two octets exist."""
        if len(payload) < 2:
            return
        response = Message(msg_id=int.from_bytes(payload[:2], "big"),
                           rcode=Rcode.FORMERR)
        response.flags.qr = True
        self._send(response, client)

    # -- upstream helper ----------------------------------------------------------

    def query_upstream(self, query: Message, server: Endpoint,
                       timeout: float, ctx=None) -> Generator:
        """Process: send ``query`` to ``server``; return the parsed response.

        Opens a fresh ephemeral socket per attempt (matching stub resolver
        practice and keeping concurrent upstream queries independent).
        Raises :class:`~repro.errors.QueryTimeout` on timeout and
        :class:`~repro.errors.WireFormatError` on an undecodable reply.
        """
        tel = self.network.telemetry
        span = None
        if tel is not None:
            span = tel.tracer.begin("upstream.exchange", "resolver",
                                    self.host.name, parent=ctx,
                                    server=self.name, upstream=str(server))
        sock = UdpSocket(self.host, ip=self.sock.ip)
        try:
            reply = yield sock.request(
                cached_wire(query), server, timeout,
                ctx=span.context if span is not None else ctx)
        except Exception as error:
            if tel is not None:
                tel.tracer.end(span, outcome=type(error).__name__)
            raise
        finally:
            sock.close()
        view = reply.claim_view()
        response = view if isinstance(view, Message) \
            else Message.from_wire(reply.payload)
        if tel is not None:
            tel.tracer.end(span, outcome=response.rcode.name)
        return response

    def allocate_query_id(self) -> int:
        """A fresh message id for an upstream query."""
        self._next_query_id = (self._next_query_id + 1) & 0xFFFF or 1
        return self._next_query_id

    # -- subclass API -----------------------------------------------------------------

    def handle_query(self, query: Message, client: Endpoint):
        """Produce a response Message (or a generator yielding one).

        Returning ``None`` suppresses the response (used by policy plugins
        that deliberately ignore queries, per the paper's "MEC DNS ignores
        queries not related to MEC-CDN" workaround).
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name}, {self.endpoint})"
