"""The declarative experiment protocol.

An :class:`Experiment` is a stateless, picklable recipe in three pure
parts:

* :meth:`Experiment.trials` expands resolved parameters into an ordered
  list of :class:`~repro.runtime.spec.TrialSpec` cells;
* :meth:`Experiment.run_trial` executes one cell in its own fresh
  ``Simulator`` and returns a picklable payload;
* :meth:`Experiment.merge` folds the payloads — **always in spec
  order, never completion order** — back into the published artifact.

Because every observable comes out of ``merge`` over spec-ordered
payloads, a serial run and an N-way sharded run produce byte-identical
rendered output and JSON digests; :mod:`repro.runtime.executor` is the
machinery that exploits this.

Experiments declare their tunables as :class:`Param` rows, which is
what lets the CLI generate its flags from the registry instead of
hand-maintaining an if/elif dispatch.
"""

from __future__ import annotations

import abc
import hashlib
import json
from typing import (Callable, ClassVar, Dict, List, Mapping, NamedTuple,
                    Optional, Sequence, Tuple)

from repro.runtime.spec import TrialSpec, freeze_cell


class Param(NamedTuple):
    """One declared experiment parameter.

    ``kind`` is the argparse-style converter (``int``, ``float``, or
    ``bool`` for a store-true flag); ``cli=False`` keeps a parameter
    programmatic-only (it still resolves through ``run_serial``
    overrides, it just grows no command-line flag).
    """

    name: str
    kind: Callable[[str], object]
    default: object
    help: str = ""
    cli: bool = True


class Experiment(abc.ABC):
    """A declarative trial plan: expand, run each cell, merge."""

    #: Registry/CLI name of the artifact (``figure5``, ``envelope-sweep``).
    name: ClassVar[str] = ""
    #: One-line description shown in CLI help.
    title: ClassVar[str] = ""
    #: Declared tunables; :meth:`resolve_params` fills the defaults.
    params: ClassVar[Tuple[Param, ...]] = ()
    #: Whether the CLI prints a ``shape claims:`` line for this artifact.
    shape_checked: ClassVar[bool] = True

    # -- parameters ---------------------------------------------------------

    def resolve_params(
            self, overrides: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, object]:
        """Declared defaults with ``overrides`` applied; rejects unknowns."""
        resolved: Dict[str, object] = {param.name: param.default
                                       for param in self.params}
        if overrides:
            unknown = sorted(set(overrides) - set(resolved))
            if unknown:
                raise ValueError(
                    f"experiment {self.name!r} has no parameter(s) "
                    f"{', '.join(unknown)} (declared: "
                    f"{', '.join(p.name for p in self.params) or 'none'})")
            resolved.update(overrides)
        return resolved

    # -- the three pure parts ----------------------------------------------

    @abc.abstractmethod
    def trials(self, params: Mapping[str, object]) -> List[TrialSpec]:
        """Expand resolved ``params`` into the ordered trial plan."""

    @abc.abstractmethod
    def run_trial(self, spec: TrialSpec) -> object:
        """Execute one cell in a fresh simulator; return picklable data."""

    @abc.abstractmethod
    def merge(self, params: Mapping[str, object],
              payloads: Sequence[object]) -> object:
        """Fold spec-ordered payloads into the published result."""

    # -- presentation -------------------------------------------------------

    def render_result(self, result: object) -> str:
        """The artifact's printed form (defaults to ``result.render()``)."""
        render = getattr(result, "render")
        text: str = render()
        return text

    def check_shape(self, result: object) -> List[str]:
        """Violated shape claims for ``result`` (empty = all hold)."""
        return []

    # -- convenience --------------------------------------------------------

    def spec(self, index: int, seed: int, **cell: object) -> TrialSpec:
        """A :class:`TrialSpec` for this experiment (canonical cell form)."""
        return TrialSpec(experiment=self.name, index=index,
                         cell=freeze_cell(**cell), seed=seed)

    def run_serial(self, **overrides: object) -> object:
        """Expand, run every trial in-process, merge.

        The plain programmatic entry point behind each experiment
        module's historical ``run(...)`` function; the sharded path
        lives in :class:`repro.runtime.executor.TrialExecutor`.
        """
        params = self.resolve_params(overrides)
        specs = self.trials(params)
        return self.merge(params, [self.run_trial(spec) for spec in specs])

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, {len(self.params)} params)"


def jsonify(value: object) -> object:
    """``value`` as JSON-serializable data, recursing into containers.

    NamedTuples become field dicts, mappings stringify their keys, and
    anything non-primitive falls back to ``repr`` — enough structure
    for a stable digest of any experiment result in this repo.
    """
    if isinstance(value, tuple) and hasattr(value, "_asdict"):
        fields: Mapping[str, object] = value._asdict()
        return {key: jsonify(item) for key, item in fields.items()}
    if isinstance(value, dict):
        return {str(key): jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(item) for item in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def result_digest(result: object) -> str:
    """A sha256 hex digest of ``result``'s canonical JSON form.

    The determinism contract's currency: serial and sharded runs of the
    same experiment must produce equal digests.
    """
    document = json.dumps(jsonify(result), sort_keys=True,
                          separators=(",", ":"))
    return hashlib.sha256(document.encode("utf-8")).hexdigest()
