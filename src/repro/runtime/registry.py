"""Name → experiment registry that drives the CLI.

The registry replaces the CLI's historical if/elif dispatch: artifacts
register once (in publication order), the CLI asks :meth:`cli_params`
for the union of declared tunables and grows one argparse flag per
parameter, and ``experiment all`` is just iteration.
"""

from __future__ import annotations

import argparse
from typing import Dict, Iterator, List

from repro.runtime.experiment import Experiment, Param


class ExperimentRegistry:
    """An ordered mapping of artifact name to experiment recipe."""

    def __init__(self) -> None:
        self._experiments: Dict[str, Experiment] = {}

    def register(self, experiment: Experiment) -> Experiment:
        """Add ``experiment`` under its declared name; reject collisions."""
        name = experiment.name
        if not name:
            raise ValueError(
                f"{type(experiment).__name__} declares no name")
        if name in self._experiments:
            raise ValueError(f"experiment {name!r} is already registered")
        self._experiments[name] = experiment
        return experiment

    def get(self, name: str) -> Experiment:
        """The experiment registered as ``name``; raises ``KeyError``."""
        try:
            return self._experiments[name]
        except KeyError:
            raise KeyError(
                f"unknown experiment {name!r} (registered: "
                f"{', '.join(self.names())})") from None

    def names(self) -> List[str]:
        """Registered names, in registration (publication) order."""
        return list(self._experiments)

    def __iter__(self) -> Iterator[Experiment]:
        return iter(self._experiments.values())

    def __contains__(self, name: object) -> bool:
        return name in self._experiments

    def __len__(self) -> int:
        return len(self._experiments)

    # -- CLI integration -----------------------------------------------------

    def cli_params(self) -> List[Param]:
        """The union of CLI-visible params, first-seen order.

        Same-named parameters must agree on converter and default across
        experiments — the CLI exposes one flag feeding all of them.
        """
        union: Dict[str, Param] = {}
        for experiment in self:
            for param in experiment.params:
                if not param.cli:
                    continue
                seen = union.get(param.name)
                if seen is None:
                    union[param.name] = param
                elif (seen.kind, seen.default) != (param.kind, param.default):
                    raise ValueError(
                        f"parameter {param.name!r} declared with "
                        f"conflicting kind/default by {experiment.name!r}")
        return list(union.values())

    def add_cli_arguments(self, parser: argparse.ArgumentParser) -> None:
        """Grow one flag per union parameter on ``parser``."""
        for param in self.cli_params():
            flag = "--" + param.name.replace("_", "-")
            if param.kind is bool:
                parser.add_argument(flag, action="store_true",
                                    default=bool(param.default),
                                    help=param.help)
            else:
                parser.add_argument(flag, type=param.kind,
                                    default=param.default, help=param.help,
                                    dest=param.name)
