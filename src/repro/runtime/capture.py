"""Per-trial telemetry capture and deterministic re-merge.

The ambient-telemetry flow (``repro.cli --trace-out/--metrics-out``)
hangs one :class:`~repro.telemetry.Telemetry` facade on every network a
run builds.  Under sharded execution that facade cannot be shared — a
worker process would mutate a fork-copied tracer nobody reads — and
even in-process it would make span numbering depend on completion
order.  So the executor gives **every trial its own fresh facade**
(serial and parallel alike), snapshots it when the trial ends, and
merges the snapshots into the session facade *after the barrier, in
spec order*.  Exported traces and metrics therefore come out
byte-identical for ``--jobs 1`` and ``--jobs N``.

A snapshot carries finished spans plus the metrics registry — both are
plain data and pickle cleanly; the tracer itself does not (its clock is
a lambda), which is exactly why snapshots exist.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro import telemetry as _telemetry
from repro.telemetry import MetricsRegistry, Span, Telemetry


class TelemetrySnapshot(NamedTuple):
    """One trial's telemetry output, detached from any clock."""

    spans: List[Span]
    dropped: int
    metrics: MetricsRegistry


def begin_trial_capture(enabled: bool) -> Optional[Telemetry]:
    """Install a fresh ambient facade for one trial (or none at all).

    Always *replaces* the ambient default — in a forked worker the
    inherited default is a dead copy of the parent's facade and must
    never collect anything.
    """
    facade = Telemetry() if enabled else None
    _telemetry.set_default(facade)
    return facade


def end_trial_capture(
        facade: Optional[Telemetry],
        restore: Optional[Telemetry] = None) -> Optional[TelemetrySnapshot]:
    """Snapshot ``facade`` and restore the previous ambient default."""
    _telemetry.set_default(restore)
    if facade is None:
        return None
    return TelemetrySnapshot(spans=list(facade.tracer.finished),
                             dropped=facade.tracer.dropped,
                             metrics=facade.metrics)


def merge_snapshot(session: Telemetry,
                   snapshot: Optional[TelemetrySnapshot]) -> None:
    """Fold one trial's snapshot into the session facade.

    Span and trace ids are remapped past the session tracer's
    high-water mark (`Tracer.absorb`), so per-trial id spaces
    concatenate identically regardless of which backend produced them.
    """
    if snapshot is None:
        return
    session.tracer.absorb(snapshot.spans)
    session.tracer.dropped += snapshot.dropped
    session.metrics.merge_from(snapshot.metrics)
