"""Per-trial telemetry and wall-clock-profile capture, deterministic re-merge.

The ambient-telemetry flow (``repro.cli --trace-out/--metrics-out``)
hangs one :class:`~repro.telemetry.Telemetry` facade on every network a
run builds.  Under sharded execution that facade cannot be shared — a
worker process would mutate a fork-copied tracer nobody reads — and
even in-process it would make span numbering depend on completion
order.  So the executor gives **every trial its own fresh facade**
(serial and parallel alike), snapshots it when the trial ends, and
merges the snapshots into the session facade *after the barrier, in
spec order*.  Exported traces and metrics therefore come out
byte-identical for ``--jobs 1`` and ``--jobs N``.

A snapshot carries finished spans, the metrics registry, the windowed
time-series, the tail-exemplar reservoir, and a triple of engine
counters — all plain data that pickles cleanly; the tracer itself does
not (its clock is a lambda), which is exactly why snapshots exist.

The same begin/snapshot/merge discipline covers **wall-clock profiles**
(``repro profile``): each trial optionally runs under its own
:class:`cProfile.Profile`, the raw stats table is snapshotted (it is
plain picklable data), and the per-trial tables are folded together
after the barrier in spec order — the cProfile analog of
``Tracer.absorb``.  Profiling observes the interpreter, never the
simulation: a trial's instruction stream, RNG draws, and simulated
clock are identical with the profiler on or off.
"""

from __future__ import annotations

import cProfile
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, cast

from repro import telemetry as _telemetry
from repro.telemetry import (MetricsRegistry, Span, TailReservoir, Telemetry,
                             TelemetryConfig, TimeSeries)

#: cProfile's function identity: ``(filename, lineno, funcname)``.
FuncKey = Tuple[str, int, str]
#: One caller's contribution: ``(callcount, primcalls, tottime, cumtime)``.
CallerStats = Tuple[int, int, float, float]
#: One function's row in the raw stats table, callers included.
FuncStats = Tuple[int, int, float, float, Dict[FuncKey, CallerStats]]
#: The whole raw table, as ``cProfile.Profile.stats`` lays it out.
ProfileStats = Dict[FuncKey, FuncStats]


class TelemetrySnapshot(NamedTuple):
    """One trial's telemetry output, detached from any clock."""

    spans: List[Span]
    dropped: int
    #: Spans head-sampling discarded in this trial (accounting only).
    sampled_out: int
    metrics: MetricsRegistry
    #: Windowed counters/latency aggregates on the simulated timeline.
    timeseries: TimeSeries
    #: Slowest-query exemplars retained by this trial.
    tail: TailReservoir
    #: ``(simulators, max queue high-water, events processed)`` read off
    #: the engine at trial end — plain ints, merged max/sum/sum.
    engine: Tuple[int, int, int]


def begin_trial_capture(
        config: Optional[TelemetryConfig]) -> Optional[Telemetry]:
    """Install a fresh ambient facade for one trial (or none at all).

    ``config`` is the session facade's :class:`TelemetryConfig` (or
    ``None`` for no capture): every trial facade must make the same
    sampling decisions and use the same window/reservoir layout as the
    session it merges into, so the executor ships the six-value config
    across the process boundary instead of the facade itself.

    Always *replaces* the ambient default — in a forked worker the
    inherited default is a dead copy of the parent's facade and must
    never collect anything.
    """
    facade = (Telemetry.from_config(config)
              if config is not None else None)
    _telemetry.set_default(facade)
    return facade


def end_trial_capture(
        facade: Optional[Telemetry],
        restore: Optional[Telemetry] = None) -> Optional[TelemetrySnapshot]:
    """Snapshot ``facade`` and restore the previous ambient default."""
    _telemetry.set_default(restore)
    if facade is None:
        return None
    return TelemetrySnapshot(spans=list(facade.tracer.finished),
                             dropped=facade.tracer.dropped,
                             sampled_out=facade.tracer.sampled_out,
                             metrics=facade.metrics,
                             timeseries=facade.timeseries,
                             tail=facade.tail,
                             engine=facade.engine_stats())


def merge_snapshot(session: Telemetry,
                   snapshot: Optional[TelemetrySnapshot]) -> None:
    """Fold one trial's snapshot into the session facade.

    Span and trace ids are remapped past the session tracer's
    high-water mark (`Tracer.absorb`), so per-trial id spaces
    concatenate identically regardless of which backend produced them.
    Time-series windows add cell-wise and tail reservoirs merge under
    their strict total order — both merge-order independent, but folded
    in spec order anyway, same as everything else.
    """
    if snapshot is None:
        return
    session.tracer.absorb(snapshot.spans)
    session.tracer.dropped += snapshot.dropped
    session.tracer.sampled_out += snapshot.sampled_out
    session.metrics.merge_from(snapshot.metrics)
    session.timeseries.merge_from(snapshot.timeseries)
    session.tail.merge(snapshot.tail)


# -- wall-clock profile capture ---------------------------------------------------


def begin_profile_capture(enabled: bool) -> Optional[cProfile.Profile]:
    """Start a fresh per-trial profiler, or nothing at all.

    Kept symmetric with :func:`begin_trial_capture`: the executor calls
    both at trial entry, and a disabled capture costs a ``None`` check.
    """
    if not enabled:
        return None
    profiler = cProfile.Profile()
    profiler.enable()
    return profiler


def end_profile_capture(
        profiler: Optional[cProfile.Profile]) -> Optional[ProfileStats]:
    """Stop ``profiler`` and return its raw stats table (picklable data)."""
    if profiler is None:
        return None
    profiler.disable()
    profiler.create_stats()
    # ``Profile.stats`` is set by create_stats(); it is exactly the
    # ProfileStats shape but typeshed does not declare the attribute.
    return cast(ProfileStats, getattr(profiler, "stats"))


def merge_profile_stats(
        tables: Sequence[Optional[ProfileStats]]) -> Optional[ProfileStats]:
    """Fold per-trial stats tables together, in the order given.

    Addition of stats rows is what ``pstats.Stats.add`` does; doing it
    here on the raw tables keeps the merge picklable-in, picklable-out
    and independent of which worker produced each table.  Returns
    ``None`` when no table was captured at all.
    """
    merged: Optional[ProfileStats] = None
    for table in tables:
        if table is None:
            continue
        if merged is None:
            merged = {}
        for func, (cc, nc, tt, ct, callers) in table.items():
            have = merged.get(func)
            if have is None:
                merged[func] = (cc, nc, tt, ct, dict(callers))
                continue
            merged_callers = dict(have[4])
            for caller, row in callers.items():
                prior = merged_callers.get(caller)
                merged_callers[caller] = (row if prior is None else
                                          (prior[0] + row[0],
                                           prior[1] + row[1],
                                           prior[2] + row[2],
                                           prior[3] + row[3]))
            merged[func] = (have[0] + cc, have[1] + nc, have[2] + tt,
                            have[3] + ct, merged_callers)
    return merged
