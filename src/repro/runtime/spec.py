"""Trial specifications and the seed-derivation rule.

A :class:`TrialSpec` names one independently-runnable cell of an
experiment sweep — a (deployment, seed, query-count) point, a
(site, connectivity) series, one load-generator rate.  Specs are plain
data: picklable, hashable, and self-contained, so a trial can execute
in this process or be shipped to a worker process and produce the same
payload either way.

Seeds follow the :mod:`repro.netsim.rand` idiom: a cell that must be
statistically independent of its siblings derives its seed from the
experiment's base seed plus the cell coordinates via
:func:`derive_seed` (sha256, like ``RandomStreams.stream``).  A cell
that must reproduce a historical single-process run byte-for-byte
keeps the base seed unchanged — the experiment decides, the executor
never re-seeds.
"""

from __future__ import annotations

import hashlib
from typing import Dict, NamedTuple, Tuple

#: A cell's coordinates as a sorted, hashable ``(key, value)`` tuple.
CellItems = Tuple[Tuple[str, object], ...]


def derive_seed(base: int, *parts: object) -> int:
    """A stable sub-seed for the cell named by ``parts``.

    Mirrors ``RandomStreams.stream``: sha256 over ``base`` and the
    stringified parts, first 8 bytes as an integer.  Pure — the same
    inputs give the same seed in every process on every platform.
    """
    material = ":".join([str(base)] + [str(part) for part in parts])
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def freeze_cell(**cell: object) -> CellItems:
    """Cell coordinates as a canonical key-sorted tuple of pairs."""
    return tuple(sorted(cell.items(), key=lambda item: item[0]))


class TrialSpec(NamedTuple):
    """One independently-executable cell of an experiment sweep."""

    experiment: str
    index: int
    cell: CellItems
    seed: int

    def cell_dict(self) -> Dict[str, object]:
        """The cell coordinates as a plain dict."""
        return dict(self.cell)

    def value(self, key: str) -> object:
        """One cell coordinate; raises ``KeyError`` if absent."""
        for name, value in self.cell:
            if name == key:
                return value
        raise KeyError(f"{self.experiment} trial {self.index} has no "
                       f"cell key {key!r}")

    def label(self) -> str:
        """A short human-readable tag (progress and failure reports)."""
        coords = ",".join(f"{key}={value}" for key, value in self.cell)
        return f"{self.experiment}[{self.index}]({coords})"
