"""Sharded trial execution with per-trial fault isolation.

:class:`TrialExecutor` runs an :class:`~repro.runtime.experiment.Experiment`'s
trial plan through one of two backends:

* **serial** (``jobs=1``) — every trial in this process, in spec order;
* **multiprocessing** (``jobs=N``) — specs pickled to a worker pool,
  payloads collected with ``Pool.map`` (which preserves input order).

Both backends uphold the same contract:

* results are merged strictly in **spec order**, never completion
  order, so the published artifact is byte-identical across backends;
* a trial that raises becomes a structured :class:`TrialFailure` on its
  :class:`TrialOutcome` instead of killing the sweep — the remaining
  trials still run, and ``merge`` is skipped only when something failed;
* when ambient telemetry is installed, each trial collects into its own
  fresh facade and the snapshots are merged after the barrier, in spec
  order (see :mod:`repro.runtime.capture`);
* when wall-clock profiling is requested (``profile=True``), each trial
  runs under its own ``cProfile.Profile`` and the raw tables are folded
  together after the barrier, in spec order — same discipline, so the
  merged profile is identical across backends.

Workers never import experiment modules by name — the experiment
*instance* travels inside the pickled task, and unpickling performs the
import.  That keeps ``runtime`` free of any ``experiments`` import edge
(the layering contract forbids the cycle, lazy imports included).
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import List, Mapping, NamedTuple, Optional, Tuple

from repro import telemetry as _telemetry
from repro.runtime.capture import (ProfileStats, TelemetrySnapshot,
                                   begin_profile_capture, begin_trial_capture,
                                   end_profile_capture, end_trial_capture,
                                   merge_profile_stats, merge_snapshot)
from repro.runtime.experiment import Experiment
from repro.runtime.spec import TrialSpec


class TrialFailure(NamedTuple):
    """One crashed trial, reported as data instead of a dead sweep."""

    spec: TrialSpec
    error: str       # exception class name
    message: str
    traceback: str

    def describe(self) -> str:
        """One-line summary for failure reports."""
        return f"{self.spec.label()}: {self.error}: {self.message}"


class TrialOutcome(NamedTuple):
    """One trial's result: a payload or a failure, never both."""

    spec: TrialSpec
    payload: Optional[object]
    failure: Optional[TrialFailure]


class ExperimentRun(NamedTuple):
    """A full sweep: merged artifact plus per-trial accounting."""

    experiment: str
    params: Tuple[Tuple[str, object], ...]
    #: The merged artifact; ``None`` when any trial failed.
    result: Optional[object]
    outcomes: List[TrialOutcome]
    #: Merged per-trial cProfile tables (spec order), when profiling was
    #: requested via ``TrialExecutor(profile=True)``; ``None`` otherwise.
    profile_stats: Optional[ProfileStats] = None

    @property
    def failures(self) -> List[TrialFailure]:
        """Every failed trial, in spec order."""
        return [outcome.failure for outcome in self.outcomes
                if outcome.failure is not None]

    @property
    def ok(self) -> bool:
        return not self.failures and self.result is not None


class _TrialTask(NamedTuple):
    """What crosses the process boundary, pickled: recipe, cell, flags."""

    experiment: Experiment
    spec: TrialSpec
    capture: bool
    profile: bool


class _TrialDone(NamedTuple):
    outcome: TrialOutcome
    snapshot: Optional[TelemetrySnapshot]
    profile: Optional[ProfileStats]


def _run_trial_task(task: _TrialTask) -> _TrialDone:
    """Execute one trial under a fresh (or no) telemetry facade.

    Module-level so worker processes resolve it by qualified name; also
    the serial backend's body, so both backends share one code path.
    """
    facade = begin_trial_capture(task.capture)
    profiler = begin_profile_capture(task.profile)
    failure: Optional[TrialFailure] = None
    payload: Optional[object] = None
    try:
        payload = task.experiment.run_trial(task.spec)
    except Exception as error:  # noqa: BLE001 - failures are data here
        failure = TrialFailure(
            spec=task.spec, error=type(error).__name__,
            message=str(error), traceback=traceback.format_exc())
    profile = end_profile_capture(profiler)
    snapshot = end_trial_capture(facade)
    return _TrialDone(
        outcome=TrialOutcome(spec=task.spec, payload=payload,
                             failure=failure),
        snapshot=snapshot, profile=profile)


class TrialExecutor:
    """Runs trial plans serially or across a process pool."""

    def __init__(self, jobs: int = 1, profile: bool = False) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        #: When true, each trial runs under its own ``cProfile.Profile``
        #: and the merged table lands on ``ExperimentRun.profile_stats``.
        #: The profiler observes the interpreter, not the simulation, so
        #: results and telemetry are identical either way.
        self.profile = profile

    def run(self, experiment: Experiment,
            overrides: Optional[Mapping[str, object]] = None,
            ) -> ExperimentRun:
        """Expand, execute (sharded if asked), merge, and account."""
        params = experiment.resolve_params(overrides)
        specs = experiment.trials(params)
        session = _telemetry.get_default()
        capture = session is not None
        if self.jobs == 1 or len(specs) <= 1:
            done = self._run_serial(experiment, specs, capture)
        else:
            done = self._run_pool(experiment, specs, capture)
        if session is not None:
            # After the barrier, in spec order — never completion order.
            for item in done:
                merge_snapshot(session, item.snapshot)
        # Same discipline for profiles: fold after the barrier, spec order.
        profile_stats = merge_profile_stats([item.profile for item in done])
        outcomes = [item.outcome for item in done]
        failed = any(outcome.failure is not None for outcome in outcomes)
        result: Optional[object] = None
        if not failed:
            result = experiment.merge(
                params, [outcome.payload for outcome in outcomes])
        return ExperimentRun(
            experiment=experiment.name,
            params=tuple(sorted(params.items(), key=lambda item: item[0])),
            result=result, outcomes=outcomes, profile_stats=profile_stats)

    # -- backends -----------------------------------------------------------

    def _run_serial(self, experiment: Experiment, specs: List[TrialSpec],
                    capture: bool) -> List[_TrialDone]:
        session = _telemetry.get_default()
        done: List[_TrialDone] = []
        try:
            for spec in specs:
                done.append(_run_trial_task(
                    _TrialTask(experiment, spec, capture, self.profile)))
        finally:
            _telemetry.set_default(session)
        return done

    def _run_pool(self, experiment: Experiment, specs: List[TrialSpec],
                  capture: bool) -> List[_TrialDone]:
        tasks = [_TrialTask(experiment, spec, capture, self.profile)
                 for spec in specs]
        context = self._context()
        workers = min(self.jobs, len(specs))
        with context.Pool(processes=workers) as pool:
            # Pool.map returns results in input order: the spec order.
            return pool.map(_run_trial_task, tasks)

    @staticmethod
    def _context() -> multiprocessing.context.BaseContext:
        """Prefer fork (cheap, Linux default); fall back elsewhere."""
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()
