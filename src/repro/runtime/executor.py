"""Sharded trial execution with per-trial fault isolation.

:class:`TrialExecutor` runs an :class:`~repro.runtime.experiment.Experiment`'s
trial plan through one of two backends:

* **serial** (``jobs=1``) — every trial in this process, in spec order;
* **multiprocessing** (``jobs=N``) — specs pickled in chunks to a
  persistent worker pool (see :func:`get_worker_pool`), payloads
  collected with ``Pool.map`` (which preserves input order).

Both backends uphold the same contract:

* results are merged strictly in **spec order**, never completion
  order, so the published artifact is byte-identical across backends;
* a trial that raises becomes a structured :class:`TrialFailure` on its
  :class:`TrialOutcome` instead of killing the sweep — the remaining
  trials still run, and ``merge`` is skipped only when something failed;
* when ambient telemetry is installed, each trial collects into its own
  fresh facade and the snapshots are merged after the barrier, in spec
  order (see :mod:`repro.runtime.capture`);
* when wall-clock profiling is requested (``profile=True``), each trial
  runs under its own ``cProfile.Profile`` and the raw tables are folded
  together after the barrier, in spec order — same discipline, so the
  merged profile is identical across backends.

Workers never import experiment modules by name — the experiment
*instance* travels inside the pickled task, and unpickling performs the
import.  That keeps ``runtime`` free of any ``experiments`` import edge
(the layering contract forbids the cycle, lazy imports included).
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.pool
import time
import traceback
from typing import Dict, List, Mapping, NamedTuple, Optional, Tuple

from repro import telemetry as _telemetry
from repro.runtime.capture import (ProfileStats, TelemetrySnapshot,
                                   begin_profile_capture, begin_trial_capture,
                                   end_profile_capture, end_trial_capture,
                                   merge_profile_stats, merge_snapshot)
from repro.telemetry import TelemetryConfig
from repro.runtime.experiment import Experiment
from repro.runtime.spec import TrialSpec


class TrialFailure(NamedTuple):
    """One crashed trial, reported as data instead of a dead sweep."""

    spec: TrialSpec
    error: str       # exception class name
    message: str
    traceback: str

    def describe(self) -> str:
        """One-line summary for failure reports."""
        return f"{self.spec.label()}: {self.error}: {self.message}"


class TrialOutcome(NamedTuple):
    """One trial's result: a payload or a failure, never both."""

    spec: TrialSpec
    payload: Optional[object]
    failure: Optional[TrialFailure]


class ChunkStats(NamedTuple):
    """Introspection for one dispatched chunk of trials.

    ``wall_ms`` is real wall-clock time — operator diagnostics for the
    artifact's ``meta`` section, never result material (which is why
    byte-equality checks strip ``meta``).  The engine counters come off
    each trial's telemetry snapshot and are deterministic.
    """

    chunk: int
    trials: int
    wall_ms: float
    #: Simulators built across the chunk's trials (calibration included).
    simulators: int
    #: Highest calendar-queue high-water mark any simulator reached.
    max_queue_depth: int
    #: Engine events processed across the chunk's trials.
    engine_events: int

    def to_dict(self) -> Dict[str, object]:
        """JSON-artifact form of this chunk's stats."""
        return {"chunk": self.chunk, "trials": self.trials,
                "wall_ms": round(self.wall_ms, 3),
                "simulators": self.simulators,
                "max_queue_depth": self.max_queue_depth,
                "engine_events": self.engine_events}


class ExecutorStats(NamedTuple):
    """How one sweep was actually executed: backend, pool, chunks."""

    backend: str  # "serial" | "pool"
    jobs: int
    workers: int
    chunk_size: int
    #: Whether the persistent worker pool was reused from a prior sweep.
    pool_reused: bool
    chunks: Tuple[ChunkStats, ...]

    def to_dict(self) -> Dict[str, object]:
        """JSON-artifact form (lands in the artifact ``meta`` section)."""
        return {"backend": self.backend, "jobs": self.jobs,
                "workers": self.workers, "chunk_size": self.chunk_size,
                "pool_reused": self.pool_reused,
                "chunks": [chunk.to_dict() for chunk in self.chunks]}


class ExperimentRun(NamedTuple):
    """A full sweep: merged artifact plus per-trial accounting."""

    experiment: str
    params: Tuple[Tuple[str, object], ...]
    #: The merged artifact; ``None`` when any trial failed.
    result: Optional[object]
    outcomes: List[TrialOutcome]
    #: Merged per-trial cProfile tables (spec order), when profiling was
    #: requested via ``TrialExecutor(profile=True)``; ``None`` otherwise.
    profile_stats: Optional[ProfileStats] = None
    #: Per-chunk executor introspection.  Wall-clock values live here
    #: (and in artifact ``meta``) only — ``result`` stays digest-safe.
    executor_stats: Optional[ExecutorStats] = None

    @property
    def failures(self) -> List[TrialFailure]:
        """Every failed trial, in spec order."""
        return [outcome.failure for outcome in self.outcomes
                if outcome.failure is not None]

    @property
    def ok(self) -> bool:
        return not self.failures and self.result is not None


class _TrialTask(NamedTuple):
    """One trial's work order: recipe, cell, flags."""

    experiment: Experiment
    spec: TrialSpec
    #: The session facade's config (``None`` = no capture); the trial
    #: builds a fresh facade from it so sampling/window decisions match
    #: the session exactly on every backend.
    capture: Optional[TelemetryConfig]
    profile: bool


class _ChunkTask(NamedTuple):
    """What crosses the process boundary, pickled: K specs per trip.

    The experiment instance — by far the heaviest part of the old
    per-trial task — is pickled once per chunk instead of once per spec,
    and one map round-trip dispatches the whole chunk.
    """

    experiment: Experiment
    specs: Tuple[TrialSpec, ...]
    capture: Optional[TelemetryConfig]
    profile: bool


class _TrialDone(NamedTuple):
    outcome: TrialOutcome
    snapshot: Optional[TelemetrySnapshot]
    profile: Optional[ProfileStats]


def _run_trial_task(task: _TrialTask) -> _TrialDone:
    """Execute one trial under a fresh (or no) telemetry facade.

    Module-level so worker processes resolve it by qualified name; also
    the serial backend's body, so both backends share one code path.
    """
    facade = begin_trial_capture(task.capture)
    profiler = begin_profile_capture(task.profile)
    failure: Optional[TrialFailure] = None
    payload: Optional[object] = None
    try:
        payload = task.experiment.run_trial(task.spec)
    except Exception as error:  # noqa: BLE001 - failures are data here
        failure = TrialFailure(
            spec=task.spec, error=type(error).__name__,
            message=str(error), traceback=traceback.format_exc())
    profile = end_profile_capture(profiler)
    snapshot = end_trial_capture(facade)
    return _TrialDone(
        outcome=TrialOutcome(spec=task.spec, payload=payload,
                             failure=failure),
        snapshot=snapshot, profile=profile)


def _run_chunk(chunk: _ChunkTask) -> Tuple[List[_TrialDone], float]:
    """Worker entry point: run one chunk's specs back to back, in order.

    Returns the chunk's wall-clock milliseconds alongside the results —
    the one executor fact only the worker can measure.
    """
    started = time.perf_counter()  # repro: allow[DET001] chunk wall time is operator diagnostics (artifact meta only), never result material
    done = [_run_trial_task(_TrialTask(chunk.experiment, spec,
                                       chunk.capture, chunk.profile))
            for spec in chunk.specs]
    wall_ms = (time.perf_counter() - started) * 1000.0  # repro: allow[DET001] same wall-clock diagnostics as above
    return done, wall_ms


def _chunk_stats(index: int, done: List[_TrialDone],
                 wall_ms: float) -> ChunkStats:
    """Aggregate one chunk's engine counters off its trial snapshots."""
    simulators = 0
    depth = 0
    events = 0
    for item in done:
        if item.snapshot is None:
            continue
        sims, sim_depth, sim_events = item.snapshot.engine
        simulators += sims
        if sim_depth > depth:
            depth = sim_depth
        events += sim_events
    return ChunkStats(chunk=index, trials=len(done), wall_ms=wall_ms,
                      simulators=simulators, max_queue_depth=depth,
                      engine_events=events)


def _warm_noop(_index: int) -> None:
    """Pool warm-up task: forces every worker process to exist."""
    return None


#: The persistent worker pool, shared by every :class:`TrialExecutor` in
#: this process.  An ``experiment all`` run (and the test suite) executes
#: many sweeps back to back; forking a fresh pool per sweep was most of
#: the sharding overhead the benches measured.  The pool is replaced only
#: when a run needs more workers than it has, and torn down at interpreter
#: exit.  Reuse is invisible to results: every trial installs its own
#: fresh telemetry facade and derives its own RNG streams, so worker
#: process history cannot leak into any payload.
_POOL: Optional[multiprocessing.pool.Pool] = None
_POOL_WORKERS = 0


def get_worker_pool(workers: int) -> multiprocessing.pool.Pool:
    """The shared pool, grown (never shrunk) to at least ``workers``."""
    global _POOL, _POOL_WORKERS
    if _POOL is None or _POOL_WORKERS < workers:
        shutdown_worker_pool()
        context = TrialExecutor._context()
        # repro: allow[RACE001] parent-process-only bookkeeping: workers never dispatch trials (the analyzer reaches here only through its any-same-named-method `.run` edge)
        _POOL = context.Pool(processes=workers)
        # repro: allow[RACE001] same parent-only pool bookkeeping
        _POOL_WORKERS = workers
    return _POOL


def warm_worker_pool(workers: int) -> None:
    """Ensure ``workers`` live processes exist before timing anything.

    Benchmarks call this so the first sample doesn't pay pool fork-up
    (the cold-start outlier the runtime bench used to record).
    """
    get_worker_pool(workers).map(_warm_noop, range(workers))


def shutdown_worker_pool() -> None:
    """Tear down the shared pool (idempotent; re-created on next use)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.terminate()
        _POOL.join()
        # repro: allow[RACE001] parent-process-only pool teardown (see get_worker_pool)
        _POOL = None
        # repro: allow[RACE001] same parent-only pool bookkeeping
        _POOL_WORKERS = 0


atexit.register(shutdown_worker_pool)


class TrialExecutor:
    """Runs trial plans serially or across a process pool."""

    def __init__(self, jobs: int = 1, profile: bool = False,
                 chunk_size: Optional[int] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.jobs = jobs
        #: When true, each trial runs under its own ``cProfile.Profile``
        #: and the merged table lands on ``ExperimentRun.profile_stats``.
        #: The profiler observes the interpreter, not the simulation, so
        #: results and telemetry are identical either way.
        self.profile = profile
        #: Specs per pickle round-trip for the pool backend; ``None``
        #: picks :meth:`default_chunk_size`.  Chunking changes how work
        #: is batched across processes, never what any trial computes or
        #: the order results merge in.
        self.chunk_size = chunk_size

    def run(self, experiment: Experiment,
            overrides: Optional[Mapping[str, object]] = None,
            ) -> ExperimentRun:
        """Expand, execute (sharded if asked), merge, and account."""
        params = experiment.resolve_params(overrides)
        specs = experiment.trials(params)
        session = _telemetry.get_default()
        capture = session.config() if session is not None else None
        if self.jobs == 1 or len(specs) <= 1:
            done, executor_stats = self._run_serial(experiment, specs,
                                                    capture)
        else:
            done, executor_stats = self._run_pool(experiment, specs, capture)
        if session is not None:
            # After the barrier, in spec order — never completion order.
            for item in done:
                merge_snapshot(session, item.snapshot)
        # Same discipline for profiles: fold after the barrier, spec order.
        profile_stats = merge_profile_stats([item.profile for item in done])
        outcomes = [item.outcome for item in done]
        failed = any(outcome.failure is not None for outcome in outcomes)
        result: Optional[object] = None
        if not failed:
            result = experiment.merge(
                params, [outcome.payload for outcome in outcomes])
        return ExperimentRun(
            experiment=experiment.name,
            params=tuple(sorted(params.items(), key=lambda item: item[0])),
            result=result, outcomes=outcomes, profile_stats=profile_stats,
            executor_stats=executor_stats)

    # -- backends -----------------------------------------------------------

    def _run_serial(self, experiment: Experiment, specs: List[TrialSpec],
                    capture: Optional[TelemetryConfig],
                    ) -> Tuple[List[_TrialDone], ExecutorStats]:
        session = _telemetry.get_default()
        done: List[_TrialDone] = []
        started = time.perf_counter()  # repro: allow[DET001] wall-clock executor diagnostics (artifact meta only)
        try:
            for spec in specs:
                done.append(_run_trial_task(
                    _TrialTask(experiment, spec, capture, self.profile)))
        finally:
            _telemetry.set_default(session)
        wall_ms = (time.perf_counter() - started) * 1000.0  # repro: allow[DET001] same wall-clock diagnostics as above
        stats = ExecutorStats(
            backend="serial", jobs=self.jobs, workers=1,
            chunk_size=max(1, len(specs)), pool_reused=False,
            chunks=(_chunk_stats(0, done, wall_ms),))
        return done, stats

    def _run_pool(self, experiment: Experiment, specs: List[TrialSpec],
                  capture: Optional[TelemetryConfig],
                  ) -> Tuple[List[_TrialDone], ExecutorStats]:
        workers = min(self.jobs, len(specs))
        chunk_size = self.chunk_size or self.default_chunk_size(
            len(specs), workers)
        chunks = [_ChunkTask(experiment, tuple(specs[at:at + chunk_size]),
                             capture, self.profile)
                  for at in range(0, len(specs), chunk_size)]
        pool_reused = _POOL is not None and _POOL_WORKERS >= workers
        pool = get_worker_pool(workers)
        # Pool.map returns results in input order, so flattening the
        # chunk results reads out exactly the spec order.
        done: List[_TrialDone] = []
        chunk_stats: List[ChunkStats] = []
        for index, (chunk_done, wall_ms) in enumerate(
                pool.map(_run_chunk, chunks)):
            done.extend(chunk_done)
            chunk_stats.append(_chunk_stats(index, chunk_done, wall_ms))
        stats = ExecutorStats(
            backend="pool", jobs=self.jobs, workers=workers,
            chunk_size=chunk_size, pool_reused=pool_reused,
            chunks=tuple(chunk_stats))
        return done, stats

    @staticmethod
    def default_chunk_size(specs: int, workers: int) -> int:
        """Four chunks per worker: small enough to even out a straggling
        chunk, large enough to amortise the pickle round-trip."""
        return max(1, -(-specs // (workers * 4)))

    @staticmethod
    def _context() -> multiprocessing.context.BaseContext:
        """Prefer fork (cheap, Linux default); fall back elsewhere."""
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()
