"""Unified experiment runtime: declarative trial plans, sharded execution.

The pieces, bottom-up:

* :mod:`repro.runtime.spec` — :class:`TrialSpec` cells and the
  :func:`derive_seed` rule;
* :mod:`repro.runtime.experiment` — the :class:`Experiment` protocol
  (expand → run each cell → merge in spec order) plus
  :func:`result_digest` for the determinism contract;
* :mod:`repro.runtime.capture` — per-trial telemetry snapshots so
  exported traces/metrics match between backends;
* :mod:`repro.runtime.executor` — :class:`TrialExecutor` with serial
  and ``multiprocessing`` backends and per-trial fault isolation;
* :mod:`repro.runtime.registry` — :class:`ExperimentRegistry`, the
  CLI's dispatch table.

This package deliberately never imports :mod:`repro.experiments`: the
concrete experiments register *into* it, and executor workers receive
pickled :class:`Experiment` instances rather than importing modules by
name.  See ``docs/RUNTIME.md`` for the full tour.
"""

from repro.runtime.capture import (ProfileStats, TelemetrySnapshot,
                                   begin_trial_capture, end_trial_capture,
                                   merge_profile_stats, merge_snapshot)
from repro.runtime.executor import (ChunkStats, ExecutorStats, ExperimentRun,
                                    TrialExecutor, TrialFailure, TrialOutcome,
                                    shutdown_worker_pool, warm_worker_pool)
from repro.runtime.experiment import (Experiment, Param, jsonify,
                                      result_digest)
from repro.runtime.registry import ExperimentRegistry
from repro.runtime.spec import CellItems, TrialSpec, derive_seed, freeze_cell

__all__ = [
    "CellItems",
    "ChunkStats",
    "ExecutorStats",
    "Experiment",
    "ExperimentRegistry",
    "ExperimentRun",
    "Param",
    "ProfileStats",
    "TelemetrySnapshot",
    "TrialExecutor",
    "TrialFailure",
    "TrialOutcome",
    "TrialSpec",
    "begin_trial_capture",
    "derive_seed",
    "end_trial_capture",
    "freeze_cell",
    "jsonify",
    "merge_profile_stats",
    "shutdown_worker_pool",
    "warm_worker_pool",
    "merge_snapshot",
    "result_digest",
]
