"""Source NAT at the mobile gateway (P-GW).

The paper's §2: "The request's origin is often obfuscated in current
mobile networks including the client's IP address (CDN servers see the
public gateway's IP, not the end client's)".  This middlebox implements
exactly that: every UE flow leaving the mobile network is rewritten to one
of a small pool of public gateway addresses, and reply traffic is mapped
back.  Because the pool is shared — and in real deployments reused across
regions — server-side GeoIP of the observed address says little about the
client, which :mod:`repro.cdn.geo` models on the CDN side.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.errors import AddressError
from repro.netsim.node import Host, Middlebox
from repro.netsim.packet import Datagram, Endpoint

#: RFC 1918 prefixes treated as "inside" the mobile network.
PRIVATE_PREFIXES = ("10.", "192.168.", "172.16.", "172.17.", "172.18.",
                    "172.19.", "172.2", "172.30.", "172.31.")

_FIRST_NAT_PORT = 20000
_LAST_NAT_PORT = 65000


def is_private(ip: str) -> bool:
    """Whether ``ip`` is inside the RFC 1918 private ranges."""
    return ip.startswith(PRIVATE_PREFIXES)


class NatMiddlebox(Middlebox):
    """Port-translating source NAT over a pool of public addresses.

    Flows are assigned public (ip, port) pairs round-robin across the
    pool, so consecutive clients can surface from different public
    addresses — the address-block reuse that frustrates CDN geo-location.
    """

    def __init__(self, public_ips: Sequence[str]) -> None:
        if not public_ips:
            raise AddressError("NAT needs at least one public address")
        self.public_ips = list(public_ips)
        self._forward: Dict[Endpoint, Endpoint] = {}
        self._reverse: Dict[Endpoint, Endpoint] = {}
        self._next_port: Dict[str, int] = {
            ip: _FIRST_NAT_PORT for ip in public_ips}
        self._next_ip_index = 0
        self.translations = 0

    # -- mapping management ------------------------------------------------------

    def _allocate_public(self, private: Endpoint) -> Endpoint:
        public_ip = self.public_ips[self._next_ip_index]
        self._next_ip_index = (self._next_ip_index + 1) % len(self.public_ips)
        port = self._next_port[public_ip]
        if port > _LAST_NAT_PORT:
            port = _FIRST_NAT_PORT
        self._next_port[public_ip] = port + 1
        public = Endpoint(public_ip, port)
        stale = self._reverse.pop(public, None)
        if stale is not None:
            self._forward.pop(stale, None)
        self._forward[private] = public
        self._reverse[public] = private
        return public

    def mapping_for(self, private: Endpoint) -> Optional[Endpoint]:
        """The public endpoint assigned to a private flow, or None."""
        return self._forward.get(private)

    @property
    def active_flows(self) -> int:
        return len(self._forward)

    # -- middlebox hook -------------------------------------------------------------

    def process(self, datagram: Datagram, host: Host) -> Optional[Datagram]:
        # Inbound: a reply addressed to one of our public mappings.
        """Translate one datagram (outbound SNAT / inbound reverse map)."""
        if datagram.dst in self._reverse:
            return datagram.rewritten(dst=self._reverse[datagram.dst])
        # Outbound: private source heading to a public destination.
        if is_private(datagram.src.ip) and not is_private(datagram.dst.ip) \
                and not host.owns(datagram.dst.ip):
            existing = self._forward.get(datagram.src)
            public = existing if existing is not None \
                else self._allocate_public(datagram.src)
            self.translations += 1
            return datagram.rewritten(src=public)
        # Intra-network traffic (e.g. UE to MEC cluster IPs) passes through,
        # which is what lets the MEC DNS see real client addresses.
        return datagram
