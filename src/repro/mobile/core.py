"""The mobile core network (EPC): S-GW and P-GW bearer path.

Builds the serving-gateway / packet-gateway pair behind one or more base
stations, with the NAT middlebox installed at the P-GW.  The P-GW is the
boundary the paper instruments with tcpdump, and the point where client
addresses are replaced by the public gateway pool.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.mobile.nat import NatMiddlebox
from repro.mobile.profiles import AccessProfile
from repro.mobile.ran import BaseStation
from repro.netsim.latency import Constant, LatencyModel
from repro.netsim.network import Network
from repro.netsim.node import Host


class EvolvedPacketCore:
    """S-GW + P-GW with NAT, fronting a set of base stations."""

    def __init__(self, network: Network, name_prefix: str,
                 profile: AccessProfile,
                 sgw_ip: str, pgw_ip: str,
                 public_ips: Sequence[str],
                 core_internal_latency: Optional[LatencyModel] = None) -> None:
        self.network = network
        self.profile = profile
        self.name_prefix = name_prefix
        self.sgw: Host = network.add_host(f"{name_prefix}-sgw", sgw_ip)
        self.pgw: Host = network.add_host(f"{name_prefix}-pgw", pgw_ip)
        for public_ip in public_ips:
            network.assign_address(self.pgw, public_ip)
        self.nat = NatMiddlebox(public_ips)
        self.pgw.install_middlebox(self.nat)
        network.add_link(self.sgw.name, self.pgw.name,
                         core_internal_latency or Constant(0.3),
                         name=f"{name_prefix}-s5")
        self.base_stations: List[BaseStation] = []

    def add_base_station(self, name: str, ip: str,
                         mec_dns=None) -> BaseStation:
        """Create an eNB/gNB and wire its S1 backhaul into the S-GW."""
        station = BaseStation(self.network, name, ip, self.profile,
                              mec_dns=mec_dns)
        self.network.add_link(station.name, self.sgw.name,
                              self.profile.access_backhaul,
                              name=f"{self.name_prefix}-s1:{name}")
        self.base_stations.append(station)
        return station

    @property
    def gateway_name(self) -> str:
        """The host name experiments attach traces to (the P-GW)."""
        return self.pgw.name

    def __repr__(self) -> str:
        return (f"EvolvedPacketCore({self.name_prefix}, "
                f"{len(self.base_stations)} cells, "
                f"{len(self.nat.public_ips)} public IPs)")
