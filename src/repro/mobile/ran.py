"""Radio access network: base stations.

A :class:`BaseStation` is the UE attachment point (eNB for LTE, gNB for
5G, or the AP/switch for Wi-Fi/wired profiles).  Attaching a UE creates a
radio link with the profile's latency model; the base station uplinks into
the core via whatever link the scenario builder adds.

Each base station can advertise a *MEC DNS endpoint*: per the paper's §3
design, "when an end user connects to a particular base station, its
target DNS is switched to that of the MEC DNS" — attachment and handoff
both honour this.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.mobile.profiles import AccessProfile
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.packet import Endpoint

if TYPE_CHECKING:  # pragma: no cover
    from repro.mobile.ue import UserEquipment


class BaseStation:
    """One cell site (eNB/gNB) or fixed-access attachment point."""

    def __init__(self, network: Network, name: str, ip: str,
                 profile: AccessProfile,
                 mec_dns: Optional[Endpoint] = None) -> None:
        self.network = network
        self.profile = profile
        self.host: Host = network.add_host(name, ip)
        #: DNS endpoint pushed to UEs that attach here (None = keep default).
        self.mec_dns = mec_dns
        self.attached: List["UserEquipment"] = []

    @property
    def name(self) -> str:
        return self.host.name

    def attach(self, ue: "UserEquipment") -> None:
        """Create the radio link and push the edge DNS target, if any."""
        self.network.add_link(ue.host.name, self.name, self.profile.radio,
                              name=f"radio:{ue.host.name}@{self.name}")
        self.attached.append(ue)
        ue.base_station = self
        if self.mec_dns is not None:
            ue.switch_dns(self.mec_dns)

    def detach(self, ue: "UserEquipment") -> None:
        """Tear down the radio link to ``ue``."""
        self.network.remove_link(ue.host.name, self.name)
        self.attached.remove(ue)
        ue.base_station = None

    def __repr__(self) -> str:
        return (f"BaseStation({self.name}, {self.profile.name}, "
                f"{len(self.attached)} UEs)")
