"""Access-technology latency profiles.

Each profile calibrates two legs of the access path:

* ``radio`` — UE to attachment point (Ethernet jack, Wi-Fi AP, eNB/gNB),
  one-way;
* ``access_backhaul`` — attachment point to the network gateway (campus
  router, home ISP CMTS, S-GW/P-GW bearer), one-way.

Calibration sources: the paper measures the LTE radio leg at roughly
10 ms one-way on its srsLTE testbed (§4) and Figure 2 shows the ordering
wired < wifi < cellular with markedly higher cellular variance.  The
wired/Wi-Fi values follow common campus/home measurements; what the
experiments rely on is the *ordering and spread*, not the exact numbers.
"""

from __future__ import annotations

from typing import Dict, NamedTuple

from repro.netsim.latency import (
    Constant,
    LatencyModel,
    lognormal_from_median_p95,
)


class AccessProfile(NamedTuple):
    """Latency calibration for one access technology."""

    name: str
    radio: LatencyModel
    access_backhaul: LatencyModel
    description: str

    @property
    def mean_one_way(self) -> float:
        return self.radio.mean + self.access_backhaul.mean


WIRED_CAMPUS = AccessProfile(
    name="wired-campus",
    radio=Constant(0.2),
    access_backhaul=lognormal_from_median_p95(0.8, 2.0),
    description="Ethernet to a campus aggregation router",
)

WIFI_HOME = AccessProfile(
    name="wifi-home",
    radio=lognormal_from_median_p95(2.5, 12.0),
    access_backhaul=lognormal_from_median_p95(4.0, 10.0),
    description="Home Wi-Fi through a residential ISP",
)

CELLULAR_LTE = AccessProfile(
    name="cellular-mobile",
    # ~10 ms one-way radio with a heavy tail (srsLTE measurement, §4).
    radio=lognormal_from_median_p95(10.0, 28.0, shift=4.0),
    access_backhaul=lognormal_from_median_p95(5.0, 18.0),
    description="4G LTE radio plus EPC bearer path",
)

CELLULAR_5G = AccessProfile(
    name="cellular-5g",
    # 5G NR targets ~1-4 ms over the air; the paper argues the wireless
    # component of the MEC bar shrinks drastically under 5G.
    radio=lognormal_from_median_p95(1.5, 4.0, shift=0.5),
    access_backhaul=lognormal_from_median_p95(1.0, 3.0),
    description="5G NR radio plus 5GC bearer path",
)

PROFILES: Dict[str, AccessProfile] = {
    profile.name: profile
    for profile in (WIRED_CAMPUS, WIFI_HOME, CELLULAR_LTE, CELLULAR_5G)
}
