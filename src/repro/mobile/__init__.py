"""Mobile access network substrate: UE, RAN, EPC, NAT, handoff.

Stands in for the paper's srsLTE + NextEPC testbed:

* :mod:`repro.mobile.profiles` — per-technology latency calibrations
  (wired campus, home Wi-Fi, 4G LTE, 5G NR).  The LTE radio leg is
  centred on the ~10 ms one-way delay the paper measures in §4.
* :mod:`repro.mobile.nat` — the P-GW NAT that hides client IPs behind a
  shared public gateway address, the root of the geo-localization problem
  in §2.
* :mod:`repro.mobile.ran` / :mod:`.core` / :mod:`.ue` — base stations,
  the S-GW/P-GW bearer path, and user equipment.
* :mod:`repro.mobile.handoff` — X2-style handoff that re-links the UE and
  (per the paper's §3 design) re-targets its DNS to the new edge.
"""

from repro.mobile.profiles import (
    AccessProfile,
    WIRED_CAMPUS,
    WIFI_HOME,
    CELLULAR_LTE,
    CELLULAR_5G,
    PROFILES,
)
from repro.mobile.nat import NatMiddlebox
from repro.mobile.ran import BaseStation
from repro.mobile.core import EvolvedPacketCore
from repro.mobile.ue import UserEquipment
from repro.mobile.handoff import HandoffController, HandoffRecord

__all__ = [
    "AccessProfile",
    "WIRED_CAMPUS",
    "WIFI_HOME",
    "CELLULAR_LTE",
    "CELLULAR_5G",
    "PROFILES",
    "NatMiddlebox",
    "BaseStation",
    "EvolvedPacketCore",
    "UserEquipment",
    "HandoffController",
    "HandoffRecord",
]
