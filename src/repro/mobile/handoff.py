"""X2-style handoff between base stations.

The paper's §3: switching the UE's DNS target to the MEC DNS "can be
performed either as part of the cellular hand-off process, or explicitly".
:class:`HandoffController` implements the hand-off-integrated variant:
tear down the source radio link, bring up the target one, and let the
target base station push its MEC DNS endpoint to the UE.
"""

from __future__ import annotations

from typing import List, NamedTuple

from repro.mobile.ran import BaseStation
from repro.mobile.ue import UserEquipment
from repro.netsim.network import Network


class HandoffRecord(NamedTuple):
    """One completed handoff for post-hoc analysis."""

    time: float
    ue: str
    source: str
    target: str
    dns_switched: bool


class HandoffController:
    """Coordinates handoffs and records them."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self.history: List[HandoffRecord] = []

    def handoff(self, ue: UserEquipment, target: BaseStation) -> HandoffRecord:
        """Move ``ue`` from its current cell to ``target``.

        In-flight packets keep their already-sampled delivery schedule
        (they were "on the air" when the handoff happened); new traffic
        uses the new radio link and, if the target advertises one, the
        target's MEC DNS.
        """
        source = ue.base_station
        if source is None:
            raise ValueError(f"UE {ue.name} is not attached to any cell")
        if source is target:
            raise ValueError(f"UE {ue.name} is already at {target.name}")
        dns_before = ue._dns
        source.detach(ue)
        target.attach(ue)
        record = HandoffRecord(
            time=self.network.sim.now, ue=ue.name,
            source=source.name, target=target.name,
            dns_switched=ue._dns != dns_before)
        self.history.append(record)
        return record
