"""X2-style handoff between base stations.

The paper's §3: switching the UE's DNS target to the MEC DNS "can be
performed either as part of the cellular hand-off process, or explicitly".
:class:`HandoffController` implements the hand-off-integrated variant:
tear down the source radio link, bring up the target one, and let the
target base station push its MEC DNS endpoint to the UE.

The controller is also the handover side of the churn attribution story
(see ``repro.control``): every handoff emits a telemetry event and a
``repro_handoffs_total`` counter, and lookups measured *after* a handoff
can be reported back via :meth:`HandoffController.note_post_handoff_lookup`
so experiments can split tail latency and mislocalization between "the UE
moved" and "the zone data was stale".
"""

from __future__ import annotations

from typing import List, NamedTuple

from repro.mobile.ran import BaseStation
from repro.mobile.ue import UserEquipment
from repro.netsim.network import Network


class HandoffRecord(NamedTuple):
    """One completed handoff for post-hoc analysis."""

    time: float
    ue: str
    source: str
    target: str
    dns_switched: bool


class HandoffController:
    """Coordinates handoffs and records them."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self.history: List[HandoffRecord] = []
        #: Lookups reported after a handoff, and how many of them came
        #: back pointing at a cache that was not local/alive any more.
        self.post_handoff_lookups = 0
        self.mislocalized_after_handoff = 0

    @property
    def handoffs(self) -> int:
        return len(self.history)

    def handoff(self, ue: UserEquipment, target: BaseStation) -> HandoffRecord:
        """Move ``ue`` from its current cell to ``target``.

        In-flight packets keep their already-sampled delivery schedule
        (they were "on the air" when the handoff happened); new traffic
        uses the new radio link and, if the target advertises one, the
        target's MEC DNS.
        """
        source = ue.base_station
        if source is None:
            raise ValueError(f"UE {ue.name} is not attached to any cell")
        if source is target:
            raise ValueError(f"UE {ue.name} is already at {target.name}")
        dns_before = ue._dns
        source.detach(ue)
        target.attach(ue)
        record = HandoffRecord(
            time=self.network.sim.now, ue=ue.name,
            source=source.name, target=target.name,
            dns_switched=ue._dns != dns_before)
        self.history.append(record)
        tel = self.network.telemetry
        if tel is not None:
            tel.tracer.event("handoff", "mobile", "handoff-controller",
                             ue=ue.name, source=source.name,
                             target=target.name,
                             dns_switched=record.dns_switched)
            tel.timeseries.annotate(
                record.time, "handoff",
                detail=f"{ue.name} {source.name}->{target.name}",
                scope=ue.name)
            tel.metrics.counter(
                "repro_handoffs_total",
                "completed UE handoffs between base stations").inc(
                    target=target.name, dns_switched=str(record.dns_switched))
        return record

    def note_post_handoff_lookup(self, ue: UserEquipment,
                                 mislocalized: bool) -> None:
        """Attribute one post-handoff lookup outcome to this controller.

        Experiments call this for every lookup the UE performs after its
        first handoff; ``mislocalized`` means the answer did not point at
        a live local cache.  The split feeds the churn experiment's
        handover-vs-staleness attribution.
        """
        self.post_handoff_lookups += 1
        if mislocalized:
            self.mislocalized_after_handoff += 1
        tel = self.network.telemetry
        if tel is not None:
            tel.metrics.counter(
                "repro_post_handoff_lookups_total",
                "lookups measured after a handoff, by localization "
                "outcome").inc(ue=ue.name,
                               mislocalized=str(mislocalized))
