"""User equipment: the mobile client.

A UE owns a host with a private bearer address, tracks which base station
it is attached to, and knows its current DNS resolver target — the thing
the paper's design switches on attachment/handoff.  :meth:`stub` builds a
stub resolver bound to the current target so experiments measure exactly
what a device would.
"""

from __future__ import annotations

from typing import Optional

from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.packet import Endpoint
from repro.resolver.retry import RetryPolicy
from repro.resolver.stub import StubResolver


class UserEquipment:
    """One mobile device."""

    def __init__(self, network: Network, name: str, bearer_ip: str,
                 default_dns: Optional[Endpoint] = None) -> None:
        self.network = network
        self.host: Host = network.add_host(name, bearer_ip)
        self.base_station = None  # set by BaseStation.attach
        self._default_dns = default_dns
        self._dns = default_dns
        self.dns_switches = 0

    @property
    def name(self) -> str:
        return self.host.name

    @property
    def dns(self) -> Endpoint:
        if self._dns is None:
            raise ValueError(f"UE {self.name} has no DNS target configured")
        return self._dns

    def switch_dns(self, endpoint: Endpoint) -> None:
        """Point the UE's resolver at a new server (hand-off behaviour)."""
        if self._dns != endpoint:
            self.dns_switches += 1
        self._dns = endpoint

    def restore_default_dns(self) -> None:
        """Point the UE back at its provider-configured resolver."""
        if self._default_dns is None:
            raise ValueError(f"UE {self.name} has no default DNS to restore")
        self.switch_dns(self._default_dns)

    def stub(self, timeout: float = 3000.0, retries: int = 2,
             policy: Optional["RetryPolicy"] = None) -> StubResolver:
        """A stub resolver bound to the UE's current DNS target.

        ``policy`` installs a :class:`~repro.resolver.retry.RetryPolicy`
        (backoff, budget, hedging) for fault-injection runs.
        """
        return StubResolver(self.network, self.host, self.dns,
                            timeout=timeout, retries=retries, policy=policy)

    def __repr__(self) -> str:
        attached = self.base_station.name if self.base_station else "detached"
        return f"UserEquipment({self.name}, at={attached}, dns={self._dns})"
