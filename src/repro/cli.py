"""Command-line interface for the MEC-CDN reproduction.

Subcommands:

* ``experiment <artifact>`` — regenerate a paper artifact through the
  experiment registry (``table1``, ``figure5``, ``resilience``, ...)
  or ``all``.  ``--jobs N`` shards each artifact's trial plan over a
  process pool; serial and sharded runs print byte-identical output.
* ``dig <name>`` — run dig-style queries against a chosen Figure 5
  deployment and print each result plus the summary.
* ``deployments`` — list the six evaluated DNS deployments.
* ``check`` — the determinism & architecture static-analysis gate
  (:mod:`repro.check`); exits nonzero on new findings.
* ``profile <artifact>`` — run one artifact under the latency-budget
  profiler (:mod:`repro.profile`): per-deployment budget report,
  collapsed-stack flamegraph input, and ``BENCH_profile.json``.
* ``slo <rules.slo> --input <artifact.json>`` — evaluate declarative
  latency SLOs over budget/metrics artifacts; exits nonzero on breach.
* ``tail <artifact.json>`` — print the tail-latency exemplars a
  telemetry artifact retained (slowest queries with per-stage
  attribution); ``--trace-out`` reconstructs them for Perfetto.

The artifact list and every experiment flag (``--trials``,
``--queries``, ``--seed``, ``--attack-qps``, ...) come out of the
:class:`~repro.runtime.ExperimentRegistry` — artifacts declare their
parameters, the CLI just renders them; there is no per-artifact
dispatch chain to keep in lockstep.

Usage examples::

    python -m repro.cli experiment figure5 --queries 40
    python -m repro.cli experiment all --jobs 4
    python -m repro.cli dig video.demo1.mycdn.ciab.test \
        --deployment mec-ldns-mec-cdns --count 5
    python -m repro.cli deployments
    python -m repro.cli check --format json --out report.json
    python -m repro.cli profile figure5 --out-dir out
    python -m repro.cli slo slo/figure5.slo --input out/figure5-budget.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.deployments import (
    DEPLOYMENT_KEYS,
    DEPLOYMENT_LABELS,
    build_testbed,
)
from repro.measure import measure_deployment_queries, summarize

_registry = None


def _get_registry():
    """The built-in experiment registry (imported lazily, built once)."""
    global _registry
    if _registry is None:
        from repro.experiments.registry import builtin_registry
        _registry = builtin_registry()
    return _registry


def _run_experiment(name: str, args: argparse.Namespace,
                    executor_meta: Optional[dict] = None) -> int:
    """Run one registered artifact; returns 0 unless a trial crashed."""
    from repro.runtime import TrialExecutor
    experiment = _get_registry().get(name)
    overrides = {param.name: getattr(args, param.name)
                 for param in experiment.params if param.cli}
    run = TrialExecutor(jobs=args.jobs).run(experiment, overrides)
    if executor_meta is not None and run.executor_stats is not None:
        executor_meta[name] = run.executor_stats.to_dict()
    if run.failures:
        print(f"error: {len(run.failures)} of {len(run.outcomes)} trials "
              f"failed for {name}:", file=sys.stderr)
        for failure in run.failures:
            print(f"  {failure.describe()}", file=sys.stderr)
        print(run.failures[0].traceback, file=sys.stderr)
        return 1
    print(experiment.render_result(run.result))
    if experiment.shape_checked:
        violations = experiment.check_shape(run.result)
        print(f"shape claims: {'ALL HOLD' if not violations else violations}")
    return 0


def _maybe_install_telemetry(args: argparse.Namespace):
    """Install ambient telemetry when ``--trace-out``/``--metrics-out`` ask.

    Returns the installed :class:`repro.telemetry.Telemetry`, or ``None``
    when neither flag was given (the zero-cost default).  The sampling
    flags (``--trace-sample``, ``--window-ms``, ``--tail-exemplars``)
    shape the facade; on their own they do not turn capture on.
    """
    if not (args.trace_out or args.metrics_out):
        return None
    from repro import telemetry
    tel = telemetry.Telemetry(trace_sample=args.trace_sample,
                              window_ms=args.window_ms,
                              tail_capacity=args.tail_exemplars)
    telemetry.set_default(tel)
    return tel


def _export_telemetry(tel, args: argparse.Namespace,
                      meta: Optional[dict] = None) -> None:
    """Uninstall ambient telemetry and write the requested artifacts.

    ``--metrics-out`` picks its format by extension: ``.prom``/``.txt``
    gets the Prometheus text exposition, anything else the JSON artifact
    (metrics + span roll-ups + time-series + tail exemplars, with any
    ``meta`` — e.g. executor chunk stats — kept out of the
    byte-compared payload).
    """
    from repro import telemetry
    from repro.telemetry import exporters
    telemetry.clear_default()
    if args.trace_out:
        try:
            exporters.write_chrome_trace(tel.tracer.finished, args.trace_out)
        except OSError as exc:
            print(f"error: cannot write trace to {args.trace_out}: {exc}",
                  file=sys.stderr)
        else:
            print(f";; wrote {len(tel.tracer.finished)} spans to "
                  f"{args.trace_out} (open in about:tracing or Perfetto)",
                  file=sys.stderr)
    if args.metrics_out:
        try:
            if args.metrics_out.endswith((".prom", ".txt")):
                exporters.write_prometheus_text(tel.metrics, args.metrics_out)
            else:
                exporters.write_json_artifact(tel.metrics, args.metrics_out,
                                              spans=tel.tracer.finished,
                                              meta=meta,
                                              timeseries=tel.timeseries,
                                              tail=tel.tail)
        except OSError as exc:
            print(f"error: cannot write metrics to {args.metrics_out}: {exc}",
                  file=sys.stderr)
        else:
            print(f";; wrote {len(tel.metrics)} metric instruments and "
                  f"{len(tel.tail)} tail exemplars to {args.metrics_out}",
                  file=sys.stderr)


def _cmd_experiment(args: argparse.Namespace) -> int:
    tel = _maybe_install_telemetry(args)
    executor_meta: dict = {}
    status = 0
    try:
        names = (_get_registry().names() if args.artifact == "all"
                 else [args.artifact])
        for index, name in enumerate(names):
            if index:
                print()
            status = _run_experiment(name, args, executor_meta) or status
    finally:
        if tel is not None:
            _export_telemetry(
                tel, args,
                meta={"executor": executor_meta} if executor_meta else None)
    return status


def _cmd_dig(args: argparse.Namespace) -> int:
    tel = _maybe_install_telemetry(args)
    try:
        return _run_dig(args)
    finally:
        if tel is not None:
            _export_telemetry(tel, args)


def _run_dig(args: argparse.Namespace) -> int:
    testbed = build_testbed(args.deployment, seed=args.seed, ecs=args.ecs)
    if args.name != str(testbed.query_name).rstrip("."):
        print(f"note: the testbed serves {testbed.query_name}; "
              f"querying it instead of {args.name!r}", file=sys.stderr)
    if args.verbose:
        stub = testbed.ue.stub()
        result = testbed.sim.run_until_resolved(
            testbed.sim.spawn(stub.query(testbed.query_name)))
        print(result.response.to_text())
        print(f"\n;; Query time: {result.query_time_ms:.0f} msec")
        print(f";; SERVER: {result.server}")
        return 0
    measurements = measure_deployment_queries(testbed, args.count)
    for index, m in enumerate(measurements, 1):
        print(f"[{index:2d}] {m.status:8s} {','.join(m.addresses):18s} "
              f"{m.latency_ms:7.2f} ms "
              f"(wireless {m.wireless_ms:.2f} / resolver {m.resolver_ms:.2f})")
    stats = summarize([m.latency_ms for m in measurements])
    print(f"\n;; {DEPLOYMENT_LABELS[args.deployment]}: {stats}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check import runner as check_runner
    return check_runner.run_cli(args)


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.profile import runner as profile_runner
    return profile_runner.run_profile_cli(args)


def _cmd_slo(args: argparse.Namespace) -> int:
    from repro.profile import runner as profile_runner
    return profile_runner.run_slo_cli(args)


def _cmd_tail(args: argparse.Namespace) -> int:
    from repro.profile import runner as profile_runner
    return profile_runner.run_tail_cli(args)


def _cmd_deployments(args: argparse.Namespace) -> int:
    for key in DEPLOYMENT_KEYS:
        print(f"{key:22s} {DEPLOYMENT_LABELS[key]}")
    return 0


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared observability flags (``experiment`` and ``dig``)."""
    parser.add_argument("--trace-out", metavar="PATH",
                        help="write a Chrome trace_event JSON of every "
                             "query's spans (open in about:tracing/Perfetto)")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="write collected metrics (.prom/.txt = "
                             "Prometheus text, otherwise JSON artifact "
                             "with time-series and tail exemplars)")
    parser.add_argument("--trace-sample", type=float, default=1.0,
                        metavar="RATE",
                        help="deterministic head-sampling rate for traces "
                             "in [0, 1] (default: 1.0 = keep all; "
                             "sampling changes no simulation results)")
    parser.add_argument("--window-ms", type=float, default=1000.0,
                        metavar="MS",
                        help="simulated-time window width for the "
                             "streaming time-series (default: 1000)")
    parser.add_argument("--tail-exemplars", type=int, default=32,
                        metavar="N",
                        help="slowest-query exemplars to retain "
                             "(default: 32; 0 disables tail capture)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro-mec-cdn",
        description="Reproduction of 'DNS Does Not Suffice for MEC-CDN' "
                    "(HotNets 2020)")
    sub = parser.add_subparsers(dest="command", required=True)

    registry = _get_registry()
    exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    exp.add_argument("artifact", choices=tuple(registry.names()) + ("all",))
    registry.add_cli_arguments(exp)
    exp.add_argument("--jobs", type=int, default=1,
                     help="worker processes per artifact (1 = in-process "
                          "serial; output is identical either way)")
    _add_telemetry_arguments(exp)
    exp.set_defaults(handler=_cmd_experiment)

    dig = sub.add_parser("dig", help="query a Figure 5 deployment")
    dig.add_argument("name", nargs="?",
                     default="video.demo1.mycdn.ciab.test")
    dig.add_argument("--deployment", choices=DEPLOYMENT_KEYS,
                     default="mec-ldns-mec-cdns")
    dig.add_argument("--count", type=int, default=5)
    dig.add_argument("--seed", type=int, default=0)
    dig.add_argument("--ecs", action="store_true",
                     help="enable EDNS Client Subnet at L-DNS and C-DNS")
    dig.add_argument("--verbose", action="store_true",
                     help="print one full dig-style response instead of "
                          "the latency series")
    _add_telemetry_arguments(dig)
    dig.set_defaults(handler=_cmd_dig)

    dep = sub.add_parser("deployments",
                         help="list the evaluated DNS deployments")
    dep.set_defaults(handler=_cmd_deployments)

    from repro.check.runner import add_check_arguments
    chk = sub.add_parser("check",
                         help="determinism & architecture static analysis "
                              "(exits nonzero on findings)")
    add_check_arguments(chk)
    chk.set_defaults(handler=_cmd_check)

    from repro.profile.runner import add_profile_arguments, add_slo_arguments
    prof = sub.add_parser(
        "profile",
        help="profile a paper artifact: latency budget, flamegraph "
             "stacks, wall-clock bench (BENCH_profile.json)")
    prof.add_argument("artifact", choices=tuple(registry.names()))
    registry.add_cli_arguments(prof)
    add_profile_arguments(prof)
    prof.set_defaults(handler=_cmd_profile)

    slo = sub.add_parser(
        "slo",
        help="evaluate declarative latency SLOs over budget/metrics "
             "artifacts (exits nonzero on breach)")
    add_slo_arguments(slo)
    slo.set_defaults(handler=_cmd_slo)

    from repro.profile.runner import add_tail_arguments
    tail = sub.add_parser(
        "tail",
        help="print a telemetry artifact's tail-latency exemplars "
             "(slowest queries with per-stage attribution)")
    add_tail_arguments(tail)
    tail.set_defaults(handler=_cmd_tail)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
