"""Diurnal non-homogeneous Poisson session arrivals (thinning method).

City-scale request traffic is not a flat Poisson stream: mobile usage
follows the day, with a deep overnight trough and an evening peak.  The
standard way to sample a non-homogeneous Poisson process with a bounded
rate function is Lewis & Shedler's *thinning*: draw candidate arrivals
from a homogeneous process at the peak rate, then accept each candidate
with probability ``rate(t) / rate_max``.  Acceptance uses one extra
uniform per candidate, so the draw stays O(1) memory and every accepted
time is an exact sample of the target process.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Sequence

#: Hour-of-day activity multipliers for a generic mobile population:
#: overnight trough around 04:00, a morning shoulder, and the evening
#: peak around 21:00.  Values are relative; the profile normalizes.
DEFAULT_DIURNAL: Sequence[float] = (
    0.28, 0.18, 0.12, 0.09, 0.08, 0.10,   # 00-05
    0.18, 0.35, 0.55, 0.65, 0.70, 0.75,   # 06-11
    0.80, 0.78, 0.74, 0.72, 0.75, 0.82,   # 12-17
    0.90, 0.96, 1.00, 1.00, 0.80, 0.50,   # 18-23
)

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR


class DiurnalProfile:
    """A piecewise-constant hour-of-day rate multiplier.

    ``multiplier(t)`` is the activity level at simulation time ``t``
    seconds (day-periodic); ``peak`` is its maximum, the thinning
    envelope.  ``mean`` is the day-average multiplier, used to convert
    a desired *average* rate into the base rate the process needs.
    """

    def __init__(self, hourly: Sequence[float] = DEFAULT_DIURNAL) -> None:
        if len(hourly) != 24:
            raise ValueError(
                f"diurnal profile needs 24 hourly values, got {len(hourly)}")
        if any(value < 0 for value in hourly):
            raise ValueError("diurnal multipliers must be non-negative")
        if max(hourly) <= 0:
            raise ValueError("diurnal profile must have a positive peak")
        self.hourly: List[float] = list(hourly)
        self.peak: float = max(self.hourly)
        self.mean: float = sum(self.hourly) / len(self.hourly)

    def hour_of(self, t_seconds: float) -> int:
        """The hour-of-day bucket containing ``t_seconds``."""
        return int((t_seconds % SECONDS_PER_DAY) // SECONDS_PER_HOUR)

    def multiplier(self, t_seconds: float) -> float:
        """The activity multiplier at time ``t_seconds``."""
        return self.hourly[self.hour_of(t_seconds)]


class NhppArrivals:
    """Session start times from a diurnally-modulated Poisson process.

    ``mean_rate_per_s`` is the *day-average* arrival rate; the
    instantaneous rate is ``mean_rate_per_s * multiplier(t) /
    profile.mean``, so a flat profile degrades exactly to a homogeneous
    process at the requested rate.
    """

    def __init__(self, mean_rate_per_s: float,
                 profile: DiurnalProfile) -> None:
        if mean_rate_per_s <= 0:
            raise ValueError(
                f"arrival rate must be positive, got {mean_rate_per_s}")
        self.mean_rate_per_s = mean_rate_per_s
        self.profile = profile
        #: Instantaneous-rate scale: rate(t) = _scale * multiplier(t).
        self._scale = mean_rate_per_s / profile.mean
        #: Thinning envelope: the maximum instantaneous rate.
        self.rate_max = self._scale * profile.peak

    def rate_at(self, t_seconds: float) -> float:
        """The instantaneous arrival rate at ``t_seconds``."""
        return self._scale * self.profile.multiplier(t_seconds)

    def times(self, rng: random.Random, duration_s: float,
              start_s: float = 0.0) -> Iterator[float]:
        """Yield arrival times in ``[start_s, start_s + duration_s)``.

        Lewis-Shedler thinning: candidates at ``rate_max``, each kept
        with probability ``rate(t) / rate_max``.
        """
        if duration_s < 0:
            raise ValueError(f"negative duration {duration_s}")
        t = start_s
        end = start_s + duration_s
        while True:
            t += rng.expovariate(self.rate_max)
            if t >= end:
                return
            if rng.random() * self.rate_max <= self.rate_at(t):
                yield t
