"""Per-deployment latency calibration for the mesoscale engine.

The population engine cannot afford the full packet simulator at 10^6
queries (~0.4 ms of wall clock each), but it must not invent latency
numbers either.  The bridge is *calibration*: build the real Figure 5
testbed for the deployment, measure a modest batch of full-fidelity
lookups through the actual stub → L-DNS → C-DNS chain, and bootstrap
the engine's per-query DNS cost from those samples (wireless and
resolver legs separately, the paper's dig + tcpdump split).  The
calibration seed depends only on the base seed and deployment key —
never on the shard — so every shard of a sweep, and the serial run,
derives the identical model.

Routing semantics come with the model: the three MEC deployments
resolve at the UE's current site (client-location-aware), while the
warmed LAN/Google/Cloudflare resolvers answer from a cached A record
pointing at one anchor cache — client-blind, the paper's
mislocalization mechanism, which at city scale strands ``1 - 1/sites``
of all traffic off-site.
"""

from __future__ import annotations

import random
from typing import List, NamedTuple, Tuple

from repro.core.deployments import (DEPLOYMENT_KEYS, DEPLOYMENT_LABELS,
                                    build_testbed)
from repro.measure.runner import measure_deployment_queries
from repro.netsim.latency import (Constant, Empirical, LatencyModel,
                                  lognormal_from_median_p95)
from repro.runtime.spec import derive_seed

#: Full-fidelity lookups measured per deployment to seed the bootstrap.
CALIBRATION_QUERIES = 48

#: One-way delay for an intra-site fetch leg (P-GW to a MEC node plus
#: the cluster fabric, per the testbed's mec-lan/mec-fabric links).
INTRA_SITE_LEG: LatencyModel = Constant(0.75)

#: One-way delay to a cache at a *different* MEC site (metro backhaul,
#: WAN-distance like the testbed's WAN C-DNS placement).
INTER_SITE_LEG: LatencyModel = lognormal_from_median_p95(23.0, 33.0,
                                                         shift=12.0)

#: One-way delay from a cache to the origin on a miss fill.
ORIGIN_LEG: LatencyModel = lognormal_from_median_p95(23.0, 33.0, shift=12.0)

#: Origin service time added on a miss (ms).
ORIGIN_SERVICE_MS = 5.0


class DeploymentModel(NamedTuple):
    """The calibrated mesoscale stand-in for one Figure 5 deployment."""

    key: str
    label: str
    #: Bootstrap models for the two legs of one DNS lookup.
    wireless: Empirical
    resolver: Empirical
    #: Whether resolution is client-location-aware (MEC L-DNS/C-DNS
    #: chain) or a client-blind warmed resolver pinned to the anchor.
    localized: bool

    def dns_legs(self, rng: random.Random) -> Tuple[float, float]:
        """One lookup's ``(wireless, resolver)`` legs, separately.

        The engine uses the split form so tail exemplars can attribute
        a slow lookup to the right leg; the draw order is identical to
        :meth:`dns_ms`, so which form a caller uses cannot change any
        downstream sample.
        """
        # repro: allow[RNG004] both legs draw from the per-UE stream in fixed order (WORKLOAD.md idiom)
        return (self.wireless.sample(rng), self.resolver.sample(rng))

    def dns_ms(self, rng: random.Random) -> float:
        """One lookup's latency (wireless + resolver legs)."""
        # repro: allow[RNG004] same fixed-order draws as dns_legs (WORKLOAD.md idiom)
        return self.wireless.sample(rng) + self.resolver.sample(rng)


def is_localized(key: str) -> bool:
    """Whether ``key`` resolves at the client's MEC site."""
    return key.startswith("mec-ldns-")


def calibrate(key: str, seed: int,
              queries: int = CALIBRATION_QUERIES) -> DeploymentModel:
    """Measure ``key``'s testbed and build its mesoscale model.

    The testbed seed is ``derive_seed(seed, "calibrate", key)``: shared
    by every shard (and the serial path) of the same run, distinct
    across base seeds and deployments.
    """
    if key not in DEPLOYMENT_KEYS:
        raise ValueError(f"unknown deployment {key!r}; "
                         f"expected one of {DEPLOYMENT_KEYS}")
    testbed = build_testbed(key, seed=derive_seed(seed, "calibrate", key))
    measurements = measure_deployment_queries(testbed, queries)
    wireless: List[float] = [m.wireless_ms for m in measurements]
    resolver: List[float] = [m.resolver_ms for m in measurements]
    return DeploymentModel(
        key=key,
        label=DEPLOYMENT_LABELS[key],
        wireless=Empirical(wireless),
        resolver=Empirical(resolver),
        localized=is_localized(key))
