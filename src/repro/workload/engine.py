"""The population workload engine: drive a deployment at city scale.

One :func:`run_district` call simulates a *district*: an independent
slice of the city (its own UEs, MEC sites, and caches) running one
calibrated deployment for a stretch of simulated time.  Districts are
the sharding unit — the experiment's trial plan is identical serial
and sharded, and a district's result depends only on its config and
seed — so merging district stats in spec order keeps the runtime's
byte-identical contract for free.

Per request the engine composes exactly the decisions the packet-level
stack makes, without the packets:

* DNS cost sampled from the deployment's calibrated wireless/resolver
  legs (:mod:`repro.workload.deployment`);
* cache selection through the *same* consistent-hash geometry the
  traffic router uses (:mod:`repro.cdn.allocation`) — content hashing,
  client hashing, or Huang et al.'s bounded-load client allocation —
  for the client-aware MEC deployments, or the anchor cache for the
  client-blind warmed resolvers (the paper's mislocalization);
* LRU hit/miss at the selected cache, with intra-site, inter-site, and
  origin-fill legs priced from the testbed's link constants;
* inter-site mobility and mid-session handover interruptions
  (:mod:`repro.workload.mobility`).

Aggregation is streaming only: two :class:`LatencyHistogram` instances
and exact counters.  Nothing in this module retains per-query records.
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Optional

from repro.cdn.allocation import ConsistentAllocator, HashRing
from repro.cdn.content import ZipfRankStream
from repro.measure.histogram import LatencyHistogram
from repro.runtime.spec import derive_seed
from repro.workload.arrivals import DiurnalProfile, NhppArrivals
from repro.workload.caches import RankLru
from repro.workload.deployment import (INTER_SITE_LEG, INTRA_SITE_LEG,
                                       ORIGIN_LEG, ORIGIN_SERVICE_MS,
                                       DeploymentModel)
from repro.workload.mobility import HANDOVER_INTERRUPTION_MS, MobilityModel
from repro.workload.population import Population, UserProfile
from repro.workload.sessions import SessionModel

#: Recognized traffic-allocation policies (mirrors the router's).
ALLOCATION_POLICIES = ("content", "client", "client-bounded")


class DistrictConfig(NamedTuple):
    """Everything that defines one district's workload."""

    ues: int
    sites: int
    caches_per_site: int
    #: Objects each cache can hold.
    cache_capacity: int
    #: Synthetic catalog size (never materialized).
    catalog_size: int
    zipf_exponent: float
    #: Simulated span of the run, seconds.
    duration_s: float
    #: Day-average sessions per UE per hour.
    sessions_per_ue_hour: float
    mean_requests: float
    mean_think_s: float
    move_probability: float
    handover_probability: float
    allocation: str
    #: Simulated start time (seconds past midnight) — picks the diurnal
    #: window the run covers.
    start_s: float = 0.0


class DistrictStats(NamedTuple):
    """One district's streaming aggregates (mergeable, picklable)."""

    queries: int
    sessions: int
    active_ues: int
    hits: int
    #: Requests served by a cache at the UE's current site.
    localized: int
    handovers: int
    #: Requests served per (site, cache), flattened site-major — the
    #: load-balance evidence for the allocation policies.
    cache_load: List[int]
    dns: LatencyHistogram
    total: LatencyHistogram

    @property
    def hit_rate(self) -> float:
        return self.hits / self.queries if self.queries else 0.0

    @property
    def localization(self) -> float:
        return self.localized / self.queries if self.queries else 0.0

    def load_imbalance(self) -> float:
        """max/mean over per-cache serve counts (1.0 = perfectly flat)."""
        if not self.cache_load or not self.queries:
            return 0.0
        mean = sum(self.cache_load) / len(self.cache_load)
        return max(self.cache_load) / mean if mean else 0.0


def merge_stats(parts: List[DistrictStats]) -> DistrictStats:
    """Fold district stats in the given order (exact counters, merged
    histograms); the caller supplies spec order for determinism."""
    if not parts:
        empty = LatencyHistogram()
        return DistrictStats(0, 0, 0, 0, 0, 0, [], empty, LatencyHistogram())
    cache_load = list(parts[0].cache_load)
    dns = LatencyHistogram()
    total = LatencyHistogram()
    queries = sessions = active = hits = localized = handovers = 0
    for part in parts:
        queries += part.queries
        sessions += part.sessions
        active += part.active_ues
        hits += part.hits
        localized += part.localized
        handovers += part.handovers
        dns.merge(part.dns)
        total.merge(part.total)
    for part in parts[1:]:
        if len(part.cache_load) != len(cache_load):
            raise ValueError("districts have mismatched cache grids")
        for index, load in enumerate(part.cache_load):
            cache_load[index] += load
    return DistrictStats(
        queries=queries, sessions=sessions, active_ues=active, hits=hits,
        localized=localized, handovers=handovers, cache_load=cache_load,
        dns=dns, total=total)


class _Router:
    """The district's cache-selection logic, shared-geometry with the
    production router."""

    def __init__(self, config: DistrictConfig) -> None:
        if config.allocation not in ALLOCATION_POLICIES:
            raise ValueError(
                f"allocation must be one of {ALLOCATION_POLICIES}, "
                f"got {config.allocation!r}")
        self.config = config
        names = [[f"site{site}-cache{cache}"
                  for cache in range(config.caches_per_site)]
                 for site in range(config.sites)]
        self._index: Dict[str, int] = {}
        for site, row in enumerate(names):
            for cache, name in enumerate(row):
                self._index[name] = site * config.caches_per_site + cache
        self._rings: List[HashRing] = [
            HashRing(row, name_of=lambda member: str(member))
            for row in names]
        self._allocators: Optional[List[ConsistentAllocator]] = None
        if config.allocation == "client-bounded":
            self._allocators = [ConsistentAllocator(row) for row in names]

    def select(self, site: int, content_key: str,
               client_key: str) -> int:
        """The flat cache index serving this request from ``site``."""
        if self._allocators is not None:
            chosen = self._allocators[site].assign(client_key)
        elif self.config.allocation == "client":
            picked = self._rings[site].pick(client_key)
            chosen = str(picked) if picked is not None else None
        else:
            picked = self._rings[site].pick(content_key)
            chosen = str(picked) if picked is not None else None
        if chosen is None:  # pragma: no cover - rings are never empty
            raise RuntimeError("empty cache ring")
        return self._index[chosen]


def run_district(config: DistrictConfig, model: DeploymentModel,
                 seed: int) -> DistrictStats:
    """Simulate one district and return its streaming aggregates.

    ``seed`` roots the district's population; every UE's behaviour is a
    pure function of ``derive_seed(seed, "ue", index)``, so the result
    is independent of process placement.
    """
    population = Population(config.ues, config.sites, seed)
    profile = DiurnalProfile()
    arrivals = NhppArrivals(
        config.sessions_per_ue_hour / 3600.0, profile)
    session_model = SessionModel(mean_requests=config.mean_requests,
                                 mean_think_s=config.mean_think_s)
    mobility = MobilityModel(config.sites,
                             move_probability=config.move_probability,
                             handover_probability=config.handover_probability)
    router = _Router(config)
    caches = [RankLru(config.cache_capacity)
              for _ in range(config.sites * config.caches_per_site)]
    cache_load = [0] * len(caches)
    dns_hist = LatencyHistogram()
    total_hist = LatencyHistogram()
    queries = sessions = active = hits = localized = handovers = 0

    anchor_cache = 0  # client-blind resolvers answer site 0, cache 0
    per_site = config.caches_per_site

    for index in range(config.ues):
        ue: UserProfile = population.user(index)
        rng: random.Random = population.user_rng(ue)
        zipf = ZipfRankStream(config.catalog_size, rng,
                              exponent=config.zipf_exponent)
        client_key = ue.client_ip()
        ue_sessions = 0
        for start in arrivals.times(rng, config.duration_s,
                                    start_s=config.start_s):
            requests = session_model.request_count(rng)
            placement = mobility.place_session(rng, ue.home_site, requests)
            site = placement.site
            ue_sessions += 1
            for ordinal in range(requests):
                interruption = 0.0
                if ordinal == placement.handover_at:
                    site = placement.handover_site
                    handovers += 1
                    interruption = HANDOVER_INTERRUPTION_MS
                rank = zipf.next_rank()
                content_key = f"obj{rank:07d}.pop.mycdn.ciab.test"
                if model.localized:
                    cache_index = router.select(site, content_key,
                                                client_key)
                else:
                    cache_index = anchor_cache
                served_site = cache_index // per_site
                hit = caches[cache_index].lookup(rank)
                cache_load[cache_index] += 1

                dns_ms = model.dns_ms(rng) + interruption
                latency = dns_ms
                fetch_leg = (INTRA_SITE_LEG if served_site == site
                             else INTER_SITE_LEG)
                # Round trip to the cache: request + response legs.
                latency += 2.0 * fetch_leg.sample(rng)
                if hit:
                    hits += 1
                else:
                    latency += (2.0 * ORIGIN_LEG.sample(rng)
                                + ORIGIN_SERVICE_MS)
                if served_site == site:
                    localized += 1
                queries += 1
                dns_hist.add(dns_ms)
                total_hist.add(latency)
                # Think time advances the session clock; the diurnal
                # multiplier is per-session (sessions are minutes long,
                # buckets are hours), so the clock only gates overflow.
                start += session_model.think_time(rng)
        if ue_sessions:
            active += 1
            sessions += ue_sessions

    return DistrictStats(
        queries=queries, sessions=sessions, active_ues=active, hits=hits,
        localized=localized, handovers=handovers, cache_load=cache_load,
        dns=dns_hist, total=total_hist)


def district_seed(base: int, deployment: str, shard: int) -> int:
    """The population seed for ``shard`` of ``deployment``'s sweep."""
    return derive_seed(base, "district", deployment, shard)
