"""The population workload engine: drive a deployment at city scale.

One :func:`run_district` call simulates a *district*: an independent
slice of the city (its own UEs, MEC sites, and caches) running one
calibrated deployment for a stretch of simulated time.  Districts are
the sharding unit — the experiment's trial plan is identical serial
and sharded, and a district's result depends only on its config and
seed — so merging district stats in spec order keeps the runtime's
byte-identical contract for free.

Per request the engine composes exactly the decisions the packet-level
stack makes, without the packets:

* DNS cost sampled from the deployment's calibrated wireless/resolver
  legs (:mod:`repro.workload.deployment`);
* cache selection through the *same* consistent-hash geometry the
  traffic router uses (:mod:`repro.cdn.allocation`) — content hashing,
  client hashing, or Huang et al.'s bounded-load client allocation —
  for the client-aware MEC deployments, or the anchor cache for the
  client-blind warmed resolvers (the paper's mislocalization);
* LRU hit/miss at the selected cache, with intra-site, inter-site, and
  origin-fill legs priced from the testbed's link constants;
* inter-site mobility and mid-session handover interruptions
  (:mod:`repro.workload.mobility`).

Aggregation is streaming only: two :class:`LatencyHistogram` instances
and exact counters.  Nothing in this module retains per-query records.

When ambient telemetry is installed (:func:`repro.telemetry.get_default`)
the engine additionally streams **observability aggregates** — windowed
time-series cells, tail exemplars of the slowest queries, and one span
tree per head-sampled session (a session root with one query span per
request; per-stage breakdown rides on the exemplars) — without
touching the simulation: no
extra RNG draw, no clock read, and the district's :class:`DistrictStats`
(hence every digest) is byte-identical with telemetry on or off.  The
hot loop aggregates into plain local dicts and flushes once per
district; the keep/drop decision for span trees is a splitmix64 hash of
the session ordinal, so serial and sharded runs sample the exact same
sessions.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from typing import Any, Dict, List, NamedTuple, Optional

from repro import telemetry as _telemetry
from repro.cdn.allocation import ConsistentAllocator, HashRing
from repro.cdn.content import ZipfRankStream
from repro.measure.histogram import LatencyHistogram
from repro.runtime.spec import derive_seed
from repro.telemetry import DEFAULT_BUCKETS, Exemplar, Span
from repro.telemetry.sampling import hash_unit, hash_unit_u64
from repro.workload.arrivals import DiurnalProfile, NhppArrivals
from repro.workload.caches import RankLru
from repro.workload.deployment import (INTER_SITE_LEG, INTRA_SITE_LEG,
                                       ORIGIN_LEG, ORIGIN_SERVICE_MS,
                                       DeploymentModel)
from repro.workload.mobility import HANDOVER_INTERRUPTION_MS, MobilityModel
from repro.workload.population import Population, UserProfile
from repro.workload.sessions import SessionModel

#: Recognized traffic-allocation policies (mirrors the router's).
ALLOCATION_POLICIES = ("content", "client", "client-bounded")


class DistrictConfig(NamedTuple):
    """Everything that defines one district's workload."""

    ues: int
    sites: int
    caches_per_site: int
    #: Objects each cache can hold.
    cache_capacity: int
    #: Synthetic catalog size (never materialized).
    catalog_size: int
    zipf_exponent: float
    #: Simulated span of the run, seconds.
    duration_s: float
    #: Day-average sessions per UE per hour.
    sessions_per_ue_hour: float
    mean_requests: float
    mean_think_s: float
    move_probability: float
    handover_probability: float
    allocation: str
    #: Simulated start time (seconds past midnight) — picks the diurnal
    #: window the run covers.
    start_s: float = 0.0


class DistrictStats(NamedTuple):
    """One district's streaming aggregates (mergeable, picklable)."""

    queries: int
    sessions: int
    active_ues: int
    hits: int
    #: Requests served by a cache at the UE's current site.
    localized: int
    handovers: int
    #: Requests served per (site, cache), flattened site-major — the
    #: load-balance evidence for the allocation policies.
    cache_load: List[int]
    dns: LatencyHistogram
    total: LatencyHistogram

    @property
    def hit_rate(self) -> float:
        return self.hits / self.queries if self.queries else 0.0

    @property
    def localization(self) -> float:
        return self.localized / self.queries if self.queries else 0.0

    def load_imbalance(self) -> float:
        """max/mean over per-cache serve counts (1.0 = perfectly flat)."""
        if not self.cache_load or not self.queries:
            return 0.0
        mean = sum(self.cache_load) / len(self.cache_load)
        return max(self.cache_load) / mean if mean else 0.0


def merge_stats(parts: List[DistrictStats]) -> DistrictStats:
    """Fold district stats in the given order (exact counters, merged
    histograms); the caller supplies spec order for determinism."""
    if not parts:
        empty = LatencyHistogram()
        return DistrictStats(0, 0, 0, 0, 0, 0, [], empty, LatencyHistogram())
    cache_load = list(parts[0].cache_load)
    dns = LatencyHistogram()
    total = LatencyHistogram()
    queries = sessions = active = hits = localized = handovers = 0
    for part in parts:
        queries += part.queries
        sessions += part.sessions
        active += part.active_ues
        hits += part.hits
        localized += part.localized
        handovers += part.handovers
        dns.merge(part.dns)
        total.merge(part.total)
    for part in parts[1:]:
        if len(part.cache_load) != len(cache_load):
            raise ValueError("districts have mismatched cache grids")
        for index, load in enumerate(part.cache_load):
            cache_load[index] += load
    return DistrictStats(
        queries=queries, sessions=sessions, active_ues=active, hits=hits,
        localized=localized, handovers=handovers, cache_load=cache_load,
        dns=dns, total=total)


class _Router:
    """The district's cache-selection logic, shared-geometry with the
    production router."""

    def __init__(self, config: DistrictConfig) -> None:
        if config.allocation not in ALLOCATION_POLICIES:
            raise ValueError(
                f"allocation must be one of {ALLOCATION_POLICIES}, "
                f"got {config.allocation!r}")
        self.config = config
        names = [[f"site{site}-cache{cache}"
                  for cache in range(config.caches_per_site)]
                 for site in range(config.sites)]
        self._index: Dict[str, int] = {}
        for site, row in enumerate(names):
            for cache, name in enumerate(row):
                self._index[name] = site * config.caches_per_site + cache
        self._rings: List[HashRing] = [
            HashRing(row, name_of=lambda member: str(member))
            for row in names]
        self._allocators: Optional[List[ConsistentAllocator]] = None
        if config.allocation == "client-bounded":
            self._allocators = [ConsistentAllocator(row) for row in names]

    def select(self, site: int, content_key: str,
               client_key: str) -> int:
        """The flat cache index serving this request from ``site``."""
        if self._allocators is not None:
            chosen = self._allocators[site].assign(client_key)
        elif self.config.allocation == "client":
            picked = self._rings[site].pick(client_key)
            chosen = str(picked) if picked is not None else None
        else:
            picked = self._rings[site].pick(content_key)
            chosen = str(picked) if picked is not None else None
        if chosen is None:  # pragma: no cover - rings are never empty
            raise RuntimeError("empty cache ring")
        return self._index[chosen]


def run_district(config: DistrictConfig, model: DeploymentModel,
                 seed: int, scope: str = "") -> DistrictStats:
    """Simulate one district and return its streaming aggregates.

    ``seed`` roots the district's population; every UE's behaviour is a
    pure function of ``derive_seed(seed, "ue", index)``, so the result
    is independent of process placement.  ``scope`` names this district
    in observability output (exemplar keys, span sampling salt) — pass
    something unique per trial (the population experiment uses
    ``"<deployment>/d<district>"``); it defaults to the deployment key.
    """
    population = Population(config.ues, config.sites, seed)
    profile = DiurnalProfile()
    arrivals = NhppArrivals(
        config.sessions_per_ue_hour / 3600.0, profile)
    session_model = SessionModel(mean_requests=config.mean_requests,
                                 mean_think_s=config.mean_think_s)
    mobility = MobilityModel(config.sites,
                             move_probability=config.move_probability,
                             handover_probability=config.handover_probability)
    router = _Router(config)
    caches = [RankLru(config.cache_capacity)
              for _ in range(config.sites * config.caches_per_site)]
    cache_load = [0] * len(caches)
    dns_hist = LatencyHistogram()
    total_hist = LatencyHistogram()
    queries = sessions = active = hits = localized = handovers = 0

    anchor_cache = 0  # client-blind resolvers answer site 0, cache 0
    per_site = config.caches_per_site

    # -- observability bindings (all hoisted out of the hot loop).  The
    # aggregates live in plain local dicts keyed by (site, window) and
    # flush once at district end; nothing below draws randomness or
    # reads a clock, so DistrictStats is identical with telemetry on/off.
    tel = _telemetry.get_default()
    observing = tel is not None
    if observing:
        scope_key = scope or model.key
        #: Windows per simulated second — one multiply per rebind
        #: instead of a divide.
        win_scale = 1000.0 / tel.timeseries.window_ms
        #: Window width in simulated seconds; the hot loop compares the
        #: query clock against [win_lo, win_hi) and only recomputes the
        #: window index on a crossing.
        window_s = tel.timeseries.window_ms / 1000.0
        tail = tel.tail
        tail_enabled = tail.capacity > 0
        tracer = tel.tracer
        tracing = tracer.enabled and tracer.sample_rate > 0.0
        sample_rate = tracer.sample_rate
        sample_all = sample_rate >= 1.0
        #: Per-district salt so session ordinals hash independently
        #: across districts (decision correlation, nothing else).
        scope_salt = int(hash_unit(scope_key) * 9007199254740992.0)
        deployment_key = model.key
        # Raw per-window value lists; bucketed once per district in
        # _flush_observability (sorted-array bucketing), which keeps the
        # per-query cost to two list appends.
        dns_vals: Dict[int, List[float]] = {}
        total_vals: Dict[int, List[float]] = {}
        # Per-window site counters as flat int lists (index = site):
        # ``cur_q[site] += 1`` is the cheapest increment CPython offers,
        # and the window-change branch below re-points the four cursors
        # at most once per session batch.
        query_wins: Dict[int, List[int]] = {}
        misloc_wins: Dict[int, List[int]] = {}
        cur_q: List[int] = []
        cur_m: List[int] = []
        # Degenerate bounds force a rebind on the first query.
        win_lo = win_hi = 0.0
        cur_dns_append = cur_total_append = _noop_append
        threshold: Optional[float] = None
        session_ordinal = 0
        sampled_queries = 0
        trace_id = root_sid = span_base = span_n = 0
        session_spans: Optional[List[Span]] = None
        session_root: Optional[Span] = None
        session_end = 0.0
        stages: List[Any] = []
        # Small-int site labels are reused constantly; interning them
        # once keeps str() out of the sampled-query path.
        site_strs = [str(at) for at in range(config.sites)]
        t_ms = 0.0

    for index in range(config.ues):
        ue: UserProfile = population.user(index)
        rng: random.Random = population.user_rng(ue)
        zipf = ZipfRankStream(config.catalog_size, rng,
                              exponent=config.zipf_exponent)
        client_key = ue.client_ip()
        ue_sessions = 0
        for start in arrivals.times(rng, config.duration_s,
                                    start_s=config.start_s):
            requests = session_model.request_count(rng)
            placement = mobility.place_session(rng, ue.home_site, requests)
            site = placement.site
            ue_sessions += 1
            if observing:
                session_ordinal += 1
                # The rejection threshold only ever rises, so a
                # session-stale read can over-offer (offer() rechecks)
                # but never miss a genuine tail candidate.
                threshold = tail.threshold_ms
                if tracing and (sample_all or hash_unit_u64(
                        scope_salt + session_ordinal) < sample_rate):
                    # One trace per sampled *session*: a root session
                    # span plus one query span per request.  Stage-level
                    # breakdown lives in the tail exemplars (which
                    # exemplar_spans re-expands into full trees); the
                    # sampled stream stays cheap enough to leave on at
                    # population scale.
                    trace_base, span_base = tracer.id_offsets()
                    trace_id = trace_base + 1
                    root_sid = span_base + 1
                    t_ms = start * 1000.0
                    session_root = Span(
                        trace_id, root_sid, None, "session", "workload",
                        deployment_key, t_ms, t_ms,
                        {"deployment": deployment_key, "ue": str(index),
                         "home_site": site_strs[ue.home_site]})
                    session_spans = [session_root]
                    span_n = 1
                    session_end = t_ms
                else:
                    session_spans = None
            for ordinal in range(requests):
                interruption = 0.0
                if ordinal == placement.handover_at:
                    site = placement.handover_site
                    handovers += 1
                    interruption = HANDOVER_INTERRUPTION_MS
                rank = zipf.next_rank()
                content_key = f"obj{rank:07d}.pop.mycdn.ciab.test"
                if model.localized:
                    cache_index = router.select(site, content_key,
                                                client_key)
                else:
                    cache_index = anchor_cache
                served_site = cache_index // per_site
                hit = caches[cache_index].lookup(rank)
                cache_load[cache_index] += 1

                wireless_ms, resolver_ms = model.dns_legs(rng)
                dns_ms = wireless_ms + resolver_ms + interruption
                fetch_leg = (INTRA_SITE_LEG if served_site == site
                             else INTER_SITE_LEG)
                # Round trip to the cache: request + response legs.
                fetch_ms = 2.0 * fetch_leg.sample(rng)
                latency = dns_ms + fetch_ms
                if hit:
                    hits += 1
                    origin_ms = 0.0
                else:
                    origin_ms = (2.0 * ORIGIN_LEG.sample(rng)
                                 + ORIGIN_SERVICE_MS)
                    latency += origin_ms
                if served_site == site:
                    localized += 1
                queries += 1
                dns_hist.add(dns_ms)
                total_hist.add(latency)

                if observing:
                    if start >= win_hi or start < win_lo:
                        window = int(start * win_scale)
                        win_lo = window * window_s
                        win_hi = win_lo + window_s
                        vals = dns_vals.get(window)
                        if vals is None:
                            vals = dns_vals[window] = []
                            total_vals[window] = []
                            query_wins[window] = [0] * config.sites
                            misloc_wins[window] = [0] * config.sites
                        cur_dns_append = vals.append
                        cur_total_append = total_vals[window].append
                        cur_q = query_wins[window]
                        cur_m = misloc_wins[window]
                    cur_dns_append(dns_ms)
                    cur_total_append(latency)
                    cur_q[site] += 1
                    if served_site != site:
                        cur_m[site] += 1
                    wants_tail = tail_enabled and (threshold is None
                                                   or latency >= threshold)
                    if wants_tail or session_spans is not None:
                        t_ms = start * 1000.0
                        if session_spans is not None:
                            span_n += 1
                            span_end = t_ms + latency
                            # Queries can overlap (think time restarts
                            # at issue, not completion), so the session
                            # end is the max end, not the last.
                            if span_end > session_end:
                                session_end = span_end
                            session_spans.append(Span(
                                trace_id, span_base + span_n, root_sid,
                                "query", "workload", deployment_key,
                                t_ms, span_end,
                                {"hit": "1" if hit else "0",
                                 "served_site": site_strs[served_site],
                                 "site": site_strs[site]}))
                        if wants_tail:
                            stages = [("dns.wireless", wireless_ms),
                                      ("dns.resolver", resolver_ms)]
                            if interruption:
                                stages.append(("handover", interruption))
                            stages.append(("fetch", fetch_ms))
                            if origin_ms:
                                stages.append(("origin", origin_ms))
                            tail.offer(Exemplar(
                                key=(f"{scope_key}/u{index}"
                                     f"/s{ue_sessions}/q{ordinal}"),
                                total_ms=latency, t_ms=t_ms,
                                stages=tuple(stages),
                                attrs=(("deployment", deployment_key),
                                       ("hit", "1" if hit else "0"),
                                       ("served_site",
                                        site_strs[served_site]),
                                       ("site", site_strs[site]))))
                # Think time advances the session clock; the diurnal
                # multiplier is per-session (sessions are minutes long,
                # buckets are hours), so the clock only gates overflow.
                start += session_model.think_time(rng)
            if observing and session_spans is not None:
                # One ingest per sampled session: ids were built against
                # the tracer's high-water mark at session start, so the
                # batch lands copy-free and interleaves identically on
                # every backend.
                assert session_root is not None
                session_root.end_ms = session_end
                tracer.ingest(session_spans, 1, span_n)
                sampled_queries += span_n - 1
                session_spans = None
        if ue_sessions:
            active += 1
            sessions += ue_sessions

    if observing:
        _flush_observability(tel, model.key, dns_vals, total_vals,
                             query_wins, misloc_wins,
                             queries=queries, hits=hits,
                             localized=localized, sessions=sessions,
                             handovers=handovers,
                             unsampled_queries=(queries - sampled_queries
                                                if tracing else 0))

    return DistrictStats(
        queries=queries, sessions=sessions, active_ues=active, hits=hits,
        localized=localized, handovers=handovers, cache_load=cache_load,
        dns=dns_hist, total=total_hist)


def _noop_append(_value: float) -> None:  # pragma: no cover - placeholder
    """Placeholder bound before the first query initialises the window
    cache; never called (the first query always misses the cache)."""


def _bucket_windows(vals_by_window: Dict[int, List[float]],
                    ) -> Dict[int, List[Any]]:
    """Turn raw per-window value lists into ``[count, sum, buckets]``.

    The sum is taken in chronological (arrival) order *before* sorting,
    matching what incremental accumulation would have produced; bucket
    counts then come from ``bisect_right`` cuts of the sorted array —
    one bisect per bound per window instead of one per value, which is
    what lets the hot loop get away with plain appends.
    """
    buckets = DEFAULT_BUCKETS
    cells: Dict[int, List[Any]] = {}
    for window, vals in vals_by_window.items():
        total = sum(vals)
        vals.sort()
        n = len(vals)
        counts = [0] * len(buckets)
        prev = 0
        for at, bound in enumerate(buckets):
            if prev >= n:
                break
            cut = bisect_right(vals, bound)
            if cut != prev:
                counts[at] = cut - prev
                prev = cut
        cells[window] = [n, total, counts]
    return cells


def _site_major(wins: Dict[int, List[int]]) -> List[Dict[int, int]]:
    """Pivot window-major count rows into per-site window dicts."""
    sites = len(next(iter(wins.values()))) if wins else 0
    per_site: List[Dict[int, int]] = [{} for _ in range(sites)]
    for window, counts in wins.items():
        for site_index, count in enumerate(counts):
            if count:
                per_site[site_index][window] = count
    return per_site


def _flush_observability(tel: Any, deployment: str,
                         dns_vals: Dict[int, List[float]],
                         total_vals: Dict[int, List[float]],
                         query_wins: Dict[int, List[int]],
                         misloc_wins: Dict[int, List[int]],
                         queries: int, hits: int, localized: int,
                         sessions: int, handovers: int,
                         unsampled_queries: int) -> None:
    """Fold one district's locally-aggregated windows into the facade.

    Runs once per district (cold path); the counter rows are
    window-major int lists indexed by site.
    """
    label = {"deployment": deployment}
    timeseries = tel.timeseries
    if dns_vals:
        timeseries.bulk_observe("repro_workload_dns_ms", label,
                                _bucket_windows(dns_vals))
    if total_vals:
        timeseries.bulk_observe("repro_workload_total_ms", label,
                                _bucket_windows(total_vals))
    for name, wins in (("repro_workload_queries", query_wins),
                       ("repro_workload_mislocalized", misloc_wins)):
        for site_index, windows in enumerate(_site_major(wins)):
            if windows:
                timeseries.bulk_count(name,
                                      {"deployment": deployment,
                                       "site": str(site_index)},
                                      windows)
    tel.tracer.sampled_out += unsampled_queries
    metrics = tel.metrics
    metrics.counter("repro_workload_queries_total",
                    "Queries driven by the population engine").inc(
                        queries, deployment=deployment)
    metrics.counter("repro_workload_hits_total",
                    "Cache hits at the selected cache").inc(
                        hits, deployment=deployment)
    metrics.counter("repro_workload_mislocalized_total",
                    "Queries served from a cache off the UE's site").inc(
                        queries - localized, deployment=deployment)
    metrics.counter("repro_workload_sessions_total",
                    "Sessions the arrival process produced").inc(
                        sessions, deployment=deployment)
    metrics.counter("repro_workload_handovers_total",
                    "Mid-session inter-site handovers").inc(
                        handovers, deployment=deployment)


def district_seed(base: int, deployment: str, shard: int) -> int:
    """The population seed for ``shard`` of ``deployment``'s sweep."""
    return derive_seed(base, "district", deployment, shard)
