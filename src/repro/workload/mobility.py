"""Inter-site mobility for population runs.

``repro.mobile.handoff`` models one handover in full packet-level
detail (tear down the radio link, re-attach, switch DNS).  At
population scale the engine needs the *consequences* of that machinery,
not its packets: where a UE is when a session starts, whether it moves
mid-session, and the interruption its traffic pays when it does.  The
interruption constant here is the X2-style control-plane gap the
full-fidelity controller exhibits; the churn experiment (PR 6) remains
the place where handover composes with zone propagation delays.
"""

from __future__ import annotations

import random
from typing import NamedTuple

#: One-off added latency (ms) on the first request after an intra-
#: session handover: the X2 detach/attach gap the packet-level
#: HandoffController imposes before new traffic flows.
HANDOVER_INTERRUPTION_MS = 50.0


class SessionPlacement(NamedTuple):
    """Where one session runs, and whether it moves mid-flight."""

    site: int
    #: Site after the mid-session handover, == ``site`` when none fires.
    handover_site: int
    #: Request ordinal at which the handover lands (-1 = no handover).
    handover_at: int


class MobilityModel:
    """Session-grained movement between MEC sites.

    ``move_probability`` is the chance a session starts away from the
    UE's home site (commuting); ``handover_probability`` is the chance
    the UE crosses a site boundary *during* the session, which both
    relocates its remaining requests and charges one interruption.
    """

    def __init__(self, sites: int,
                 move_probability: float = 0.15,
                 handover_probability: float = 0.05) -> None:
        if sites < 1:
            raise ValueError(f"mobility needs >= 1 site, got {sites}")
        if not 0.0 <= move_probability <= 1.0:
            raise ValueError(f"bad move probability {move_probability}")
        if not 0.0 <= handover_probability <= 1.0:
            raise ValueError(f"bad handover probability {handover_probability}")
        self.sites = sites
        self.move_probability = move_probability
        self.handover_probability = handover_probability

    def _other_site(self, rng: random.Random, current: int) -> int:
        """A uniformly-drawn site different from ``current``."""
        pick = rng.randrange(self.sites - 1)
        return pick if pick < current else pick + 1

    def place_session(self, rng: random.Random, home_site: int,
                      requests: int) -> SessionPlacement:
        """Draw one session's placement from the UE's RNG stream.

        Single-site populations short-circuit: nobody can move, and no
        RNG is consumed, so the same seeds replay identically when the
        site count changes.
        """
        if self.sites == 1:
            return SessionPlacement(site=0, handover_site=0, handover_at=-1)
        site = home_site
        if self.move_probability > 0 and rng.random() < self.move_probability:
            site = self._other_site(rng, home_site)
        handover_site = site
        handover_at = -1
        if (requests > 1 and self.handover_probability > 0
                and rng.random() < self.handover_probability):
            # repro: allow[RNG004] placement draws from the per-UE stream in fixed order (WORKLOAD.md idiom)
            handover_site = self._other_site(rng, site)
            handover_at = 1 + rng.randrange(requests - 1)
        return SessionPlacement(site=site, handover_site=handover_site,
                                handover_at=handover_at)

    def __repr__(self) -> str:
        return (f"MobilityModel({self.sites} sites, "
                f"move={self.move_probability}, "
                f"handover={self.handover_probability})")
