"""Mesoscale cache models: LRU hit/miss accounting without packets.

``repro.cdn.cache_server.CacheServer`` simulates the GET protocol; at
10^6+ queries the engine only needs the cache *policy's* behaviour —
did this object's rank hit, and what got evicted.  :class:`RankLru`
is that reduction: an LRU set over content ranks with exact hit/miss
counters, O(1) per lookup, built on dict insertion order (the same
trick ``repro.cdn.policy.LruPolicy`` uses under its interface).
"""

from __future__ import annotations

from typing import Dict


class RankLru:
    """An object-count LRU cache over integer content ranks."""

    __slots__ = ("capacity", "hits", "misses", "_entries")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        #: Insertion-ordered; the first key is always least recent.
        self._entries: Dict[int, None] = {}

    def lookup(self, rank: int) -> bool:
        """Serve one request for ``rank``; True on hit.

        A miss admits the object (origin fill), evicting the least
        recently used entry when full.
        """
        entries = self._entries
        if rank in entries:
            self.hits += 1
            del entries[rank]      # refresh recency: move to the back
            entries[rank] = None
            return True
        self.misses += 1
        if len(entries) >= self.capacity:
            del entries[next(iter(entries))]
        entries[rank] = None
        return False

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.requests
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (f"RankLru(cap={self.capacity}, n={len(self._entries)}, "
                f"hit_rate={self.hit_rate:.3f})")
