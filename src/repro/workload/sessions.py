"""Per-UE session models: how many requests, how far apart.

A *session* is one burst of CDN activity (opening an app, watching a
few video segments): a geometrically-distributed number of requests
separated by exponential think times.  Both draws come from the per-UE
RNG stream, so a UE's behaviour is a pure function of its sub-seed.
"""

from __future__ import annotations

import random


class SessionModel:
    """Request-count and think-time draws for one session."""

    def __init__(self, mean_requests: float = 8.0,
                 mean_think_s: float = 4.0,
                 min_requests: int = 1) -> None:
        if mean_requests < min_requests:
            raise ValueError(
                f"mean_requests {mean_requests} below floor {min_requests}")
        if mean_think_s <= 0:
            raise ValueError(f"think time must be positive, got {mean_think_s}")
        if min_requests < 1:
            raise ValueError(f"sessions need >= 1 request, got {min_requests}")
        self.mean_requests = mean_requests
        self.mean_think_s = mean_think_s
        self.min_requests = min_requests
        #: Geometric success probability giving the requested mean above
        #: the floor: E[floor + G] = floor + (1-p)/p.
        excess = mean_requests - min_requests
        self._p = 1.0 / (1.0 + excess)

    def request_count(self, rng: random.Random) -> int:
        """Number of requests in one session (geometric, >= floor)."""
        count = self.min_requests
        while rng.random() >= self._p:
            count += 1
        return count

    def think_time(self, rng: random.Random) -> float:
        """Seconds between consecutive requests in a session."""
        return rng.expovariate(1.0 / self.mean_think_s)

    def __repr__(self) -> str:
        return (f"SessionModel(mean_requests={self.mean_requests}, "
                f"think={self.mean_think_s}s)")
