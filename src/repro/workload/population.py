"""City-scale UE populations with per-UE deterministic RNG streams.

A :class:`Population` never materializes its users: a UE is a pure
function of ``(population seed, index)``, computed on demand via the
runtime's ``derive_seed``.  That is what lets one shard hold 10^6 UEs
in O(1) memory, and what makes sharding trivially deterministic — a
district owns an index range, and every property of UE *i* is the same
no matter which process computes it.

Home-site attachment hashes the index through its own ``derive_seed``
stream (not the UE's request RNG), so changing behavioural draws can
never migrate anyone's home.
"""

from __future__ import annotations

import random
from typing import Iterator, List, NamedTuple

from repro.runtime.spec import derive_seed


class UserProfile(NamedTuple):
    """One synthesized UE, derived on demand."""

    index: int
    #: MEC site the UE's eNB belongs to (attachment point at rest).
    home_site: int
    #: Root of this UE's private RNG stream tree.
    seed: int

    def client_ip(self) -> str:
        """A stable synthetic client address for allocation hashing."""
        return (f"10.{64 + (self.index >> 16) % 64}."
                f"{(self.index >> 8) & 0xFF}.{self.index & 0xFF}")


class Population:
    """``size`` UEs attached across ``sites`` MEC sites."""

    def __init__(self, size: int, sites: int, seed: int) -> None:
        if size < 1:
            raise ValueError(f"population needs >= 1 UE, got {size}")
        if sites < 1:
            raise ValueError(f"population needs >= 1 site, got {sites}")
        self.size = size
        self.sites = sites
        self.seed = seed

    def user(self, index: int) -> UserProfile:
        """The UE at ``index`` (0-based), derived fresh each call."""
        if not 0 <= index < self.size:
            raise IndexError(f"UE index {index} outside [0, {self.size})")
        return UserProfile(
            index=index,
            home_site=derive_seed(self.seed, "home", index) % self.sites,
            seed=derive_seed(self.seed, "ue", index))

    def users(self) -> Iterator[UserProfile]:
        """All UEs in index order (lazily)."""
        for index in range(self.size):
            yield self.user(index)

    def user_rng(self, profile: UserProfile) -> random.Random:
        """The UE's behavioural RNG stream (arrivals, sessions, content).

        One stream per UE, consumed strictly in simulation order within
        that UE, keeps replay exact while sharing no state across UEs.
        """
        return random.Random(profile.seed)

    def site_census(self) -> List[int]:
        """UEs per home site (O(size) time, O(sites) memory)."""
        census = [0] * self.sites
        for index in range(self.size):
            census[derive_seed(self.seed, "home", index) % self.sites] += 1
        return census

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (f"Population({self.size} UEs across {self.sites} sites, "
                f"seed={self.seed})")
