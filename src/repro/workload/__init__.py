"""Population-scale workload synthesis (the ROADMAP's "millions of
users" layer).

Generates city-scale traffic against the Figure 5 deployments without
per-query record lists or per-item weight tables:

* :mod:`repro.workload.population` — UEs as pure functions of
  ``(seed, index)`` via ``derive_seed``; O(1) memory per district.
* :mod:`repro.workload.arrivals` — diurnal non-homogeneous Poisson
  session arrivals by Lewis-Shedler thinning.
* :mod:`repro.workload.sessions` — geometric requests-per-session and
  exponential think times.
* :mod:`repro.workload.mobility` — session-grained inter-site movement
  and mid-session handover interruptions (the mesoscale view of
  ``repro.mobile.handoff``).
* :mod:`repro.workload.caches` — exact LRU hit/miss accounting over
  content ranks.
* :mod:`repro.workload.deployment` — latency models calibrated from
  full-fidelity testbed measurements, shard-independently.
* :mod:`repro.workload.engine` — districts (the sharding unit), the
  shared-geometry consistent-hash router, and streaming aggregation
  into mergeable histograms and exact counters.
"""

from repro.workload.arrivals import (DEFAULT_DIURNAL, DiurnalProfile,
                                     NhppArrivals)
from repro.workload.caches import RankLru
from repro.workload.deployment import (CALIBRATION_QUERIES, DeploymentModel,
                                       calibrate, is_localized)
from repro.workload.engine import (ALLOCATION_POLICIES, DistrictConfig,
                                   DistrictStats, district_seed, merge_stats,
                                   run_district)
from repro.workload.mobility import (HANDOVER_INTERRUPTION_MS, MobilityModel,
                                     SessionPlacement)
from repro.workload.population import Population, UserProfile
from repro.workload.sessions import SessionModel

__all__ = [
    "ALLOCATION_POLICIES",
    "CALIBRATION_QUERIES",
    "DEFAULT_DIURNAL",
    "HANDOVER_INTERRUPTION_MS",
    "DeploymentModel",
    "DistrictConfig",
    "DistrictStats",
    "DiurnalProfile",
    "MobilityModel",
    "NhppArrivals",
    "Population",
    "RankLru",
    "SessionModel",
    "SessionPlacement",
    "UserProfile",
    "calibrate",
    "district_seed",
    "is_localized",
    "merge_stats",
    "run_district",
]
