"""``python -m repro.check`` — the static-analysis gate, standalone.

Needs nothing beyond the stdlib and :mod:`repro.dnswire`, so CI can run
it without installing the simulator's dependencies.
"""

from repro.check.runner import main

if __name__ == "__main__":
    raise SystemExit(main())
