"""ZONE rules: static conformance of DNS artifacts.

Zone data ships in two forms — ``*.zone`` master files and literals in
Python source (embedded master-file text, ``Name("...")`` /
``add_simple("owner", ...)`` owners, TTL constants).  This pass validates
all of it at analysis time, without running the simulator:

========  ==============================================================
ZONE000   zone data does not parse as a master file
ZONE001   TTL outside the 31-bit range of RFC 2181 §8
ZONE002   name violates RFC 1035 syntax (label length/charset, hyphen
          placement, wildcard position, total length)
ZONE003   CNAME coexistence breach (CNAME plus other data, multiple
          CNAMEs at one owner, CNAME at the apex)
ZONE004   records do not survive a compressed wire round-trip
ZONE005   SOA missing or inconsistent (apex, uniqueness, timer sanity)
========  ==============================================================

Full zone files get every rule including ZONE005; embedded snippets and
single literals get the structural rules only.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set

from repro.check.findings import Finding
from repro.check.sources import SourceModule, SourceTree
from repro.dnswire.message import ResourceRecord
from repro.dnswire.name import Name
from repro.dnswire.types import RecordType
from repro.dnswire.wire import WireReader, WireWriter
from repro.dnswire.zone import Zone, parse_master_file

ANALYZER_NAME = "conformance"

RULES: Dict[str, str] = {
    "ZONE000": "zone data does not parse",
    "ZONE001": "TTL outside the RFC 2181 31-bit range",
    "ZONE002": "name violates RFC 1035 syntax",
    "ZONE003": "CNAME coexistence rules breached",
    "ZONE004": "record does not survive a compressed wire round-trip",
    "ZONE005": "SOA missing or inconsistent",
}

#: RFC 2181 §8: a TTL is an unsigned 31-bit value.
MAX_TTL_VALUE = 2 ** 31 - 1

#: LDH plus underscore (service labels like ``_dns.example``); hyphens
#: may not lead or trail a label (RFC 1035 §2.3.1 grammar, relaxed to
#: allow leading digits per RFC 1123 §2.1).
_LABEL_RE = re.compile(r"^_?[A-Za-z0-9]([A-Za-z0-9_-]*[A-Za-z0-9_])?$")


def name_syntax_issues(text: str, allow_at: bool = False) -> List[str]:
    """Human-readable RFC 1035 syntax problems of presentation ``text``."""
    if text in ("", "."):
        return []
    if text == "@":
        return [] if allow_at else ["'@' only valid as a zone-relative owner"]
    issues: List[str] = []
    labels = text[:-1].split(".") if text.endswith(".") else text.split(".")
    wire_length = sum(len(label) + 1 for label in labels) + 1
    if wire_length > 255:
        issues.append(f"name is {wire_length} octets on the wire (max 255)")
    for position, label in enumerate(labels):
        if not label:
            issues.append("empty label (consecutive or leading dots)")
            continue
        if len(label) > 63:
            issues.append(f"label '{label[:20]}…' is {len(label)} octets "
                          f"(max 63)")
            continue
        if label == "*":
            if position != 0:
                issues.append("wildcard '*' only valid as the leftmost label")
            continue
        if not _LABEL_RE.match(label):
            issues.append(f"label {label!r} has characters outside "
                          f"letters/digits/hyphen/underscore or a "
                          f"leading/trailing hyphen")
    return issues


def ttl_issue(value: int) -> Optional[str]:
    """Why ``value`` is not a legal TTL, or None."""
    if value < 0:
        return f"TTL {value} is negative"
    if value > MAX_TTL_VALUE:
        return f"TTL {value} exceeds the 31-bit maximum {MAX_TTL_VALUE}"
    return None


# ---------------------------------------------------------------------------
# Zone-object validation
# ---------------------------------------------------------------------------

def validate_zone(zone: Zone, path: str, line: int,
                  expect_soa: bool = True) -> List[Finding]:
    """Every ZONE finding for one parsed/constructed zone."""
    findings: List[Finding] = []

    def emit(rule: str, message: str) -> None:
        findings.append(Finding(rule, path, line, message))

    per_owner: Dict[Name, Dict[RecordType, int]] = {}
    records = list(zone.records())
    for record in records:
        issue = ttl_issue(record.ttl)
        if issue is not None:
            emit("ZONE001", f"{record.name.to_text()} {record.rtype.name}: "
                            f"{issue}")
        for label, name in [("owner", record.name)] + [
                (attr, getattr(record.rdata, attr))
                for attr in ("target", "mname")
                if isinstance(getattr(record.rdata, attr, None), Name)]:
            for problem in name_syntax_issues(name.to_text()):
                emit("ZONE002", f"{label} {name.to_text()}: {problem}")
        counts = per_owner.setdefault(record.name, {})
        counts[record.rtype] = counts.get(record.rtype, 0) + 1

    for owner, counts in per_owner.items():
        cnames = counts.get(RecordType.CNAME, 0)
        if not cnames:
            continue
        if cnames > 1:
            emit("ZONE003", f"{owner.to_text()}: {cnames} CNAME records at "
                            f"one owner (RFC 1035 allows one)")
        if any(rtype != RecordType.CNAME for rtype in counts):
            emit("ZONE003", f"{owner.to_text()}: CNAME coexists with other "
                            f"record types")
        if owner == zone.origin:
            emit("ZONE003", f"CNAME at the zone apex {owner.to_text()}")

    findings.extend(_wire_round_trip(records, path, line))

    if expect_soa:
        findings.extend(_soa_findings(zone, path, line))
    return findings


def _wire_round_trip(records: List[ResourceRecord], path: str,
                     line: int) -> List[Finding]:
    """ZONE004: encode all records with compression, decode, compare."""
    if not records:
        return []
    writer = WireWriter(enable_compression=True)
    try:
        for record in records:
            record.to_wire(writer)
        reader = WireReader(writer.getvalue())
        decoded = [ResourceRecord.from_wire(reader)
                   for _ in range(len(records))]
    except Exception as exc:  # any wire error is exactly the finding
        return [Finding("ZONE004", path, line,
                        f"zone does not survive wire encoding: {exc}")]
    findings = []
    for original, parsed in zip(records, decoded):
        if original != parsed:
            findings.append(Finding(
                "ZONE004", path, line,
                f"{original.name.to_text()} {original.rtype.name} changed "
                f"across the compressed wire round-trip"))
    return findings


def _soa_findings(zone: Zone, path: str, line: int) -> List[Finding]:
    findings: List[Finding] = []
    soas = [record for record in zone.records()
            if record.rtype == RecordType.SOA]
    if not soas:
        return [Finding("ZONE005", path, line,
                        f"zone {zone.origin.to_text()} has no SOA record")]
    if len(soas) > 1:
        findings.append(Finding("ZONE005", path, line,
                                f"zone has {len(soas)} SOA records"))
    soa = soas[0]
    if soa.name != zone.origin:
        findings.append(Finding(
            "ZONE005", path, line,
            f"SOA owner {soa.name.to_text()} is not the apex "
            f"{zone.origin.to_text()}"))
    refresh = getattr(soa.rdata, "refresh", None)
    retry = getattr(soa.rdata, "retry", None)
    expire = getattr(soa.rdata, "expire", None)
    if None not in (refresh, retry, expire):
        if retry >= refresh:
            findings.append(Finding(
                "ZONE005", path, line,
                f"SOA retry {retry} should be below refresh {refresh}"))
        if expire <= refresh:
            findings.append(Finding(
                "ZONE005", path, line,
                f"SOA expire {expire} should exceed refresh {refresh}"))
    return findings


# ---------------------------------------------------------------------------
# Source scanning
# ---------------------------------------------------------------------------

def _looks_like_master_file(text: str) -> bool:
    """Multi-line text with a ``$ORIGIN`` directive is zone data.

    The newline requirement keeps one-line strings (e.g. the literal
    ``"$ORIGIN "`` in a parser) from being mistaken for zones.
    """
    return "\n" in text and any(
        stripped.startswith("$ORIGIN ")
        for stripped in (line.lstrip() for line in text.splitlines()))


def _docstring_nodes(tree: ast.Module) -> Set[int]:
    """ids of Constant nodes that are docstrings (excluded from scans)."""
    nodes: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            body = node.body
            if (body and isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                    and isinstance(body[0].value.value, str)):
                # repro: allow[RACE003] AST-node identity within one in-process parse; never merged
                nodes.add(id(body[0].value))
    return nodes


def _literal_int(node: ast.AST) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    if (isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub)
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, int)):
        return -node.operand.value
    return None


def _literal_str(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _argument(node: ast.Call, index: int, keyword: str) -> Optional[ast.AST]:
    for kw in node.keywords:
        if kw.arg == keyword:
            return kw.value
    if len(node.args) > index:
        return node.args[index]
    return None


class _LiteralVisitor(ast.NodeVisitor):
    """Validates zone-flavoured literals in one module."""

    def __init__(self, module: SourceModule, tree: SourceTree) -> None:
        self._module = module
        self._tree = tree
        self._docstrings = _docstring_nodes(module.tree)
        self.findings: List[Finding] = []

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        finding = self._tree.finding(self._module, rule,
                                     getattr(node, "lineno", 1), message)
        if finding is not None:
            self.findings.append(finding)

    def _check_name_literal(self, node: ast.AST, text: str,
                            allow_at: bool = False) -> None:
        for problem in name_syntax_issues(text, allow_at=allow_at):
            self._emit("ZONE002", node, f"name {text!r}: {problem}")

    def _check_ttl_literal(self, node: ast.AST, value: int) -> None:
        issue = ttl_issue(value)
        if issue is not None:
            self._emit("ZONE001", node, issue)

    def visit_Call(self, node: ast.Call) -> None:
        callee = _call_name(node)
        if callee in ("Name", "from_text") and node.args:
            text = _literal_str(node.args[0])
            if text is not None:
                self._check_name_literal(node, text)
        elif callee == "derelativize" and node.args:
            text = _literal_str(node.args[0])
            if text is not None:
                self._check_name_literal(node, text, allow_at=True)
        elif callee == "add_simple":
            owner = _literal_str(_argument(node, 0, "owner"))
            if owner is not None:
                self._check_name_literal(node, owner, allow_at=True)
            ttl = _argument(node, 3, "ttl")
            value = _literal_int(ttl) if ttl is not None else None
            if value is not None:
                self._check_ttl_literal(node, value)
        elif callee in ("ResourceRecord", "with_ttl"):
            index = 2 if callee == "ResourceRecord" else 0
            ttl = _argument(node, index, "ttl")
            value = _literal_int(ttl) if ttl is not None else None
            if value is not None:
                self._check_ttl_literal(node, value)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        value = _literal_int(node.value)
        if value is not None:
            for target in node.targets:
                if isinstance(target, ast.Name) and "TTL" in target.id \
                        and target.id.isupper():
                    self._check_ttl_literal(node, value)
        self.generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        if (isinstance(node.value, str) and id(node) not in self._docstrings
                and _looks_like_master_file(node.value)):
            self.findings.extend(check_master_text(
                node.value, self._module.rel, node.lineno,
                expect_soa=False))


def check_master_text(text: str, path: str, line: int,
                      expect_soa: bool = True) -> List[Finding]:
    """Parse master-file ``text`` and validate the resulting zone."""
    try:
        zone = parse_master_file(text)
    except Exception as exc:
        return [Finding("ZONE000", path, line,
                        f"zone data does not parse: {exc}")]
    return validate_zone(zone, path, line, expect_soa=expect_soa)


def analyze(tree: SourceTree) -> List[Finding]:
    """Run the conformance pass over zone files and Python literals."""
    findings: List[Finding] = []
    for path, rel in tree.zone_files:
        with open(path, "r", encoding="utf-8") as handle:
            findings.extend(check_master_text(handle.read(), rel, 1,
                                              expect_soa=True))
    for module in tree:
        visitor = _LiteralVisitor(module, tree)
        visitor.visit(module.tree)
        findings.extend(visitor.findings)
    return findings
