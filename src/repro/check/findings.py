"""Structured findings and the baseline/suppression mechanism.

A :class:`Finding` is one rule violation at one location.  Its
*fingerprint* deliberately omits the line number so a baseline entry
survives unrelated edits to the same file; two violations of the same
rule with the same message in one file share a fingerprint, which is the
usual grandfathering granularity.

A :class:`Baseline` is a JSON file of fingerprints.  ``repro check
--baseline FILE`` subtracts it from the report (old debt stays visible
as a count, never as a failure); ``--write-baseline FILE`` records the
current findings so only *new* violations fail from then on.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence, Tuple

BASELINE_VERSION = 1


class Finding:
    """One rule violation: where, which rule, and what is wrong."""

    __slots__ = ("rule", "path", "line", "col", "message")

    def __init__(self, rule: str, path: str, line: int, message: str,
                 col: int = 1) -> None:
        self.rule = rule
        self.path = path.replace("\\", "/")
        self.line = line
        #: 1-based column (SARIF region); purely presentational — it
        #: never enters the fingerprint, so a formatter shifting code
        #: sideways cannot churn baselines.
        self.col = col
        self.message = message

    @property
    def fingerprint(self) -> str:
        """Line- and column-independent identity used by baselines."""
        return f"{self.rule}:{self.path}:{self.message}"

    def sort_key(self) -> Tuple[str, int, int, str, str]:
        """Stable ordering: by path, then line/col, then rule."""
        return (self.path, self.line, self.col, self.rule, self.message)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (the CI report entry)."""
        return {"rule": self.rule, "path": self.path,
                "line": self.line, "col": self.col, "message": self.message}

    def render(self) -> str:
        """One-line ``path:line: RULE message`` form."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Finding):
            return NotImplemented
        return (self.rule, self.path, self.line, self.message) == \
               (other.rule, other.path, other.line, other.message)

    def __hash__(self) -> int:
        return hash((self.rule, self.path, self.line, self.message))

    def __repr__(self) -> str:
        return f"Finding({self.render()!r})"


class Baseline:
    """A set of grandfathered finding fingerprints."""

    def __init__(self, fingerprints: Iterable[str] = ()) -> None:
        self.fingerprints = set(fingerprints)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline JSON file written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict) or "suppressions" not in data:
            raise ValueError(f"{path} is not a repro-check baseline")
        entries = data["suppressions"]
        if not all(isinstance(entry, str) for entry in entries):
            raise ValueError(f"{path} holds non-string suppressions")
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """A baseline grandfathering exactly ``findings``."""
        return cls(finding.fingerprint for finding in findings)

    def save(self, path: str) -> None:
        """Write the baseline as sorted, versioned JSON."""
        payload = {"version": BASELINE_VERSION,
                   "suppressions": sorted(self.fingerprints)}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def split(self, findings: Sequence[Finding]) \
            -> Tuple[List[Finding], List[Finding]]:
        """Partition ``findings`` into (new, baselined)."""
        new: List[Finding] = []
        old: List[Finding] = []
        for finding in findings:
            (old if finding.fingerprint in self.fingerprints else new).append(
                finding)
        return new, old

    def __len__(self) -> int:
        return len(self.fingerprints)

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint in self.fingerprints

    def __repr__(self) -> str:
        return f"Baseline({len(self.fingerprints)} suppressions)"
