"""RNG rules: stream-provenance dataflow.

The repo's sub-seeding discipline says every ``random.Random`` flows
from :func:`repro.runtime.spec.derive_seed` (or
``RandomStreams.stream``, which is the same SHA-256 derivation) or is
handed in by the caller — never conjured from a constant, never shared
through module or class state, and never smuggled across the process
boundary inside a pickled trial spec.  The DET rules catch line-local
slips; these rules track the rng *values*:

========  ==============================================================
RNG001    ``random.Random`` seeded from a hard-coded constant — the
          stream is identical in every trial instead of sub-seeded
RNG002    rng (or stream factory) stored on a module global — one
          mutable stream shared by every trial in the process
RNG003    rng stored as a class attribute — one stream shared by every
          instance
RNG004    one rng stream handed to two independent consumers in the
          same scope — their draws are coupled, so adding a draw to one
          perturbs the other
RNG005    rng captured into a ``TrialSpec``/executor task — rng state
          crosses the process boundary and diverges between backends
========  ==============================================================

A value is *rng-typed* when it comes from ``random.Random(...)``, a
``.stream(...)`` call (the ``RandomStreams`` factory idiom), or a
parameter named/annotated as an rng.  Seed provenance is accepted from
``derive_seed``/``.stream`` calls, function parameters, attribute loads
(caller-supplied state like ``spec.seed``), and hash-derivation
(``int.from_bytes(hashlib...)``) — only constant-built seeds are
flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set

from repro.check.callgraph import FunctionNode, ImportResolver
from repro.check.findings import Finding
from repro.check.sources import SourceModule, SourceTree

ANALYZER_NAME = "rng"

RULES: Dict[str, str] = {
    "RNG001": "random.Random seeded from a constant (no derive_seed "
              "provenance)",
    "RNG002": "RNG stored on a module global (stream shared across trials)",
    "RNG003": "RNG stored on a class attribute (stream shared across "
              "instances)",
    "RNG004": "one rng stream consumed by two independent call sites",
    "RNG005": "rng captured into a TrialSpec/executor task crossing the "
              "process boundary",
}

#: Callees whose arguments are pickled and shipped to worker processes.
_BOUNDARY_CALLEES = frozenset({"TrialSpec", "_TrialTask", "freeze_cell"})

#: Parameter names treated as caller-supplied rng streams.
_RNG_PARAM_NAMES = ("rng", "rand", "stream")


def _is_rng_param(name: str) -> bool:
    return name in _RNG_PARAM_NAMES or name.endswith("_rng")


class _ModuleRng:
    """Per-module RNG dataflow state and rule evaluation."""

    def __init__(self, module: SourceModule, tree: SourceTree) -> None:
        self.module = module
        self.tree = tree
        self.resolver = ImportResolver(module.tree)
        self.findings: List[Finding] = []

    # -- classification -----------------------------------------------------

    def _is_random_ctor(self, node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and self.resolver.dotted(node.func) == "random.Random")

    def _is_stream_call(self, node: ast.AST) -> bool:
        """``X.stream(...)`` — the RandomStreams factory idiom."""
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "stream")

    def _is_streams_ctor(self, node: ast.AST) -> bool:
        dotted = (self.resolver.dotted(node.func)
                  if isinstance(node, ast.Call) else None)
        return dotted is not None and dotted.endswith("RandomStreams")

    def _is_rng_expr(self, node: ast.AST) -> bool:
        return self._is_random_ctor(node) or self._is_stream_call(node)

    def _constant_only(self, node: ast.expr) -> bool:
        """Whether ``node`` is built purely from literals — no provenance."""
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Name, ast.Attribute, ast.Call,
                                ast.Subscript)):
                return False
        return True

    # -- emission -----------------------------------------------------------

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        finding = self.tree.finding(
            self.module, rule, getattr(node, "lineno", 1), message,
            col=getattr(node, "col_offset", 0) + 1)
        if finding is not None:
            self.findings.append(finding)

    # -- rules --------------------------------------------------------------

    def check(self) -> None:
        self._check_scope_stores(self.module.tree.body, "RNG002",
                                 "module global")
        for node in ast.walk(self.module.tree):
            if isinstance(node, ast.ClassDef):
                self._check_scope_stores(
                    node.body, "RNG003", f"class attribute of {node.name}")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(node)
            elif self._is_random_ctor(node):
                self._check_seed_provenance(node)

    def _check_seed_provenance(self, node: ast.Call) -> None:
        if not node.args:
            return  # unseeded: DET004's domain
        seed = node.args[0]
        if self._constant_only(seed):
            self._emit("RNG001", node,
                       "random.Random seeded from a constant; derive the "
                       "seed via derive_seed(...)/RandomStreams or accept "
                       "it from the caller")

    def _check_scope_stores(self, body: Sequence[ast.stmt], rule: str,
                            where: str) -> None:
        """RNG002/RNG003: rng values bound in a shared scope."""
        for stmt in body:
            value: Optional[ast.expr] = None
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                value, targets = stmt.value, list(stmt.targets)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value, targets = stmt.value, [stmt.target]
            if value is None or not targets:
                continue
            if (self._is_rng_expr(value) or self._is_streams_ctor(value)):
                kind = ("RandomStreams factory"
                        if self._is_streams_ctor(value) else "random.Random")
                names = ", ".join(sorted(
                    target.id for target in targets
                    if isinstance(target, ast.Name))) or "<target>"
                self._emit(rule, stmt,
                           f"{kind} '{names}' stored on a {where}; one "
                           f"stream would be shared across trials — thread "
                           f"it through constructors instead")

    def _check_function(self, node: FunctionNode) -> None:
        """Function-scope rules: global stores, RNG004, RNG005."""
        # ``global x; x = Random(...)`` is a module-global store too.
        declared_global: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Global):
                declared_global.update(sub.names)
        rng_names: Dict[str, ast.stmt] = {}
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign) and (
                    self._is_rng_expr(stmt.value)
                    or self._is_streams_ctor(stmt.value)):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        if target.id in declared_global:
                            self._emit("RNG002", stmt,
                                       f"rng assigned to global "
                                       f"'{target.id}' inside "
                                       f"{node.name}(); one stream would "
                                       f"be shared across trials")
                        elif self._is_rng_expr(stmt.value):
                            rng_names[target.id] = stmt
        params = {arg.arg for arg in (
            list(node.args.posonlyargs) + list(node.args.args)
            + list(node.args.kwonlyargs)) if _is_rng_param(arg.arg)
            or self._annotated_rng(arg)}
        self._check_fanout(node, set(rng_names) | params)
        self._check_boundary(node, set(rng_names) | params)

    def _annotated_rng(self, arg: ast.arg) -> bool:
        if arg.annotation is None:
            return False
        dotted = self.resolver.dotted(arg.annotation)
        return dotted == "random.Random"

    def _consuming_calls(self, node: FunctionNode,
                         rng_names: Set[str]) -> Dict[str, List[ast.Call]]:
        """rng name -> call sites that receive it as an argument.

        Draws on the stream itself (``rng.random()``) and re-derivations
        (``rng.getrandbits``…) are not consumption; handing the object to
        another component is.
        """
        consumers: Dict[str, List[ast.Call]] = {name: []
                                                for name in rng_names}
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            receiver = (sub.func.value.id
                        if isinstance(sub.func, ast.Attribute)
                        and isinstance(sub.func.value, ast.Name) else None)
            for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                if (isinstance(arg, ast.Name) and arg.id in rng_names
                        and arg.id != receiver):
                    consumers[arg.id].append(sub)
        return consumers

    def _check_fanout(self, node: FunctionNode, rng_names: Set[str]) -> None:
        """RNG004: the same stream handed to two independent consumers."""
        for name, calls in sorted(
                self._consuming_calls(node, rng_names).items()):
            if len(calls) >= 2:
                self._emit("RNG004", calls[1],
                           f"rng stream '{name}' is consumed by "
                           f"{len(calls)} call sites in {node.name}(); "
                           f"shared streams couple their draws — give "
                           f"each consumer its own derived stream")

    def _check_boundary(self, node: FunctionNode,
                        rng_names: Set[str]) -> None:
        """RNG005: rng values inside pickled executor payloads."""
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            callee: Optional[str] = None
            if isinstance(sub.func, ast.Name):
                callee = sub.func.id
            elif isinstance(sub.func, ast.Attribute):
                callee = sub.func.attr
            if callee not in _BOUNDARY_CALLEES:
                continue
            for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                for leaf in ast.walk(arg):
                    if ((isinstance(leaf, ast.Name)
                         and leaf.id in rng_names)
                            or self._is_rng_expr(leaf)):
                        self._emit(
                            "RNG005", sub,
                            f"rng captured into {callee}(...) in "
                            f"{node.name}(); rng state crossing the "
                            f"process boundary diverges between serial "
                            f"and sharded runs — ship the seed, not the "
                            f"stream")
                        break
                else:
                    continue
                break


def analyze(tree: SourceTree) -> List[Finding]:
    """Run every RNG rule over every module in ``tree``."""
    findings: List[Finding] = []
    for module in tree:
        checker = _ModuleRng(module, tree)
        checker.check()
        findings.extend(checker.findings)
    # Nested functions are visited under their parent and themselves;
    # identical findings collapse to one.
    return list(dict.fromkeys(findings))
