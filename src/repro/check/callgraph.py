"""Whole-program indexing and call-graph construction.

The line-local DET/ARCH/ZONE rules never needed to know who calls whom;
the inter-procedural passes (:mod:`repro.check.dataflow`,
:mod:`repro.check.races`, :mod:`repro.check.hotpath`) do.  This module
builds, from a parsed :class:`~repro.check.sources.SourceTree`:

* a :class:`ProgramIndex` — every module-level function and class method
  under a stable qualified name (``repro.runtime.executor.TrialExecutor.
  run``), with per-module import-alias maps for resolving dotted calls;
* a :class:`CallGraph` — best-effort call edges between indexed
  functions, resolved three ways: direct calls to module-level names
  (through import aliases), ``self.method(...)`` to the enclosing class,
  and ``obj.method(...)`` by method name across the tree (a deliberate
  over-approximation: for race detection, reporting too much reachable
  code is safe, missing reachable code is not).

Nested functions and lambdas are folded into their innermost indexed
enclosing function — if the parent is reachable, the closure may run, so
its body is analysed under the parent's name.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.check.sources import SourceModule, SourceTree

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Call receivers treated as method calls to *any* same-named method in
#: the tree would explode on these ubiquitous names; they never resolve.
_IGNORED_METHOD_NAMES = frozenset({
    "append", "add", "update", "extend", "insert", "remove", "pop",
    "clear", "get", "items", "keys", "values", "setdefault", "join",
    "split", "strip", "format", "encode", "decode", "sort", "copy",
    "startswith", "endswith", "replace", "lower", "upper", "count",
    "index", "read", "write", "close", "popitem", "discard",
})


class ImportResolver:
    """Resolves expressions to dotted import paths, best effort.

    Shared by every inter-procedural pass; mirrors the determinism
    linter's resolver but also exposes the raw alias map.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    full = (alias.name if alias.asname
                            else alias.name.split(".")[0])
                    self.aliases[local] = full
            elif (isinstance(node, ast.ImportFrom) and node.module
                    and not node.level):
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def dotted(self, node: ast.AST) -> Optional[str]:
        """The fully-qualified dotted path of ``node``, if resolvable."""
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.dotted(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None


class FunctionInfo:
    """One indexed function or method."""

    __slots__ = ("qualname", "name", "cls", "module", "node")

    def __init__(self, qualname: str, name: str, cls: Optional[str],
                 module: SourceModule, node: FunctionNode) -> None:
        #: ``module.Class.method`` or ``module.function``.
        self.qualname = qualname
        self.name = name
        #: Enclosing class name, if a method.
        self.cls = cls
        self.module = module
        self.node = node

    def __repr__(self) -> str:
        return f"FunctionInfo({self.qualname})"


class ProgramIndex:
    """Every indexed function, class, and module-alias map in a tree."""

    def __init__(self) -> None:
        #: qualname -> function.
        self.functions: Dict[str, FunctionInfo] = {}
        #: bare method/function name -> every indexed function bearing it.
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        #: dotted class name (``module.Class``) -> method name -> qualname.
        self.classes: Dict[str, Dict[str, str]] = {}
        #: module dotted name -> its import resolver.
        self.resolvers: Dict[str, ImportResolver] = {}

    @classmethod
    def build(cls, tree: SourceTree) -> "ProgramIndex":
        """Index every module-level function and class method."""
        index = cls()
        for module in tree:
            resolver = ImportResolver(module.tree)
            index.resolvers[module.module] = resolver
            for node in module.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    index._add(module, node, cls_name=None)
                elif isinstance(node, ast.ClassDef):
                    class_key = f"{module.module}.{node.name}"
                    index.classes.setdefault(class_key, {})
                    for item in node.body:
                        if isinstance(item, (ast.FunctionDef,
                                             ast.AsyncFunctionDef)):
                            index._add(module, item, cls_name=node.name)
        return index

    def _add(self, module: SourceModule, node: FunctionNode,
             cls_name: Optional[str]) -> None:
        parts = [module.module] if module.module else []
        if cls_name is not None:
            parts.append(cls_name)
        parts.append(node.name)
        qualname = ".".join(parts)
        info = FunctionInfo(qualname, node.name, cls_name, module, node)
        self.functions[qualname] = info
        self.by_name.setdefault(node.name, []).append(info)
        if cls_name is not None and module.module:
            self.classes.setdefault(f"{module.module}.{cls_name}",
                                    {})[node.name] = qualname


def _callee_targets(call: ast.Call, info: FunctionInfo,
                    index: ProgramIndex) -> List[str]:
    """Qualnames ``call`` may invoke, best effort."""
    func = call.func
    module_name = info.module.module
    resolver = index.resolvers.get(module_name)
    targets: List[str] = []
    if isinstance(func, ast.Name):
        # A module-level function or class of this module...
        local = f"{module_name}.{func.id}" if module_name else func.id
        if local in index.functions:
            targets.append(local)
        elif f"{local}.__init__" in index.functions:
            targets.append(f"{local}.__init__")
        elif resolver is not None:
            # ...or an imported one.
            dotted = resolver.dotted(func)
            if dotted is not None:
                if dotted in index.functions:
                    targets.append(dotted)
                elif f"{dotted}.__init__" in index.functions:
                    targets.append(f"{dotted}.__init__")
        return targets
    if isinstance(func, ast.Attribute):
        if resolver is not None:
            dotted = resolver.dotted(func)
            if dotted is not None and dotted in index.functions:
                return [dotted]
            if dotted is not None and f"{dotted}.__init__" in index.functions:
                return [f"{dotted}.__init__"]
        if isinstance(func.value, ast.Name) and func.value.id == "self" \
                and info.cls is not None:
            methods = index.classes.get(f"{info.module.module}.{info.cls}", {})
            if func.attr in methods:
                return [methods[func.attr]]
        # Unknown receiver: every same-named method might be the callee.
        if func.attr not in _IGNORED_METHOD_NAMES:
            return [candidate.qualname
                    for candidate in index.by_name.get(func.attr, [])
                    if candidate.cls is not None]
    return targets


class CallGraph:
    """Best-effort call edges between indexed functions."""

    def __init__(self, index: ProgramIndex) -> None:
        self.index = index
        #: caller qualname -> callee qualnames.
        self.edges: Dict[str, Set[str]] = {}

    @classmethod
    def build(cls, index: ProgramIndex) -> "CallGraph":
        """Extract edges from every indexed function body.

        Calls inside nested functions/lambdas are attributed to the
        enclosing indexed function (closures run under their parent).
        """
        graph = cls(index)
        for qualname, info in index.functions.items():
            callees = graph.edges.setdefault(qualname, set())
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    callees.update(_callee_targets(node, info, index))
        return graph

    def reachable(self, root_patterns: Sequence[str]) -> Set[str]:
        """Qualnames reachable from functions matching ``root_patterns``.

        Patterns are ``fnmatch``-style over qualified names, e.g.
        ``*.run_trial`` or ``repro.runtime.capture.*``.
        """
        roots = [qualname for qualname in self.index.functions
                 if any(fnmatch.fnmatchcase(qualname, pattern)
                        for pattern in root_patterns)]
        seen: Set[str] = set()
        frontier: List[str] = list(roots)
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.edges.get(current, ()))
        return seen

    def reachable_functions(self, root_patterns: Sequence[str]
                            ) -> List[FunctionInfo]:
        """Like :meth:`reachable`, resolved to infos in a stable order."""
        names = self.reachable(root_patterns)
        return [self.index.functions[name] for name in sorted(names)]


def stored_names(body: Iterable[ast.stmt]) -> Set[str]:
    """Every bare name stored anywhere under ``body`` statements.

    Used for loop-invariance: a value is invariant across iterations
    when none of the names it reads are (re)bound in the loop body.
    """
    names: Set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(
                    node.ctx, (ast.Store, ast.Del)):
                names.add(node.id)
            elif isinstance(node, ast.NamedExpr) and isinstance(
                    node.target, ast.Name):
                names.add(node.target.id)
    return names


def read_names(node: ast.AST) -> Set[str]:
    """Every bare name loaded under expression ``node``."""
    names: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
            names.add(sub.id)
    return names


def module_level_bindings(module: SourceModule) -> Set[str]:
    """Names bound by assignment at module scope (shared process state)."""
    bound: Set[str] = set()
    for stmt in module.tree.body:
        targets: Tuple[ast.expr, ...] = ()
        if isinstance(stmt, ast.Assign):
            targets = tuple(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = (stmt.target,)
        for target in targets:
            for node in ast.walk(target):
                if isinstance(node, ast.Name):
                    bound.add(node.id)
    return bound
