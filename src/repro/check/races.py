"""RACE rules: executor race detection.

``TrialExecutor`` promises serial and ``--jobs N`` runs are
byte-identical.  That holds only while worker-executed code touches no
state shared beyond the trial: a module global mutated inside a worker
is invisible to its siblings under ``fork`` but visible in the serial
backend — the contract's definition of a race.  These rules build the
call graph rooted at the worker entry points (``Experiment.run_trial``
implementations and the executor/capture machinery) and inspect every
reachable function:

========  ==============================================================
RACE001   write to module-level or class-level state from worker-
          reachable code (``global`` store, mutation of a module-scope
          binding, ``Class.attr =``)
RACE002   mutable default argument on a worker-reachable function —
          one shared object serves every trial in a process
RACE003   process-dependent value in worker-reachable code: ``id()``
          (address-space dependent), ``hash()`` of a non-int
          (``PYTHONHASHSEED`` differs under spawn), or iterating a
          set-typed local (hash order feeding merged results)
RACE004   lambda / nested function handed to a pickling boundary
          (``TrialSpec``, pool ``.map``/``.submit``) — closures do not
          pickle, so the sharded backend diverges or dies
========  ==============================================================

The call graph deliberately over-approximates (unknown ``obj.method()``
receivers match every same-named method), so reachability errs toward
reporting; rule shapes are kept narrow to compensate.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.check.callgraph import (CallGraph, FunctionInfo, FunctionNode,
                                   ProgramIndex, module_level_bindings)
from repro.check.findings import Finding
from repro.check.sources import SourceTree

ANALYZER_NAME = "races"

RULES: Dict[str, str] = {
    "RACE001": "worker-reachable write to module/class-level state",
    "RACE002": "mutable default argument on a worker-reachable function",
    "RACE003": "process-dependent value (id/hash/set order) in "
               "worker-reachable code",
    "RACE004": "unpicklable closure handed to a process boundary",
}

#: Call-graph roots: what a worker process actually executes.
DEFAULT_ROOTS: Tuple[str, ...] = (
    "*.run_trial",
    "*._run_trial_task",
    "*._run_chunk",
    "repro.runtime.capture.*",
)

#: Method calls that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "add", "update", "extend", "insert", "remove", "pop",
    "clear", "setdefault", "popitem", "discard", "sort", "reverse",
})

#: Pickling boundaries: callables whose function-valued arguments must
#: resolve by qualified name in the worker.
_BOUNDARY_NAMES = frozenset({"TrialSpec", "_TrialTask"})
_BOUNDARY_METHODS = frozenset({
    "map", "imap", "imap_unordered", "starmap", "apply_async", "submit",
})


def _mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in {"list", "dict", "set", "bytearray",
                                 "defaultdict", "deque", "Counter",
                                 "OrderedDict"})


def _local_set_names(node: FunctionNode) -> Set[str]:
    """Names assigned from a set construct anywhere in ``node``."""
    names: Set[str] = set()
    for stmt in ast.walk(node):
        if isinstance(stmt, ast.Assign):
            value = stmt.value
            is_set = isinstance(value, (ast.Set, ast.SetComp)) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in {"set", "frozenset"})
            if is_set:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


def _plain_local_stores(node: FunctionNode,
                        declared_global: Set[str]) -> Set[str]:
    """Bare names the function rebinds locally (shadowing module scope)."""
    stores: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (sub.targets if isinstance(sub, ast.Assign)
                       else [sub.target])
            for target in targets:
                if isinstance(target, ast.Name) \
                        and target.id not in declared_global:
                    stores.add(target.id)
        elif isinstance(sub, ast.For) and isinstance(sub.target, ast.Name):
            stores.add(sub.target.id)
    return stores


class _FunctionRace:
    """All RACE rules over one reachable function."""

    def __init__(self, info: FunctionInfo, tree: SourceTree,
                 index: ProgramIndex) -> None:
        self.info = info
        self.tree = tree
        self.index = index
        self.module_bindings = module_level_bindings(info.module)
        self.module_classes = {
            name.rsplit(".", 1)[1] for name in index.classes
            if name.rsplit(".", 1)[0] == info.module.module}
        self.findings: List[Finding] = []

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        finding = self.tree.finding(
            self.info.module, rule, getattr(node, "lineno", 1), message,
            col=getattr(node, "col_offset", 0) + 1)
        if finding is not None:
            self.findings.append(finding)

    def check(self) -> None:
        node = self.info.node
        where = f"worker-reachable {self.info.name}()"
        declared_global: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Global):
                declared_global.update(sub.names)
        local_stores = _plain_local_stores(node, declared_global)
        shared = ((self.module_bindings - local_stores)
                  | declared_global | self.module_classes)
        set_names = _local_set_names(node)

        self._check_defaults(node, where)
        for sub in ast.walk(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and sub is not node:
                self._check_defaults(sub, where)
            self._check_stores(sub, declared_global, shared, where)
            self._check_process_dependence(sub, set_names, where)
            self._check_boundary(sub, node, where)

    # -- RACE002 ------------------------------------------------------------

    def _check_defaults(self, node: FunctionNode, where: str) -> None:
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults
            if default is not None]
        for default in defaults:
            if _mutable_default(default):
                self._emit("RACE002", default,
                           f"mutable default argument on {node.name}() "
                           f"({where}); the object is shared by every "
                           f"trial in a process — default to None")

    # -- RACE001 ------------------------------------------------------------

    def _check_stores(self, sub: ast.AST, declared_global: Set[str],
                      shared: Set[str], where: str) -> None:
        if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (sub.targets if isinstance(sub, ast.Assign)
                       else [sub.target])
            for target in targets:
                if isinstance(target, ast.Name) \
                        and target.id in declared_global:
                    self._emit("RACE001", sub,
                               f"store to global '{target.id}' in {where}; "
                               f"worker writes to module state diverge "
                               f"between serial and sharded runs")
                elif isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id in self.module_classes:
                    self._emit("RACE001", sub,
                               f"store to class attribute "
                               f"'{target.value.id}.{target.attr}' in "
                               f"{where}; class-level state is shared "
                               f"across trials")
                elif isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id in shared:
                    self._emit("RACE001", sub,
                               f"item store into module-level "
                               f"'{target.value.id}' in {where}; "
                               f"module state is shared across trials")
        elif isinstance(sub, ast.Call) \
                and isinstance(sub.func, ast.Attribute) \
                and sub.func.attr in _MUTATORS \
                and isinstance(sub.func.value, ast.Name) \
                and sub.func.value.id in shared:
            self._emit("RACE001", sub,
                       f"mutation of module-level "
                       f"'{sub.func.value.id}.{sub.func.attr}(...)' in "
                       f"{where}; module state is shared across trials")

    # -- RACE003 ------------------------------------------------------------

    def _check_process_dependence(self, sub: ast.AST, set_names: Set[str],
                                  where: str) -> None:
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name):
            if sub.func.id == "id" and len(sub.args) == 1:
                self._emit("RACE003", sub,
                           f"id(...) in {where} is an address-space "
                           f"value; it differs per process and taints "
                           f"anything merged from it")
            elif sub.func.id == "hash" and sub.args and not (
                    isinstance(sub.args[0], ast.Constant)
                    and isinstance(sub.args[0].value, int)):
                self._emit("RACE003", sub,
                           f"hash(...) in {where} depends on "
                           f"PYTHONHASHSEED under spawn-started workers; "
                           f"use hashlib for stable digests")
        iter_expr: Optional[ast.expr] = None
        if isinstance(sub, ast.For):
            iter_expr = sub.iter
        elif isinstance(sub, (ast.ListComp, ast.GeneratorExp)):
            # Set/dict comprehensions collapse order again; only
            # order-preserving materialisations leak it.
            iter_expr = sub.generators[0].iter
        if isinstance(iter_expr, ast.Name) and iter_expr.id in set_names:
            self._emit("RACE003", sub,
                       f"iteration over set-typed '{iter_expr.id}' in "
                       f"{where} visits hash order; results merged from "
                       f"it are order-dependent — iterate sorted(...)")

    # -- RACE004 ------------------------------------------------------------

    def _check_boundary(self, sub: ast.AST, func: FunctionNode,
                        where: str) -> None:
        if not isinstance(sub, ast.Call):
            return
        callee: Optional[str] = None
        if isinstance(sub.func, ast.Name) \
                and sub.func.id in _BOUNDARY_NAMES:
            callee = sub.func.id
        elif isinstance(sub.func, ast.Attribute) \
                and sub.func.attr in _BOUNDARY_METHODS:
            callee = sub.func.attr
        if callee is None:
            return
        nested = {child.name for child in ast.walk(func)
                  if isinstance(child, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))
                  and child is not func}
        for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
            if isinstance(arg, ast.Lambda) or (
                    isinstance(arg, ast.Name) and arg.id in nested):
                label = ("a lambda" if isinstance(arg, ast.Lambda)
                         else f"nested function '{arg.id}'")  # type: ignore[union-attr]
                self._emit("RACE004", sub,
                           f"{label} passed to {callee}(...) in {where}; "
                           f"closures do not pickle across the process "
                           f"boundary — use a module-level function")


def analyze(tree: SourceTree,
            roots: Sequence[str] = DEFAULT_ROOTS) -> List[Finding]:
    """Run every RACE rule over code reachable from ``roots``."""
    index = ProgramIndex.build(tree)
    graph = CallGraph.build(index)
    findings: List[Finding] = []
    for info in graph.reachable_functions(roots):
        checker = _FunctionRace(info, tree, index)
        checker.check()
        findings.extend(checker.findings)
    return list(dict.fromkeys(findings))
