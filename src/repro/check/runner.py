"""``repro check`` — run the analyzers, report, gate.

Orchestrates the three analyzers over a source tree, applies the
baseline, and renders the report as human text or machine JSON (the CI
artifact).  Exit status: 0 when no new findings, 1 when there are, 2 on
usage errors — so the command doubles as a merge gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.check import conformance, determinism, layering
from repro.check.findings import Baseline, Finding
from repro.check.sources import SourceTree, load_tree

REPORT_VERSION = 1

ANALYZERS: Dict[str, Callable[[SourceTree], List[Finding]]] = {
    determinism.ANALYZER_NAME: determinism.analyze,
    layering.ANALYZER_NAME: layering.analyze,
    conformance.ANALYZER_NAME: conformance.analyze,
}

#: rule id -> one-line description, across all analyzers.
ALL_RULES: Dict[str, str] = {
    "GEN001": "file does not parse",
    **determinism.RULES, **layering.RULES, **conformance.RULES,
}

DEFAULT_PATHS = ("src/repro",)


class Report:
    """The outcome of one ``repro check`` run."""

    def __init__(self, findings: List[Finding], baselined: List[Finding],
                 analyzers: List[str], scanned: int) -> None:
        #: New findings (after baseline subtraction), sorted by location.
        self.findings = sorted(findings, key=Finding.sort_key)
        #: Findings grandfathered by the baseline file.
        self.baselined = sorted(baselined, key=Finding.sort_key)
        self.analyzers = analyzers
        self.scanned = scanned

    @property
    def ok(self) -> bool:
        """True when no unsuppressed findings remain."""
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        """Finding counts keyed by rule id."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        """The machine-readable report (uploaded as a CI artifact)."""
        return {
            "version": REPORT_VERSION,
            "analyzers": self.analyzers,
            "files_scanned": self.scanned,
            "summary": self.counts_by_rule(),
            "baselined": len(self.baselined),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def render_json(self) -> str:
        """The report as pretty-printed JSON."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def render_text(self) -> str:
        """The report as human-readable lines plus a verdict line."""
        lines = [finding.render() for finding in self.findings]
        counts = self.counts_by_rule()
        summary = ", ".join(f"{count} {rule}"
                            for rule, count in sorted(counts.items()))
        verdict = ("clean" if self.ok
                   else f"{len(self.findings)} finding"
                        f"{'s' if len(self.findings) != 1 else ''}"
                        f" ({summary})")
        lines.append(f"repro check: {verdict}; {self.scanned} files via "
                     f"{'/'.join(self.analyzers)}"
                     + (f"; {len(self.baselined)} baselined"
                        if self.baselined else ""))
        return "\n".join(lines) + "\n"


def run_check(paths: Sequence[str] = DEFAULT_PATHS,
              analyzers: Optional[Sequence[str]] = None,
              baseline: Optional[Baseline] = None) -> Report:
    """Run ``analyzers`` (default: all) over ``paths`` and apply ``baseline``."""
    names = list(analyzers) if analyzers else list(ANALYZERS)
    unknown = [name for name in names if name not in ANALYZERS]
    if unknown:
        raise ValueError(f"unknown analyzer(s): {', '.join(unknown)} "
                         f"(have: {', '.join(ANALYZERS)})")
    tree = load_tree(list(paths))
    findings: List[Finding] = list(tree.errors)
    for name in names:
        findings.extend(ANALYZERS[name](tree))
    baselined: List[Finding] = []
    if baseline is not None:
        findings, baselined = baseline.split(findings)
    return Report(findings, baselined, names,
                  len(tree) + len(tree.zone_files))


def add_check_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``repro check`` flags (shared with ``python -m repro.check``)."""
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="files or directories to analyse "
                             "(default: src/repro)")
    parser.add_argument("--analyzer", action="append",
                        choices=sorted(ANALYZERS), dest="analyzers",
                        help="run only this analyzer (repeatable; "
                             "default: all)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="stdout format (default: text)")
    parser.add_argument("--out", metavar="PATH",
                        help="also write the JSON report to PATH "
                             "(the CI artifact)")
    parser.add_argument("--baseline", metavar="PATH",
                        help="suppress findings recorded in this baseline")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="record current findings as the new baseline "
                             "and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")


def run_cli(args: argparse.Namespace) -> int:
    """Execute a parsed ``repro check`` invocation."""
    if args.list_rules:
        for rule, description in sorted(ALL_RULES.items()):
            print(f"{rule}  {description}")
        return 0
    baseline = None
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: cannot load baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
    try:
        report = run_check(args.paths, analyzers=args.analyzers,
                           baseline=baseline)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        Baseline.from_findings(report.findings
                               + report.baselined).save(args.write_baseline)
        print(f"wrote baseline with "
              f"{len(report.findings) + len(report.baselined)} suppressions "
              f"to {args.write_baseline}")
        return 0
    output = (report.render_json() if args.format == "json"
              else report.render_text())
    sys.stdout.write(output)
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(report.render_json())
        except OSError as exc:
            print(f"error: cannot write report to {args.out}: {exc}",
                  file=sys.stderr)
            return 2
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.check``)."""
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="Determinism & architecture static analysis for the "
                    "MEC-CDN reproduction")
    add_check_arguments(parser)
    return run_cli(parser.parse_args(argv))
