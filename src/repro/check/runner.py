"""``repro check`` — run the analyzers, report, gate.

Orchestrates the three analyzers over a source tree, applies the
baseline, and renders the report as human text or machine JSON (the CI
artifact).  Exit status: 0 when no new findings, 1 when there are, 2 on
usage errors — so the command doubles as a merge gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.check import (conformance, dataflow, determinism, hotpath,
                         layering, races)
from repro.check.findings import Baseline, Finding
from repro.check.sources import SourceTree, load_tree

REPORT_VERSION = 1

#: SARIF schema targeted by ``--format sarif`` / ``--sarif-out``.
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")

ANALYZERS: Dict[str, Callable[[SourceTree], List[Finding]]] = {
    determinism.ANALYZER_NAME: determinism.analyze,
    layering.ANALYZER_NAME: layering.analyze,
    conformance.ANALYZER_NAME: conformance.analyze,
    dataflow.ANALYZER_NAME: dataflow.analyze,
    races.ANALYZER_NAME: races.analyze,
    hotpath.ANALYZER_NAME: hotpath.analyze,
}

#: analyzer name -> the rule ids it owns (drives ``--only`` selection).
ANALYZER_RULES: Dict[str, List[str]] = {
    determinism.ANALYZER_NAME: sorted(determinism.RULES),
    layering.ANALYZER_NAME: sorted(layering.RULES),
    conformance.ANALYZER_NAME: sorted(conformance.RULES),
    dataflow.ANALYZER_NAME: sorted(dataflow.RULES),
    races.ANALYZER_NAME: sorted(races.RULES),
    hotpath.ANALYZER_NAME: sorted(hotpath.RULES),
}

#: rule id -> one-line description, across all analyzers.
ALL_RULES: Dict[str, str] = {
    "GEN001": "file does not parse",
    **determinism.RULES, **layering.RULES, **conformance.RULES,
    **dataflow.RULES, **races.RULES, **hotpath.RULES,
}

DEFAULT_PATHS = ("src/repro",)


class Report:
    """The outcome of one ``repro check`` run."""

    def __init__(self, findings: List[Finding], baselined: List[Finding],
                 analyzers: List[str], scanned: int) -> None:
        #: New findings (after baseline subtraction), sorted by location.
        self.findings = sorted(findings, key=Finding.sort_key)
        #: Findings grandfathered by the baseline file.
        self.baselined = sorted(baselined, key=Finding.sort_key)
        self.analyzers = analyzers
        self.scanned = scanned

    @property
    def ok(self) -> bool:
        """True when no unsuppressed findings remain."""
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        """Finding counts keyed by rule id."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        """The machine-readable report (uploaded as a CI artifact)."""
        return {
            "version": REPORT_VERSION,
            "analyzers": self.analyzers,
            "files_scanned": self.scanned,
            "summary": self.counts_by_rule(),
            "baselined": len(self.baselined),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def render_json(self) -> str:
        """The report as pretty-printed JSON."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def render_sarif(self) -> str:
        """The report as a SARIF 2.1.0 log (CI annotation attachment).

        ``partialFingerprints`` carries the baseline fingerprint, which
        is line- and column-insensitive, so SARIF consumers dedupe
        findings across formatting-only diffs exactly like baselines do.
        """
        present = sorted({finding.rule for finding in self.findings})
        driver = {
            "name": "repro-check",
            "informationUri": "docs/DETERMINISM.md",
            "rules": [{"id": rule,
                       "shortDescription": {"text": ALL_RULES.get(rule, rule)}}
                      for rule in present],
        }
        results = [{
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{"physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {"startLine": finding.line,
                           "startColumn": finding.col}}}],
            "partialFingerprints": {"reproCheck/v1": finding.fingerprint},
        } for finding in self.findings]
        doc = {
            "$schema": _SARIF_SCHEMA,
            "version": SARIF_VERSION,
            "runs": [{"tool": {"driver": driver}, "results": results}],
        }
        return json.dumps(doc, indent=2, sort_keys=True) + "\n"

    def render_text(self) -> str:
        """The report as human-readable lines plus a verdict line."""
        lines = [finding.render() for finding in self.findings]
        counts = self.counts_by_rule()
        summary = ", ".join(f"{count} {rule}"
                            for rule, count in sorted(counts.items()))
        verdict = ("clean" if self.ok
                   else f"{len(self.findings)} finding"
                        f"{'s' if len(self.findings) != 1 else ''}"
                        f" ({summary})")
        lines.append(f"repro check: {verdict}; {self.scanned} files via "
                     f"{'/'.join(self.analyzers)}"
                     + (f"; {len(self.baselined)} baselined"
                        if self.baselined else ""))
        return "\n".join(lines) + "\n"


def run_check(paths: Sequence[str] = DEFAULT_PATHS,
              analyzers: Optional[Sequence[str]] = None,
              baseline: Optional[Baseline] = None,
              only: Optional[Sequence[str]] = None,
              include_suppressed: bool = False) -> Report:
    """Run ``analyzers`` (default: all) over ``paths`` and apply ``baseline``.

    ``only`` restricts the report to the given rule ids and — unless
    ``analyzers`` is also given — runs just the analyzers owning them.
    ``include_suppressed`` ignores inline ``# repro: allow[...]``
    comments (inventory runs, e.g. ``HOT_INVENTORY.json``).
    """
    if only:
        unknown_rules = [rule for rule in only if rule not in ALL_RULES]
        if unknown_rules:
            raise ValueError(
                f"unknown rule(s): {', '.join(unknown_rules)} "
                f"(see --list-rules)")
    names = list(analyzers) if analyzers else list(ANALYZERS)
    unknown = [name for name in names if name not in ANALYZERS]
    if unknown:
        raise ValueError(f"unknown analyzer(s): {', '.join(unknown)} "
                         f"(have: {', '.join(ANALYZERS)})")
    if only and not analyzers:
        wanted = set(only)
        names = [name for name in names
                 if wanted.intersection(ANALYZER_RULES[name])]
    tree = load_tree(list(paths))
    tree.include_suppressed = include_suppressed
    findings: List[Finding] = list(tree.errors)
    for name in names:
        findings.extend(ANALYZERS[name](tree))
    if only:
        findings = [finding for finding in findings
                    if finding.rule in set(only)]
    baselined: List[Finding] = []
    if baseline is not None:
        findings, baselined = baseline.split(findings)
    return Report(findings, baselined, names,
                  len(tree) + len(tree.zone_files))


def add_check_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``repro check`` flags (shared with ``python -m repro.check``)."""
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="files or directories to analyse "
                             "(default: src/repro)")
    parser.add_argument("--analyzer", action="append",
                        choices=sorted(ANALYZERS), dest="analyzers",
                        help="run only this analyzer (repeatable; "
                             "default: all)")
    parser.add_argument("--only", action="append", metavar="RULE[,RULE...]",
                        help="report only these rule ids (repeatable, "
                             "comma-separated); analyzers not owning any "
                             "selected rule are skipped")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="stdout format (default: text)")
    parser.add_argument("--out", metavar="PATH",
                        help="also write the JSON report to PATH "
                             "(the CI artifact)")
    parser.add_argument("--sarif-out", metavar="PATH",
                        help="also write a SARIF 2.1.0 log to PATH "
                             "(CI diff annotations)")
    parser.add_argument("--include-suppressed", action="store_true",
                        help="ignore inline '# repro: allow[...]' "
                             "comments (inventory runs)")
    parser.add_argument("--baseline", metavar="PATH",
                        help="suppress findings recorded in this baseline")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="record current findings as the new baseline "
                             "and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")


def run_cli(args: argparse.Namespace) -> int:
    """Execute a parsed ``repro check`` invocation."""
    if args.list_rules:
        for rule, description in sorted(ALL_RULES.items()):
            print(f"{rule}  {description}")
        return 0
    baseline = None
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: cannot load baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
    only: List[str] = []
    for chunk in args.only or []:
        only.extend(rule.strip() for rule in chunk.split(",")
                    if rule.strip())
    try:
        report = run_check(args.paths, analyzers=args.analyzers,
                           baseline=baseline, only=only or None,
                           include_suppressed=args.include_suppressed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        Baseline.from_findings(report.findings
                               + report.baselined).save(args.write_baseline)
        print(f"wrote baseline with "
              f"{len(report.findings) + len(report.baselined)} suppressions "
              f"to {args.write_baseline}")
        return 0
    renderers = {"json": report.render_json, "sarif": report.render_sarif,
                 "text": report.render_text}
    sys.stdout.write(renderers[args.format]())
    for path, renderer in ((args.out, report.render_json),
                           (args.sarif_out, report.render_sarif)):
        if not path:
            continue
        try:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(renderer())
        except OSError as exc:
            print(f"error: cannot write report to {path}: {exc}",
                  file=sys.stderr)
            return 2
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.check``)."""
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="Determinism & architecture static analysis for the "
                    "MEC-CDN reproduction")
    add_check_arguments(parser)
    return run_cli(parser.parse_args(argv))
