"""ARCH rules: the import-layering contract checker.

The architecture is a DAG of packages; refactors are safe only while the
edges stay within it.  The contract below is the machine-checked source
of truth (``docs/DETERMINISM.md`` renders it for humans):

* ``errors`` sits at the bottom and imports nothing first-party;
* ``dnswire`` (the wire protocol) depends on the stdlib and ``errors``
  only — it must stay usable without the simulator;
* ``netsim`` (the scheduler) never imports the protocol layers above it;
* ``telemetry`` is leaf-observed: core layers may *call into* it, but it
  may never import the scheduler or any simulation layer — the
  zero-perturbation guarantee (replay digests identical with telemetry
  on or off) survives only while telemetry cannot reach sim state;
* everything else layers strictly upward, ``cli`` on top.

========  ==============================================================
ARCH001   import edge not allowed by the layer contract
ARCH002   ``telemetry`` importing a simulation layer (perturbation risk)
ARCH003   non-stdlib import inside ``dnswire``
ARCH004   first-party package with no declared contract
ARCH005   dependency cycle between packages
========  ==============================================================
"""

from __future__ import annotations

import ast
import sys
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.check.findings import Finding
from repro.check.sources import SourceModule, SourceTree

ANALYZER_NAME = "layering"

RULES: Dict[str, str] = {
    "ARCH001": "import edge violates the layer contract",
    "ARCH002": "telemetry imports a simulation layer (zero-perturbation breach)",
    "ARCH003": "dnswire must depend on the stdlib only",
    "ARCH004": "first-party package missing a layer contract",
    "ARCH005": "dependency cycle between packages",
}

#: The layers telemetry must never import: everything that can reach the
#: scheduler or mutate simulation state.
SIM_LAYERS = frozenset({
    "netsim", "faults", "resolver", "cdn", "mobile", "mec", "core",
    "control", "measure", "runtime", "workload", "experiments",
    "profile", "cli",
})

_EVERYTHING = frozenset({
    "errors", "dnswire", "netsim", "telemetry", "faults", "resolver",
    "cdn", "mobile", "mec", "core", "control", "measure", "runtime",
    "workload", "experiments", "profile", "check", "cli",
})

#: layer -> layers it may import.  Top-level modules (``cli``,
#: ``errors``, ``__init__``, ``__main__``) are layers of their own.
DEFAULT_CONTRACT: Dict[str, FrozenSet[str]] = {
    "errors": frozenset(),
    "dnswire": frozenset({"errors"}),
    "netsim": frozenset({"errors"}),
    "telemetry": frozenset({"errors"}),
    "faults": frozenset({"errors", "netsim"}),
    "resolver": frozenset({"errors", "dnswire", "netsim", "telemetry"}),
    "cdn": frozenset({"errors", "dnswire", "netsim", "resolver",
                      "telemetry"}),
    "mobile": frozenset({"errors", "netsim", "resolver", "telemetry"}),
    "mec": frozenset({"errors", "dnswire", "netsim", "resolver", "mobile",
                      "telemetry"}),
    "core": frozenset({"errors", "dnswire", "netsim", "telemetry",
                       "resolver", "cdn", "mobile", "mec"}),
    # The dynamic control plane assembles over built testbeds: it may
    # reach every simulation layer below it, but experiments/measure
    # drive it, never the reverse.
    "control": frozenset({"errors", "dnswire", "netsim", "telemetry",
                          "resolver", "cdn", "mobile", "mec", "core"}),
    "measure": frozenset({"errors", "dnswire", "netsim", "telemetry",
                          "resolver", "core"}),
    # Population-scale workload synthesis: mesoscale models calibrated
    # from full-fidelity testbeds, so it sits above core/measure; the
    # runtime dependency is derive_seed only (sub-seeded UE streams).
    "workload": frozenset({"errors", "dnswire", "netsim", "telemetry",
                           "resolver", "cdn", "mobile", "mec", "core",
                           "measure", "runtime"}),
    # The execution runtime is generic machinery: it may see telemetry
    # (per-trial capture) but never the experiments that plug into it --
    # workers receive pickled Experiment instances, not module imports.
    "runtime": frozenset({"errors", "telemetry"}),
    "experiments": _EVERYTHING - frozenset({"cli", "check", "profile"}),
    # Analysis/profiling over recorded telemetry: a leaf consumer that
    # only the CLI imports.  It reads spans and drives experiments via
    # the runtime; no simulation layer may import it back.
    "profile": frozenset({"errors", "telemetry", "netsim", "runtime",
                          "experiments"}),
    "check": frozenset({"errors", "dnswire"}),
    "cli": _EVERYTHING,
    "__init__": _EVERYTHING,
    "__main__": _EVERYTHING,
}

#: Minimal stdlib fallback for interpreters without
#: ``sys.stdlib_module_names`` (< 3.10); covers what dnswire may use.
_STDLIB_FALLBACK = frozenset({
    "__future__", "abc", "array", "base64", "binascii", "collections",
    "contextlib", "copy", "dataclasses", "enum", "functools", "hashlib",
    "io", "ipaddress", "itertools", "json", "math", "operator", "os",
    "re", "string", "struct", "sys", "textwrap", "types", "typing",
    "warnings",
})

STDLIB_MODULES = frozenset(
    getattr(sys, "stdlib_module_names", _STDLIB_FALLBACK))


def _module_layer(module: str, root: str) -> Optional[str]:
    """The layer of dotted ``module``, or None if outside ``root``.

    ``repro.cdn.geo`` -> ``cdn``; the top-level ``repro.cli`` -> ``cli``;
    ``repro`` itself -> ``__init__``.
    """
    if module == root:
        return "__init__"
    prefix = root + "."
    if not module.startswith(prefix):
        return None
    return module[len(prefix):].split(".")[0]


def _imports_of(module: SourceModule) -> List[Tuple[str, int]]:
    """Every ``(imported dotted name, line)`` in ``module``, incl. lazy ones."""
    found: List[Tuple[str, int]] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                found.append((alias.name, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative: resolve against this module
                package = module.module.rsplit(".", node.level)[0] \
                    if module.module.count(".") >= node.level else ""
                base = f"{package}.{node.module}" if node.module else package
            else:
                base = node.module or ""
            if not base:
                continue
            found.append((base, node.lineno))
            # ``from repro import telemetry`` names subpackages, not
            # attributes; record each name so the edge is attributed to
            # the real layer.
            for alias in node.names:
                if alias.name != "*":
                    found.append((f"{base}.{alias.name}", node.lineno))
    return found


def analyze(tree: SourceTree, root: str = "repro",
            contract: Optional[Dict[str, FrozenSet[str]]] = None,
            stdlib_only: FrozenSet[str] = frozenset({"dnswire"}),
            stdlib_extra: FrozenSet[str] = frozenset()) -> List[Finding]:
    """Check every import edge in ``tree`` against the layer contract.

    ``root`` is the first-party top package; ``contract`` overrides
    :data:`DEFAULT_CONTRACT` (tests exercise violations with synthetic
    contracts).  ``stdlib_only`` names layers barred from third-party
    imports; ``stdlib_extra`` whitelists extra module roots for them.
    """
    contract = DEFAULT_CONTRACT if contract is None else contract
    findings: List[Finding] = []
    #: importer layer -> {imported layer}: the observed package graph.
    graph: Dict[str, Set[str]] = {}
    #: (importer, imported) -> first observed (module, line) for cycles.
    edge_where: Dict[Tuple[str, str], Tuple[SourceModule, int]] = {}

    for module in tree:
        layer = _module_layer(module.module, root)
        if layer is None:
            continue
        if layer not in contract:
            finding = tree.finding(
                module, "ARCH004", 1,
                f"package '{layer}' has no layer contract; declare its "
                f"allowed dependencies in repro.check.layering")
            if finding is not None:
                findings.append(finding)
            continue
        allowed = contract[layer]
        #: (line, target layer) already reported for this module — a
        #: ``from repro.x import y`` records both ``repro.x`` and
        #: ``repro.x.y``, which resolve to the same edge.
        flagged: Set[Tuple[int, str]] = set()
        for imported, line in _imports_of(module):
            target = _module_layer(imported, root)
            if target == "__init__" and layer != "__init__":
                # ``from repro import x`` also records ``repro.x``; the
                # bare facade import carries no layering information.
                continue
            if target is None:
                top = imported.split(".")[0]
                if (layer in stdlib_only and top != root
                        and top not in STDLIB_MODULES
                        and top not in stdlib_extra):
                    finding = tree.finding(
                        module, "ARCH003", line,
                        f"'{layer}' must be stdlib-only but imports "
                        f"third-party '{imported}'")
                    if finding is not None:
                        findings.append(finding)
                continue
            if target != layer:
                graph.setdefault(layer, set()).add(target)
                edge_where.setdefault((layer, target), (module, line))
            if target == layer or target in allowed:
                continue
            if (line, target) in flagged:
                continue
            flagged.add((line, target))
            if layer == "telemetry" and target in SIM_LAYERS:
                rule, reason = "ARCH002", (
                    f"telemetry must stay leaf-observed but imports "
                    f"'{imported}'; importing sim layers voids the "
                    f"zero-perturbation guarantee")
            else:
                rule, reason = "ARCH001", (
                    f"layer '{layer}' may not import '{target}' "
                    f"(allowed: {', '.join(sorted(allowed)) or 'nothing'})")
            finding = tree.finding(module, rule, line, reason)
            if finding is not None:
                findings.append(finding)

    findings.extend(_find_cycles(graph, edge_where, tree))
    return findings


def _find_cycles(graph: Dict[str, Set[str]],
                 edge_where: Dict[Tuple[str, str], Tuple[SourceModule, int]],
                 tree: SourceTree) -> List[Finding]:
    """ARCH005 findings, one per distinct package-level cycle."""
    findings: List[Finding] = []
    visiting: Set[str] = set()
    done: Set[str] = set()
    stack: List[str] = []
    reported: Set[FrozenSet[str]] = set()

    def visit(node: str) -> None:
        visiting.add(node)
        stack.append(node)
        for target in sorted(graph.get(node, ())):
            if target in visiting:
                cycle = stack[stack.index(target):] + [target]
                key = frozenset(cycle)
                if key not in reported:
                    reported.add(key)
                    module, line = edge_where[(node, target)]
                    finding = tree.finding(
                        module, "ARCH005", line,
                        "package cycle: " + " -> ".join(cycle))
                    if finding is not None:
                        findings.append(finding)
            elif target not in done:
                visit(target)
        stack.pop()
        visiting.discard(node)
        done.add(node)

    for node in sorted(graph):
        if node not in done:
            visit(node)
    return findings
