"""DET rules: the determinism linter.

Simulation code must derive every observable value from the simulator
clock and explicitly threaded ``random.Random`` streams (see
:mod:`repro.netsim.rand`).  These AST rules forbid the ways that
discipline silently erodes:

========  ==============================================================
DET001    wall-clock read (``time.time``, ``datetime.now``, …)
DET002    OS entropy source (``os.urandom``, ``uuid.uuid4``,
          ``secrets.*``, ``random.SystemRandom``)
DET003    module-level RNG draw (``random.random()``, ``random.choice``,
          ``numpy.random.*`` — shared hidden global state)
DET004    ``random.Random()`` constructed without a seed
DET005    hidden default RNG (``rng or random.Random(0)``, a
          ``random.Random(...)`` parameter default, or the equivalent
          conditional) — instances silently share one stream and bypass
          the named-stream discipline
DET006    iteration order of a ``set``/``frozenset`` escaping into
          behaviour (``for x in {…}``, ``list(set(…))``, …) — hash
          ordering differs across processes
========  ==============================================================

A violation is suppressed inline with ``# repro: allow[DETnnn]`` on the
flagged line, or grandfathered via the baseline file.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.check.findings import Finding
from repro.check.sources import SourceModule, SourceTree

ANALYZER_NAME = "determinism"

RULES: Dict[str, str] = {
    "DET001": "wall-clock read in simulation code",
    "DET002": "OS entropy source in simulation code",
    "DET003": "module-level RNG draw (hidden shared state)",
    "DET004": "unseeded random.Random()",
    "DET005": "hidden default RNG bypassing the named-stream discipline",
    "DET006": "set iteration order escaping into behaviour",
}

#: Fully-qualified callables that read the wall clock.
_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.localtime", "time.gmtime", "time.ctime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: Fully-qualified callables that draw OS entropy.
_ENTROPY = {
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
    "random.SystemRandom", "ssl.RAND_bytes",
}

#: Prefixes whose every attribute draws OS entropy.
_ENTROPY_PREFIXES = ("secrets.",)

#: Prefixes whose calls draw from a hidden module-global RNG.  The two
#: exceptions are the stream *constructors*, which are fine when seeded.
_MODULE_RNG_PREFIXES = ("random.", "numpy.random.")
_MODULE_RNG_EXCEPTIONS = {"random.Random", "random.SystemRandom"}

_SET_BUILTINS = {"set", "frozenset"}
#: Builtins that materialise their argument in iteration order.
_ORDER_ESCAPES = {"list", "tuple", "iter", "enumerate"}


def _collect_imports(tree: ast.Module) -> Dict[str, str]:
    """Map local alias -> fully-qualified dotted name for every import."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                full = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = full
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


class _Resolver:
    """Resolves expressions to dotted import paths, best effort."""

    def __init__(self, aliases: Dict[str, str]) -> None:
        self._aliases = aliases

    def dotted(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self._aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.dotted(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None


def _is_setish(node: ast.AST) -> bool:
    """Whether ``node`` evaluates to a literal/constructed set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _SET_BUILTINS)


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, module: SourceModule, tree: SourceTree) -> None:
        self._module = module
        self._tree = tree
        self._resolver = _Resolver(_collect_imports(module.tree))
        self.findings: List[Finding] = []

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        finding = self._tree.finding(self._module, rule, line, message)
        if finding is not None:
            self.findings.append(finding)

    def _is_random_ctor(self, node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and self._resolver.dotted(node.func) == "random.Random")

    # -- forbidden calls ----------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        path = self._resolver.dotted(node.func)
        if path is not None:
            if path in _WALL_CLOCK:
                self._emit("DET001", node,
                           f"wall-clock read {path}(); use the simulator "
                           f"clock (sim.now)")
            elif path in _ENTROPY or path.startswith(_ENTROPY_PREFIXES):
                self._emit("DET002", node,
                           f"entropy source {path}(); derive values from a "
                           f"named RandomStreams stream")
            elif (path.startswith(_MODULE_RNG_PREFIXES)
                  and path not in _MODULE_RNG_EXCEPTIONS):
                self._emit("DET003", node,
                           f"module-level RNG call {path}(); thread an "
                           f"explicit random.Random stream instead")
            elif path == "random.Random" and not node.args and not node.keywords:
                self._emit("DET004", node,
                           "random.Random() without a seed; use "
                           "RandomStreams.stream(name) or pass a seed")
        if (isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_ESCAPES
                and node.args and _is_setish(node.args[0])):
            self._emit("DET006", node,
                       f"{node.func.id}() materialises a set in hash order; "
                       f"wrap it in sorted(...)")
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and node.args and _is_setish(node.args[0])):
            self._emit("DET006", node,
                       "str.join over a set joins in hash order; wrap the "
                       "set in sorted(...)")
        self.generic_visit(node)

    # -- hidden default RNGs -------------------------------------------------

    def visit_BoolOp(self, node: ast.BoolOp) -> None:
        if isinstance(node.op, ast.Or):
            for value in node.values[1:]:
                if self._is_random_ctor(value):
                    self._emit("DET005", node,
                               "`x or random.Random(...)` silently shares a "
                               "hidden default RNG; require an explicit "
                               "stream")
        self.generic_visit(node)

    def visit_IfExp(self, node: ast.IfExp) -> None:
        for branch in (node.body, node.orelse):
            if self._is_random_ctor(branch):
                self._emit("DET005", node,
                           "conditional fallback to random.Random(...) "
                           "shares a hidden default RNG; require an "
                           "explicit stream")
        self.generic_visit(node)

    def _check_defaults(self, args: ast.arguments) -> None:
        for default in list(args.defaults) + [d for d in args.kw_defaults
                                              if d is not None]:
            if self._is_random_ctor(default):
                self._emit("DET005", default,
                           "random.Random(...) as a parameter default is a "
                           "shared mutable RNG; require an explicit stream")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node.args)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node.args)
        self.generic_visit(node)

    # -- set iteration ------------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if _is_setish(node.iter):
            self._emit("DET006", node,
                       "iterating a set visits elements in hash order; "
                       "iterate sorted(...) instead")
        self.generic_visit(node)

    def _check_comprehension(self, node: ast.AST) -> None:
        for generator in getattr(node, "generators", []):
            if _is_setish(generator.iter):
                self._emit("DET006", node,
                           "comprehension over a set runs in hash order; "
                           "iterate sorted(...) instead")

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._check_comprehension(node)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node)
        self.generic_visit(node)


def analyze(tree: SourceTree) -> List[Finding]:
    """Run every DET rule over every module in ``tree``."""
    findings: List[Finding] = []
    for module in tree:
        visitor = _DeterminismVisitor(module, tree)
        visitor.visit(module.tree)
        findings.extend(visitor.findings)
    return findings
