"""Source-tree loading shared by all analyzers.

Walks the target paths once, parses every Python file into a
:class:`SourceModule` (path, dotted module name, AST, source lines, and
inline ``# repro: allow[RULE]`` suppressions), and collects ``*.zone``
files for the conformance pass.  Analyzers operate on the resulting
:class:`SourceTree` so a ``repro check`` run parses each file exactly
once.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.check.findings import Finding

#: Inline suppression: ``# repro: allow[DET004]`` or ``allow[DET004,ARCH001]``
#: on the flagged line, or on a comment-only line directly above it (for
#: justifications too long to share the line with code).
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9_,\s]+)\]")

#: Rule id for files the analyzers cannot parse at all.
RULE_PARSE_ERROR = "GEN001"


class SourceModule:
    """One parsed Python file."""

    def __init__(self, path: str, rel: str, module: str, text: str,
                 tree: ast.Module) -> None:
        self.path = path
        #: Path relative to the invocation root, POSIX-style (stable in
        #: findings and baselines across machines).
        self.rel = rel.replace(os.sep, "/")
        #: Dotted module name, e.g. ``repro.cdn.geo`` (best effort).
        self.module = module
        self.text = text
        self.lines = text.splitlines()
        self.tree = tree
        self._allowed: Dict[int, Set[str]] = {}
        for number, line in enumerate(self.lines, 1):
            match = _ALLOW_RE.search(line)
            if match:
                rules = {token.strip() for token in match.group(1).split(",")
                         if token.strip()}
                # A comment-only allow covers the next line of code.
                target = (number + 1 if line.strip().startswith("#")
                          else number)
                self._allowed.setdefault(target, set()).update(rules)

    def is_suppressed(self, line: int, rule: str) -> bool:
        """Whether ``rule`` is inline-allowed on ``line``."""
        return rule in self._allowed.get(line, ())

    def __repr__(self) -> str:
        return f"SourceModule({self.module or self.rel})"


class SourceTree:
    """Every Python module and zone file under the target paths."""

    def __init__(self) -> None:
        self.modules: List[SourceModule] = []
        #: ``(abs path, rel path)`` of each ``*.zone`` data file found.
        self.zone_files: List[Tuple[str, str]] = []
        #: Files that failed to parse (reported once, as GEN001).
        self.errors: List[Finding] = []
        #: When true, inline ``# repro: allow[...]`` comments are ignored
        #: and suppressed findings are reported too (inventory runs).
        self.include_suppressed = False

    def finding(self, module: SourceModule, rule: str, line: int,
                message: str, col: int = 1) -> Optional[Finding]:
        """A :class:`Finding` unless inline-suppressed at its location."""
        if not self.include_suppressed and module.is_suppressed(line, rule):
            return None
        return Finding(rule, module.rel, line, message, col=col)

    def __iter__(self) -> Iterator[SourceModule]:
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)


def module_name_for(path: str) -> str:
    """The dotted module name of ``path``, found via ``__init__.py`` walk.

    Climbs parent directories for as long as they are packages; a file
    outside any package gets its bare stem (fixture trees in tests rely
    on this resolving e.g. ``fakerepo/repro/netsim/engine.py`` to
    ``repro.netsim.engine``).
    """
    directory, filename = os.path.split(os.path.abspath(path))
    stem = os.path.splitext(filename)[0]
    parts = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.insert(0, package)
    return ".".join(parts)


def _iter_files(root: str) -> Iterator[str]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(name for name in dirnames
                             if name != "__pycache__"
                             and not name.startswith("."))
        for filename in sorted(filenames):
            if filename.endswith((".py", ".zone")):
                yield os.path.join(dirpath, filename)


def load_tree(paths: List[str], relative_to: Optional[str] = None) -> SourceTree:
    """Parse every ``*.py``/``*.zone`` file under ``paths`` once.

    ``relative_to`` (default: the current directory) anchors the
    relative paths used in findings.
    """
    base = os.path.abspath(relative_to or os.curdir)
    tree = SourceTree()
    seen: Set[str] = set()
    for target in paths:
        target = os.path.abspath(target)
        files = [target] if os.path.isfile(target) else _iter_files(target)
        for path in files:
            if path in seen:
                continue
            seen.add(path)
            rel = os.path.relpath(path, base)
            if rel.startswith(".."):
                rel = path  # outside the root: keep it absolute but stable
            if path.endswith(".zone"):
                tree.zone_files.append((path, rel.replace(os.sep, "/")))
                continue
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            try:
                parsed = ast.parse(text, filename=path)
            except SyntaxError as exc:
                tree.errors.append(Finding(
                    RULE_PARSE_ERROR, rel.replace(os.sep, "/"),
                    exc.lineno or 1, f"syntax error: {exc.msg}"))
                continue
            tree.modules.append(SourceModule(
                path, rel, module_name_for(path), text, parsed))
    return tree
