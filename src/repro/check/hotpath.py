"""HOT rules: the hot-path performance lint.

``BENCH_runtime.json`` says the serial bottleneck is the per-event
engine and per-hop wire encode/decode (ROADMAP item 2).  The expensive
idioms are mechanical — re-encoding a message that never changes inside
a retry loop, allocating a closure per scheduled event, scanning a list
inside the dispatch loop — so they are lintable long before the perf
overhaul lands.  Findings double as the overhaul's worklist: the
committed ``HOT_INVENTORY.json`` is generated from this pass (run with
``--only HOT001,HOT002,HOT003 --include-suppressed``).

========  ==============================================================
HOT001    loop-invariant dnswire encode/decode inside a loop — the same
          bytes are recomputed every iteration (any module).  Calls to
          the memoized encode entry point (``cached_wire``) are cache
          hits, not re-encodes, and are never flagged
HOT002    per-event allocation on the scheduling path: a lambda/nested
          function built inside a loop, or a lambda handed to
          ``call_soon``/``call_at``/``call_after``/``add_done_callback``
          (hot modules only)
HOT003    O(n) list scan inside a loop: membership test against a
          list, ``.index``/``.remove``/``.count`` on a list-typed name
          (hot modules only)
========  ==============================================================

These rules flag *cost*, not *incorrectness* — a finding is either
fixed or explicitly deferred to the ROADMAP item 2 overhaul with an
inline ``# repro: allow[HOTnnn]`` rationale.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.check.callgraph import ImportResolver, stored_names
from repro.check.findings import Finding
from repro.check.sources import SourceModule, SourceTree

ANALYZER_NAME = "hotpath"

RULES: Dict[str, str] = {
    "HOT001": "loop-invariant dnswire encode/decode recomputed per "
              "iteration",
    "HOT002": "per-event allocation on the scheduling path",
    "HOT003": "O(n) list scan inside a loop",
}

#: Modules whose loops are treated as hot paths for HOT002/HOT003: the
#: event engine and wire layer (the measured bottleneck) plus the
#: layers that sit on the per-query critical path.
DEFAULT_HOT_PREFIXES: Tuple[str, ...] = (
    "repro.netsim", "repro.dnswire", "repro.resolver", "repro.mec",
    "repro.measure", "repro.workload",
)

#: Wire-layer entry points whose output depends only on their inputs.
_WIRE_METHODS = frozenset({"to_wire", "from_wire"})
_WIRE_FUNCTIONS = frozenset({"make_query", "make_response"})

#: dnswire entry points that memoize on message content
#: (:func:`repro.dnswire.message.cached_wire`).  A loop-invariant call
#: is a dict hit after the first iteration — exactly the idiom HOT001
#: pushes call sites toward — so it is recognised and *not* flagged.
_MEMOIZED_WIRE_FUNCTIONS = frozenset({"cached_wire"})

#: Per-event scheduling entry points; a lambda argument is one
#: allocation per scheduled event.
_SCHEDULE_METHODS = frozenset({
    "call_soon", "call_at", "call_after", "add_done_callback",
})

_LIST_SCANS = frozenset({"index", "remove", "count"})

#: Names conventionally bound to in-place wire cursors; a call reading
#: one is stateful even though the name is never rebound.
_CURSOR_NAMES = frozenset({"reader", "writer", "buf", "cursor"})

LoopNode = Union[ast.For, ast.AsyncFor, ast.While]


def _is_hot(module: SourceModule,
            prefixes: Sequence[str]) -> bool:
    return any(module.module == prefix
               or module.module.startswith(prefix + ".")
               for prefix in prefixes)


def _list_typed_names(root: ast.AST) -> Set[str]:
    """Names assigned from a list construct anywhere under ``root``."""
    names: Set[str] = set()
    for stmt in ast.walk(root):
        if isinstance(stmt, ast.Assign):
            value = stmt.value
            is_list = isinstance(value, (ast.List, ast.ListComp)) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in {"list", "sorted"})
            if is_list:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


class _ModuleHot:
    """All HOT rules over one module."""

    def __init__(self, module: SourceModule, tree: SourceTree,
                 hot: bool) -> None:
        self.module = module
        self.tree = tree
        self.hot = hot
        self.resolver = ImportResolver(module.tree)
        self.findings: List[Finding] = []

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        finding = self.tree.finding(
            self.module, rule, getattr(node, "lineno", 1), message,
            col=getattr(node, "col_offset", 0) + 1)
        if finding is not None:
            self.findings.append(finding)

    def check(self) -> None:
        list_names = _list_typed_names(self.module.tree)
        for node in ast.walk(self.module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                self._check_loop(node, list_names)
            elif self.hot and isinstance(node, ast.Call):
                self._check_schedule_alloc(node)

    # -- HOT002: lambda handed to the scheduler ------------------------------

    def _check_schedule_alloc(self, node: ast.Call) -> None:
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr in _SCHEDULE_METHODS):
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Lambda):
                self._emit("HOT002", node,
                           f"lambda allocated per scheduled event in "
                           f"{node.func.attr}(...); bind the callback "
                           f"once or pass args through the scheduler")

    # -- loop-body rules -----------------------------------------------------

    def _check_loop(self, loop: LoopNode,
                    module_list_names: Set[str]) -> None:
        stored = stored_names(loop.body)
        if isinstance(loop, (ast.For, ast.AsyncFor)):
            # The loop target itself changes every iteration.
            for node in ast.walk(loop.target):
                if isinstance(node, ast.Name):
                    stored.add(node.id)
        for node in self._loop_body_nodes(loop):
            self._check_wire(node, stored)
            if not self.hot:
                continue
            if isinstance(node, (ast.Lambda, ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                kind = ("lambda" if isinstance(node, ast.Lambda)
                        else f"nested function '{node.name}'")
                self._emit("HOT002", node,
                           f"{kind} constructed inside a loop; one "
                           f"closure is allocated per iteration — hoist "
                           f"it or bind parameters explicitly")
            self._check_list_scan(node, module_list_names, loop)

    def _loop_body_nodes(self, loop: LoopNode) -> List[ast.AST]:
        """Every node in the loop body, except inner loops' bodies —
        those run their own :meth:`_check_loop` visit, so findings are
        attributed to the innermost loop's invariance set."""
        nodes: List[ast.AST] = []
        pending: List[ast.AST] = list(loop.body) + list(loop.orelse)
        while pending:
            node = pending.pop()
            nodes.append(node)
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                continue
            pending.extend(ast.iter_child_nodes(node))
        return nodes

    def _check_wire(self, node: ast.AST, stored: Set[str]) -> None:
        """HOT001: wire encode/decode whose inputs never change."""
        if not isinstance(node, ast.Call):
            return
        label: Optional[str] = None
        reads: List[ast.expr] = []
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _WIRE_METHODS:
            label = node.func.attr
            reads = [node.func.value] + list(node.args)
        elif isinstance(node.func, ast.Name) \
                and node.func.id in (_WIRE_FUNCTIONS
                                     | _MEMOIZED_WIRE_FUNCTIONS):
            dotted = self.resolver.dotted(node.func)
            if dotted is None or not dotted.startswith("repro.dnswire"):
                return
            if node.func.id in _MEMOIZED_WIRE_FUNCTIONS:
                return
            label = node.func.id
            reads = list(node.args) + [kw.value for kw in node.keywords]
        if label is None:
            return
        for expr in reads:
            if not self._invariant(expr, stored):
                return
        hint = ("hoist it above the loop" if label == "from_wire"
                else "hoist it above the loop or encode via "
                     "repro.dnswire.cached_wire (memoized)")
        self._emit("HOT001", node,
                   f"loop-invariant {label}(...) re-encodes the same "
                   f"bytes every iteration; {hint}")

    def _invariant(self, expr: ast.expr, stored: Set[str]) -> bool:
        """Whether ``expr`` reads only names unassigned in the loop.

        Wire cursors (``reader``/``writer``) advance in place when
        encoded into/decoded from, so an unassigned cursor name is still
        not invariant.
        """
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name) and (
                    sub.id in stored or sub.id in _CURSOR_NAMES):
                return False
            if isinstance(sub, ast.Call):
                # A nested call may be impure; only attribute loads and
                # names are assumed stable.
                return False
        return True

    def _check_list_scan(self, node: ast.AST, module_list_names: Set[str],
                         loop: LoopNode) -> None:
        """HOT003: linear scans repeated every iteration."""
        local_list_names = module_list_names | _list_typed_names(loop)
        if isinstance(node, ast.Compare) \
                and any(isinstance(op, (ast.In, ast.NotIn))
                        for op in node.ops):
            target = node.comparators[-1]
            if isinstance(target, ast.List) or (
                    isinstance(target, ast.Name)
                    and target.id in local_list_names):
                what = (target.id if isinstance(target, ast.Name)
                        else "a list literal")
                self._emit("HOT003", node,
                           f"membership test against list '{what}' "
                           f"inside a loop is O(n) per iteration; use a "
                           f"set/dict keyed lookup")
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _LIST_SCANS \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id in local_list_names:
            self._emit("HOT003", node,
                       f"list.{node.func.attr}(...) on "
                       f"'{node.func.value.id}' inside a loop is O(n) "
                       f"per iteration; index it once or keep a "
                       f"position map")


def analyze(tree: SourceTree,
            hot_prefixes: Sequence[str] = DEFAULT_HOT_PREFIXES
            ) -> List[Finding]:
    """Run every HOT rule over every module in ``tree``."""
    findings: List[Finding] = []
    for module in tree:
        checker = _ModuleHot(module, tree, _is_hot(module, hot_prefixes))
        checker.check()
        findings.extend(checker.findings)
    return list(dict.fromkeys(findings))
