"""Static analysis for the repo's determinism and architecture invariants.

The simulator's headline guarantee — byte-identical deterministic replay,
with telemetry on or off — is enforced at runtime by digest assertions,
but those only fire long after a hazard is merged.  This package checks
the invariants *statically*, at review time, with three analyzers:

* :mod:`repro.check.determinism` — an AST linter that forbids wall-clock
  and entropy sources, module-level ``random`` draws, unseeded or hidden
  default RNGs, and set-iteration order escaping into behaviour (``DET``
  rules);
* :mod:`repro.check.layering` — an import-contract checker that parses
  the dependency graph and enforces the architecture DAG: ``dnswire`` is
  stdlib-only, ``netsim`` never imports the protocol layers, and
  ``telemetry`` stays a leaf that observes without being imported *by*
  nothing / importing the scheduler (``ARCH`` rules);
* :mod:`repro.check.conformance` — static validation of DNS artifacts:
  zone files and embedded master-file text parse, TTLs are in range,
  names obey RFC 1035 syntax, CNAMEs do not coexist with other data, and
  every record survives a compressed wire round-trip (``ZONE`` rules).

Run it as ``repro check`` (a subcommand of :mod:`repro.cli`) or as
``python -m repro.check``; see :mod:`repro.check.runner` for the entry
point and ``docs/DETERMINISM.md`` for the rule catalogue.

The package deliberately imports nothing heavier than
:mod:`repro.dnswire`, so the CI job can run it without the simulator's
third-party dependencies.
"""

from repro.check.findings import Baseline, Finding
from repro.check.runner import Report, run_check

__all__ = ["Baseline", "Finding", "Report", "run_check"]
