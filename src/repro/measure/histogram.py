"""Streaming latency aggregation for population-scale runs.

:class:`~repro.measure.stats.SummaryStats` retains every sample, which
is exactly right for a 40-query Figure 5 bar and exactly wrong for a
10^6-query population sweep — per-query record lists are the thing the
workload engine must never build.  :class:`LatencyHistogram` is the
replacement for large runs: fixed log-spaced bins (so microsecond noise
and 100-second tails share one instrument) plus **exact** count, sum,
minimum, and maximum.  Only quantiles are approximate, bounded by the
bin width (``BINS_PER_DECADE`` = 32 keeps adjacent Figure 5 bars in
distinct bins).

Histograms are mergeable: two histograms with the same binning combine
bin-by-bin, and merging is associative and commutative over the exact
fields, so shard aggregates folded in spec order reproduce the serial
run byte for byte — the same contract the experiment runtime already
enforces for rendered artifacts.
"""

from __future__ import annotations

import math
from typing import Dict, List, NamedTuple, Tuple

#: Resolution of the log-spaced grid.  32 bins/decade = ~7.5% relative
#: bin width, finer than any latency claim the experiments assert.
BINS_PER_DECADE = 32

#: Lower edge of the first finite bin (ms).  Values at or below this
#: land in bin 0; values past the top land in the last bin.  The exact
#: min/max fields keep the true extremes regardless.
LOW_MS = 0.05

#: Decades covered above ``LOW_MS``: 0.05 ms .. 5,000,000 ms.
DECADES = 8


class HistogramSummary(NamedTuple):
    """The digest-stable scalar view of one histogram."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float
    p999: float

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean:.1f}ms "
                f"[{self.minimum:.1f}..{self.maximum:.1f}] "
                f"p50={self.p50:.1f} p99={self.p99:.1f} "
                f"p99.9={self.p999:.1f}")


class LatencyHistogram:
    """Fixed log-spaced bins with exact count/sum/min/max.

    ``add`` is O(1) and allocation-free; ``merge`` requires identical
    binning (always true between instances of this class).  Instances
    pickle cleanly, so they travel as trial payloads through the
    sharded executor.
    """

    __slots__ = ("counts", "count", "total", "minimum", "maximum")

    #: Number of finite bins.
    size = BINS_PER_DECADE * DECADES

    def __init__(self) -> None:
        self.counts: List[int] = [0] * self.size
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    # -- pickling (slots classes need explicit state) ------------------------

    def __getstate__(self) -> Tuple[List[int], int, float, float, float]:
        return (self.counts, self.count, self.total,
                self.minimum, self.maximum)

    def __setstate__(
            self, state: Tuple[List[int], int, float, float, float]) -> None:
        (self.counts, self.count, self.total,
         self.minimum, self.maximum) = state

    # -- ingestion -----------------------------------------------------------

    def add(self, value_ms: float) -> None:
        """Record one latency sample (milliseconds)."""
        self.counts[self._bin_index(value_ms)] += 1
        self.count += 1
        self.total += value_ms
        if value_ms < self.minimum:
            self.minimum = value_ms
        if value_ms > self.maximum:
            self.maximum = value_ms

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other`` into this histogram (same binning, exact)."""
        if len(other.counts) != len(self.counts):
            raise ValueError(
                f"cannot merge histograms with different binning "
                f"({len(other.counts)} vs {len(self.counts)} bins)")
        for index, bucket in enumerate(other.counts):
            if bucket:
                self.counts[index] += bucket
        self.count += other.count
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum

    @classmethod
    def _bin_index(cls, value_ms: float) -> int:
        if value_ms <= LOW_MS:
            return 0
        index = int(math.log10(value_ms / LOW_MS) * BINS_PER_DECADE)
        return index if index < cls.size else cls.size - 1

    @staticmethod
    def _bin_upper_edge(index: int) -> float:
        """Upper edge of bin ``index`` in ms."""
        return LOW_MS * 10.0 ** ((index + 1) / BINS_PER_DECADE)

    # -- reading -------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile (``q`` in [0, 1]), clamped to [min, max].

        Returns the geometric midpoint of the covering bin — an error
        bounded by half a bin width — except at the extremes, where the
        exact tracked minimum/maximum are authoritative.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if not self.count:
            return 0.0
        if q <= 0.0:
            return self.minimum
        if q >= 1.0:
            return self.maximum
        target = q * self.count
        seen = 0
        for index, bucket in enumerate(self.counts):
            seen += bucket
            if seen >= target:
                lower = LOW_MS * 10.0 ** (index / BINS_PER_DECADE)
                upper = self._bin_upper_edge(index)
                mid = math.sqrt(lower * upper)
                return min(max(mid, self.minimum), self.maximum)
        return self.maximum

    def summary(self) -> HistogramSummary:
        """The scalar summary (safe on an empty histogram)."""
        if not self.count:
            return HistogramSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return HistogramSummary(
            count=self.count,
            mean=self.mean,
            minimum=self.minimum,
            maximum=self.maximum,
            p50=self.quantile(0.50),
            p90=self.quantile(0.90),
            p99=self.quantile(0.99),
            p999=self.quantile(0.999),
        )

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready document (sparse bins, exact fields verbatim)."""
        return {
            "bins_per_decade": BINS_PER_DECADE,
            "low_ms": LOW_MS,
            "count": self.count,
            "sum_ms": self.total,
            "min_ms": self.minimum if self.count else None,
            "max_ms": self.maximum if self.count else None,
            "nonzero_bins": {str(index): bucket
                             for index, bucket in enumerate(self.counts)
                             if bucket},
        }

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        if not self.count:
            return "LatencyHistogram(empty)"
        return (f"LatencyHistogram(n={self.count}, mean={self.mean:.2f}ms, "
                f"[{self.minimum:.2f}..{self.maximum:.2f}])")
