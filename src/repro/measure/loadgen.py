"""Open-loop DNS load generation.

A classic capacity-measurement tool: queries are injected at a fixed
offered rate regardless of responses (open loop, so queueing delay is
observed rather than masked by client back-pressure), from a pool of
emulated clients.  Results report goodput, loss, and the latency
distribution — the inputs for a hockey-stick capacity curve.
"""

from __future__ import annotations

from typing import Generator, List, NamedTuple

from repro.dnswire.message import Message, cached_wire, make_query
from repro.dnswire.name import Name
from repro.errors import WireFormatError
from repro.measure.stats import percentile
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.packet import Endpoint
from repro.netsim.socket import UdpSocket


class LoadResult(NamedTuple):
    """One load-generation run at a fixed offered rate."""

    offered_qps: float
    duration_ms: float
    sent: int
    answered: int
    mean_latency_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float

    @property
    def goodput_qps(self) -> float:
        return self.answered * 1000.0 / self.duration_ms

    @property
    def loss_rate(self) -> float:
        return 1.0 - (self.answered / self.sent) if self.sent else 0.0

    def __str__(self) -> str:
        return (f"offered={self.offered_qps:.0f}qps "
                f"goodput={self.goodput_qps:.0f}qps "
                f"loss={100 * self.loss_rate:.1f}% "
                f"p50={self.p50_ms:.1f}ms p95={self.p95_ms:.1f}ms "
                f"p99={self.p99_ms:.1f}ms")


class LoadGenerator:
    """Fixed-rate query injection against one DNS server."""

    def __init__(self, network: Network, host: Host, server: Endpoint,
                 qname: Name, reply_timeout_ms: float = 2000.0) -> None:
        self.network = network
        self.host = host
        self.server = server
        self.qname = qname
        self.reply_timeout_ms = reply_timeout_ms

    def run(self, offered_qps: float, duration_ms: float) -> Generator:
        """Process: inject at ``offered_qps`` for ``duration_ms``.

        Returns a :class:`LoadResult`.  The run waits one reply timeout
        beyond the injection window so in-flight answers are counted.
        """
        if offered_qps <= 0 or duration_ms <= 0:
            raise ValueError("offered rate and duration must be positive")
        sim = self.network.sim
        gap_ms = 1000.0 / offered_qps
        latencies: List[float] = []
        pending = {"sent": 0}

        def one_query(msg_id: int) -> Generator:
            sock = UdpSocket(self.host)
            query = make_query(self.qname, msg_id=msg_id)
            started = sim.now
            try:
                reply = yield sock.request(cached_wire(query),
                                           self.server,
                                           self.reply_timeout_ms)
            except Exception:  # timeout or drop: counted as loss
                return
            finally:
                sock.close()
            try:
                view = reply.claim_view()
                response = view if isinstance(view, Message) \
                    else Message.from_wire(reply.payload)
            except WireFormatError:
                return
            if response.msg_id == msg_id:
                latencies.append(sim.now - started)
                tel = self.network.telemetry
                if tel is not None:
                    tel.metrics.histogram(
                        "repro_loadgen_latency_ms",
                        "answered load-generator query latency").observe(
                            sim.now - started)

        elapsed = 0.0
        msg_id = 0
        tel = self.network.telemetry
        while elapsed < duration_ms:
            msg_id = (msg_id + 1) & 0xFFFF or 1
            pending["sent"] += 1
            if tel is not None:
                tel.metrics.counter(
                    "repro_loadgen_sent_total",
                    "load-generator queries injected").inc()
            sim.spawn(one_query(msg_id))
            yield gap_ms
            elapsed += gap_ms
        yield self.reply_timeout_ms  # drain in-flight replies

        if latencies:
            mean = sum(latencies) / len(latencies)
            p50 = percentile(latencies, 50)
            p95 = percentile(latencies, 95)
            p99 = percentile(latencies, 99)
        else:
            mean = p50 = p95 = p99 = float("inf")
        return LoadResult(
            offered_qps=offered_qps, duration_ms=duration_ms,
            sent=pending["sent"], answered=len(latencies),
            mean_latency_ms=mean, p50_ms=p50, p95_ms=p95, p99_ms=p99)


def run_load(network: Network, host: Host, server: Endpoint, qname: Name,
             offered_qps: float, duration_ms: float,
             reply_timeout_ms: float = 2000.0) -> LoadResult:
    """Convenience wrapper: build, run, and resolve one load run."""
    generator = LoadGenerator(network, host, server, qname,
                              reply_timeout_ms=reply_timeout_ms)
    return network.sim.run_until_resolved(
        network.sim.spawn(generator.run(offered_qps, duration_ms)))
