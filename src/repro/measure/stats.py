"""Summary statistics with the paper's trimming convention.

Figure 2's caption: "Each bar is based on at least 12 tests, only
including the results from the 8th- to the 92th-percentile.  The maximum
and minimum are marked with error lines."  :func:`trimmed` implements
that window; :class:`SummaryStats` carries both the trimmed mean and the
untrimmed extremes so the error lines can be drawn.
"""

from __future__ import annotations

import math
from typing import List, NamedTuple, Sequence


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile (pct in [0, 100])."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile {pct} out of [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    # This form never leaves [ordered[low], ordered[high]] under floating
    # point, unlike a*(1-w) + b*w.
    return ordered[low] + (ordered[high] - ordered[low]) * weight


def trimmed(values: Sequence[float], low_pct: float = 8.0,
            high_pct: float = 92.0) -> List[float]:
    """Values within the [low_pct, high_pct] percentile window."""
    if not values:
        return []
    low_cut = percentile(values, low_pct)
    high_cut = percentile(values, high_pct)
    return [value for value in values if low_cut <= value <= high_cut]


class SummaryStats(NamedTuple):
    """One bar of a Figure 2/5-style plot."""

    count: int
    mean: float          # trimmed mean (the bar height)
    minimum: float       # untrimmed (the lower error line)
    maximum: float       # untrimmed (the upper error line)
    median: float
    p95: float
    stdev: float
    p99: float = 0.0     # untrimmed tail, like p95

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean:.1f}ms "
                f"[{self.minimum:.1f}..{self.maximum:.1f}] "
                f"p50={self.median:.1f} p95={self.p95:.1f} "
                f"p99={self.p99:.1f}")


def summarize(values: Sequence[float], trim: bool = True,
              low_pct: float = 8.0, high_pct: float = 92.0) -> SummaryStats:
    """Paper-style summary: trimmed central stats, untrimmed extremes."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    central = trimmed(values, low_pct, high_pct) if trim else list(values)
    if not central:
        central = list(values)
    mean = sum(central) / len(central)
    variance = (sum((value - mean) ** 2 for value in central) / len(central)
                if len(central) > 1 else 0.0)
    return SummaryStats(
        count=len(values),
        mean=mean,
        minimum=min(values),
        maximum=max(values),
        median=percentile(central, 50),
        p95=percentile(list(values), 95),
        stdev=math.sqrt(variance),
        p99=percentile(list(values), 99),
    )
