"""Repeated-query drivers with the paper's wireless/resolver split.

The paper: "We perform the measurements using both dig from the client
side and tcpdump at P-GW to track the DNS request packets", splitting each
lookup into (i) the wireless UE<->P-GW delay and (ii) everything beyond
the P-GW.  :func:`measure_deployment_queries` reproduces this: a
:class:`~repro.netsim.trace.PacketTrace` at the gateway host timestamps
the query and reply as they cross the P-GW; the difference attributes the
round trip to the two segments.
"""

from __future__ import annotations

from typing import Generator, List, NamedTuple, Optional

from repro.core.deployments import Testbed
from repro.netsim.trace import PacketTrace


class QueryMeasurement(NamedTuple):
    """One measured DNS lookup."""

    latency_ms: float
    wireless_ms: float      # UE <-> P-GW portion of the round trip
    resolver_ms: float      # beyond-the-P-GW portion
    addresses: List[str]
    status: str
    started_at: float


def measure_deployment_queries(testbed: Testbed, count: int,
                               spacing_ms: float = 500.0,
                               warmup: int = 1) -> List[QueryMeasurement]:
    """Run ``warmup + count`` sequential queries; return the measured ones.

    Warmup queries let resolvers with warm-cache semantics settle (and
    mirror the practice of discarding the first dig of a session).
    """
    if count <= 0:
        raise ValueError("need a positive query count")
    trace = PacketTrace(testbed.network, host_filter=testbed.gateway_host)
    stub = testbed.ue.stub()
    sim = testbed.sim
    measurements: List[QueryMeasurement] = []

    def driver() -> Generator:
        for index in range(warmup + count):
            trace.clear()
            started = sim.now
            result = yield from stub.query(testbed.query_name)
            finished = sim.now
            if index >= warmup:
                wireless = _wireless_portion(trace, started, finished)
                total = result.query_time_ms
                measurements.append(QueryMeasurement(
                    latency_ms=total,
                    wireless_ms=wireless,
                    resolver_ms=max(total - wireless, 0.0),
                    addresses=result.addresses,
                    status=result.status,
                    started_at=started))
            yield spacing_ms

    sim.run_until_resolved(sim.spawn(driver()))
    trace.close()
    return measurements


def _wireless_portion(trace: PacketTrace, started: float,
                      finished: float) -> float:
    """UE<->P-GW time: first gateway crossing out + last crossing back."""
    crossings = [record.time for record in trace.records
                 if record.event in ("forward", "deliver")
                 and started <= record.time <= finished]
    if not crossings:
        # The gateway never saw the packets (a degenerate topology);
        # attribute everything to the resolver side.
        return 0.0
    outbound = min(crossings) - started
    inbound = finished - max(crossings)
    return max(outbound, 0.0) + max(inbound, 0.0)
