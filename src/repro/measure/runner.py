"""Repeated-query drivers with the paper's wireless/resolver split.

The paper: "We perform the measurements using both dig from the client
side and tcpdump at P-GW to track the DNS request packets", splitting each
lookup into (i) the wireless UE<->P-GW delay and (ii) everything beyond
the P-GW.  :func:`measure_deployment_queries` reproduces this: a
:class:`~repro.netsim.trace.PacketTrace` at the gateway host timestamps
the query and reply as they cross the P-GW; the difference attributes the
round trip to the two segments.

For fault-injection runs, :func:`measure_deployment_run` additionally
reports retry behaviour — attempts per lookup, timeouts burned, hedges
and stale answers — as a :class:`RetryStats`, since under faults *how
hard the client worked* is as load-bearing as the latency itself.
"""

from __future__ import annotations

from typing import Generator, List, NamedTuple, Optional

from repro.core.deployments import Testbed
from repro.netsim.trace import PacketTrace
from repro.resolver.retry import RetryPolicy
from repro.resolver.stub import StubResolver


class QueryMeasurement(NamedTuple):
    """One measured DNS lookup."""

    latency_ms: float
    wireless_ms: float      # UE <-> P-GW portion of the round trip
    resolver_ms: float      # beyond-the-P-GW portion
    addresses: List[str]
    status: str
    started_at: float
    attempts: int = 1       # client transmissions this lookup took
    stale: bool = False     # answer served past its TTL (RFC 8767)
    trace_id: Optional[int] = None  # telemetry trace, when observed


class RetryStats(NamedTuple):
    """Aggregate client-side resilience accounting for one run."""

    queries: int            # lookups attempted (including failed ones)
    answered: int           # lookups that produced any response
    attempts: int           # total transmissions across all lookups
    timeouts_seen: int      # per-attempt timeouts burned
    servfails_seen: int     # SERVFAIL responses absorbed by retries
    stale_answers: int      # answers marked stale (RFC 8914 EDE 3)
    hedges_sent: int        # hedged second queries actually transmitted

    @property
    def mean_attempts(self) -> float:
        """Average transmissions per lookup (1.0 = no retries needed)."""
        return self.attempts / self.queries if self.queries else 0.0


class MeasurementRun(NamedTuple):
    """Measurements plus the retry accounting behind them."""

    measurements: List[QueryMeasurement]
    retries: RetryStats


def measure_deployment_queries(testbed: Testbed, count: int,
                               spacing_ms: float = 500.0,
                               warmup: int = 1) -> List[QueryMeasurement]:
    """Run ``warmup + count`` sequential queries; return the measured ones.

    Warmup queries let resolvers with warm-cache semantics settle (and
    mirror the practice of discarding the first dig of a session).
    """
    return measure_deployment_run(testbed, count, spacing_ms=spacing_ms,
                                  warmup=warmup).measurements


def measure_deployment_run(testbed: Testbed, count: int,
                           spacing_ms: float = 500.0,
                           warmup: int = 1,
                           policy: Optional[RetryPolicy] = None,
                           stub: Optional[StubResolver] = None) -> MeasurementRun:
    """Like :func:`measure_deployment_queries`, with retry accounting.

    ``policy`` (or a fully custom ``stub``) configures the client's
    retry behaviour.  A lookup whose every attempt fails is recorded as
    a ``TIMEOUT`` measurement with empty addresses rather than aborting
    the run — under fault injection, failures are data.
    """
    if count <= 0:
        raise ValueError("need a positive query count")
    trace = PacketTrace(testbed.network, host_filter=testbed.gateway_host)
    if stub is None:
        stub = testbed.ue.stub()
        stub.policy = policy
    sim = testbed.sim
    measurements: List[QueryMeasurement] = []
    failed = {"queries": 0}

    tel = testbed.network.telemetry

    def driver() -> Generator:
        for index in range(warmup + count):
            trace.clear()
            started = sim.now
            issued_before = stub.queries_issued
            span = None
            if tel is not None:
                span = tel.tracer.begin(
                    "lookup", "measure", "measure-driver",
                    qname=str(testbed.query_name), warmup=index < warmup,
                    deployment=testbed.key)
            try:
                result = yield from stub.query(
                    testbed.query_name,
                    ctx=span.context if span is not None else None)
            except Exception:  # noqa: BLE001 - timeouts are data here
                failed["queries"] += 1
                if tel is not None:
                    tel.tracer.end(span, status="TIMEOUT")
                if index >= warmup:
                    measurements.append(QueryMeasurement(
                        latency_ms=sim.now - started,
                        wireless_ms=0.0,
                        resolver_ms=sim.now - started,
                        addresses=[],
                        status="TIMEOUT",
                        started_at=started,
                        attempts=max(1, stub.queries_issued - issued_before),
                        trace_id=(span.trace_id if span is not None
                                  else None)))
                yield spacing_ms
                continue
            finished = sim.now
            if tel is not None:
                tel.tracer.end(span, status=result.status)
                if index >= warmup:
                    tel.metrics.histogram(
                        "repro_lookup_latency_ms",
                        "measured DNS lookup latency").observe(
                            finished - started,
                            exemplar={"trace_id": str(span.trace_id)})
            if index >= warmup:
                wireless = _wireless_portion(trace, started, finished)
                total = result.query_time_ms
                measurements.append(QueryMeasurement(
                    latency_ms=total,
                    wireless_ms=wireless,
                    resolver_ms=max(total - wireless, 0.0),
                    addresses=result.addresses,
                    status=result.status,
                    started_at=started,
                    attempts=result.attempts,
                    stale=result.stale,
                    trace_id=(span.trace_id if span is not None
                              else None)))
            yield spacing_ms

    sim.run_until_resolved(sim.spawn(driver()))
    trace.close()
    total_queries = warmup + count
    stats = RetryStats(
        queries=total_queries,
        answered=total_queries - failed["queries"],
        attempts=stub.queries_issued,
        timeouts_seen=stub.timeouts_seen,
        servfails_seen=stub.servfails_seen,
        stale_answers=sum(1 for m in measurements if m.stale),
        hedges_sent=stub.hedges_sent)
    return MeasurementRun(measurements=measurements, retries=stats)


def _wireless_portion(trace: PacketTrace, started: float,
                      finished: float) -> float:
    """UE<->P-GW time: first gateway crossing out + last crossing back."""
    crossings = [record.time for record in trace.records
                 if record.event in ("forward", "deliver")
                 and started <= record.time <= finished]
    if not crossings:
        # The gateway never saw the packets (a degenerate topology);
        # attribute everything to the resolver side.
        return 0.0
    outbound = min(crossings) - started
    inbound = finished - max(crossings)
    return max(outbound, 0.0) + max(inbound, 0.0)
