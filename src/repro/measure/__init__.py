"""Measurement harness: dig-style drivers and paper-style statistics.

* :mod:`repro.measure.stats` — summary statistics with the paper's
  8th-92nd percentile trimming (Figure 2's method).
* :mod:`repro.measure.runner` — repeated-query drivers that split each
  lookup into wireless vs. resolver time using a P-GW packet trace,
  reproducing the paper's dig + tcpdump methodology (Figure 5).
* :mod:`repro.measure.histogram` — streaming, mergeable log-binned
  latency aggregation for population-scale runs, where per-sample
  retention (the :class:`SummaryStats` way) would not fit in memory.
"""

from repro.measure.stats import SummaryStats, summarize, trimmed, percentile
from repro.measure.histogram import HistogramSummary, LatencyHistogram
from repro.measure.runner import (MeasurementRun, QueryMeasurement,
                                  RetryStats, measure_deployment_queries,
                                  measure_deployment_run)

__all__ = [
    "HistogramSummary",
    "LatencyHistogram",
    "SummaryStats",
    "summarize",
    "trimmed",
    "percentile",
    "MeasurementRun",
    "QueryMeasurement",
    "RetryStats",
    "measure_deployment_queries",
    "measure_deployment_run",
]
